//! End-to-end evaluation tests: the paper's example queries run against the
//! paper's example data.

use strudel_graph::{ddl, FileKind, Graph, Value};
use strudel_struql::{parse_query, EvalOptions, Optimizer, PredicateRegistry, SkolemTable};

/// Fig. 2 of the paper.
const FIG2: &str = r#"
collection Publications {
  abstract   text
  postscript ps
}
object pub1 in Publications {
  title      "Specifying Representations..."
  author     "Norman Ramsey"
  author     "Mary Fernandez"
  year       1997
  month      "May"
  journal    "Transactions on Programming..."
  pub-type   "article"
  abstract   "abstracts/toplas97.txt"
  postscript "papers/toplas97.ps.gz"
  volume     "19 (3)"
  category   "Architecture Specifications"
  category   "Programming Languages"
}
object pub2 in Publications {
  title      "Optimizing Regular..."
  author     "Mary Fernandez"
  author     "Dan Suciu"
  year       1998
  booktitle  "Proc. of ICDE"
  pub-type   "inproceedings"
  abstract   "abstracts/icde98.txt"
  postscript "papers/icde98.ps.gz"
  category   "Semistructured Data"
  category   "Programming Languages"
}
"#;

/// Fig. 3 of the paper.
const FIG3: &str = r#"
INPUT BIBTEX
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
{
  WHERE Publications(x), x -> l -> v
  CREATE PaperPresentation(x), AbstractPage(x)
  LINK AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v,
       PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
       AbstractsPage() -> "Abstract" -> AbstractPage(x)
  {
    WHERE l = "year"
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "YearPage" -> YearPage(v)
  }
  {
    WHERE l = "category"
    CREATE CategoryPage(v)
    LINK CategoryPage(v) -> "Name" -> v,
         CategoryPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "CategoryPage" -> CategoryPage(v)
  }
}
OUTPUT HomePage
"#;

fn fig2_graph() -> Graph {
    ddl::parse(FIG2).unwrap()
}

fn find_node(g: &Graph, name: &str) -> Option<strudel_graph::Oid> {
    g.nodes()
        .iter()
        .copied()
        .find(|&n| g.node_name(n).as_deref() == Some(name))
}

fn out_by_label(g: &Graph, n: strudel_graph::Oid, label: &str) -> Vec<Value> {
    let sym = g
        .universe()
        .interner()
        .get(label)
        .unwrap_or(strudel_graph::Sym(u32::MAX));
    g.out_edges(n)
        .into_iter()
        .filter(|(l, _)| *l == sym)
        .map(|(_, v)| v)
        .collect()
}

#[test]
fn fig3_builds_fig4_site_graph() {
    let data = fig2_graph();
    let q = parse_query(FIG3).unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    let site = &out.graph;

    // Skolem pages exist.
    let root = find_node(site, "RootPage()").expect("RootPage");
    let abstracts = find_node(site, "AbstractsPage()").expect("AbstractsPage");
    let y1997 = find_node(site, "YearPage(1997)").expect("YearPage(1997)");
    let y1998 = find_node(site, "YearPage(1998)").expect("YearPage(1998)");
    assert!(find_node(site, "CategoryPage(Programming Languages)").is_some());
    assert!(find_node(site, "PaperPresentation(&0)").is_some());

    // Root links to both year pages and the abstracts page (Fig. 4).
    let year_links = out_by_label(site, root, "YearPage");
    assert_eq!(year_links.len(), 2);
    assert!(year_links.contains(&Value::Node(y1997)) && year_links.contains(&Value::Node(y1998)));
    assert_eq!(
        out_by_label(site, root, "AbstractsPage"),
        vec![Value::Node(abstracts)]
    );

    // Root links to three distinct category pages (3 distinct categories).
    assert_eq!(out_by_label(site, root, "CategoryPage").len(), 3);

    // Year pages carry their year and exactly one paper each.
    assert_eq!(out_by_label(site, y1997, "Year"), vec![Value::Int(1997)]);
    assert_eq!(out_by_label(site, y1997, "Paper").len(), 1);

    // The shared category links both papers.
    let pl = find_node(site, "CategoryPage(Programming Languages)").unwrap();
    assert_eq!(out_by_label(site, pl, "Paper").len(), 2);

    // PaperPresentation copied all 12 attributes of pub1 plus the
    // "Abstract" link.
    let pp1 = find_node(site, "PaperPresentation(&0)").unwrap();
    let pp1_out = site.out_edges(pp1);
    assert_eq!(pp1_out.len(), 13, "{pp1_out:?}");

    // AbstractsPage links to an abstract page per publication.
    assert_eq!(out_by_label(site, abstracts, "Abstract").len(), 2);
}

#[test]
fn all_optimizers_agree_on_fig3() {
    let data = fig2_graph();
    let q = parse_query(FIG3).unwrap();
    let mut signatures = Vec::new();
    for opt in [Optimizer::Naive, Optimizer::Heuristic, Optimizer::CostBased] {
        let out = q
            .evaluate(&data, &EvalOptions::with_optimizer(opt))
            .unwrap();
        let mut edges: Vec<String> = out
            .graph
            .edges()
            .iter()
            .map(|e| {
                // Display node targets by provenance name: oids differ
                // between runs sharing a universe, names do not.
                let to = match &e.to {
                    Value::Node(n) => out.graph.node_name(*n).unwrap_or_default().to_string(),
                    other => other.to_string(),
                };
                format!(
                    "{}--{}-->{}",
                    out.graph.node_name(e.from).unwrap_or_default(),
                    out.graph.resolve(e.label),
                    to
                )
            })
            .collect();
        edges.sort();
        signatures.push(edges);
    }
    assert_eq!(signatures[0], signatures[1]);
    assert_eq!(signatures[1], signatures[2]);
}

#[test]
fn indexed_and_unindexed_agree() {
    let mut data = fig2_graph();
    let q = parse_query(FIG3).unwrap();
    let with = q.evaluate(&data, &EvalOptions::default()).unwrap();
    data.set_indexing(false);
    let without = q.evaluate(&data, &EvalOptions::default()).unwrap();
    assert_eq!(with.graph.edge_count(), without.graph.edge_count());
    assert_eq!(with.graph.node_count(), without.graph.node_count());
}

#[test]
fn postscript_collect_example() {
    // §3: all PostScript papers directly accessible from home pages.
    let mut g = Graph::standalone();
    let home = g.new_node(Some("home"));
    g.add_to_collection_str("HomePages", Value::Node(home));
    g.add_edge_str(home, "Paper", Value::file(FileKind::PostScript, "a.ps"))
        .unwrap();
    g.add_edge_str(home, "Paper", Value::file(FileKind::Text, "b.txt"))
        .unwrap();
    g.add_edge_str(home, "Other", Value::file(FileKind::PostScript, "c.ps"))
        .unwrap();

    let q = parse_query(
        r#"WHERE HomePages(p), p -> "Paper" -> q, isPostScript(q)
           COLLECT PostscriptPages(q)"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let coll = out.graph.collection_str("PostscriptPages").unwrap();
    assert_eq!(coll.items(), &[Value::file(FileKind::PostScript, "a.ps")]);
}

#[test]
fn text_only_copy_query() {
    // §3 TextOnly: copy the part of the graph reachable from the root,
    // excluding image files.
    let mut g = Graph::standalone();
    let root = g.new_node(Some("root"));
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    let unreachable = g.new_node(Some("zzz"));
    g.add_to_collection_str("Root", Value::Node(root));
    g.add_edge_str(root, "to", Value::Node(a)).unwrap();
    g.add_edge_str(a, "to", Value::Node(b)).unwrap();
    g.add_edge_str(a, "img", Value::file(FileKind::Image, "x.gif"))
        .unwrap();
    g.add_edge_str(b, "text", "hello").unwrap();
    g.add_edge_str(unreachable, "to", Value::Node(root))
        .unwrap();

    let q = parse_query(
        r#"WHERE Root(p), p -> * -> q, q -> l -> q0, not(isImageFile(q0))
           CREATE New(p), New(q), New(q0)
           LINK New(q) -> l -> New(q0)
           COLLECT TextOnlyRoot(New(p))"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let site = &out.graph;

    // New(root), New(a), New(b), New("hello") — no image node, and the
    // unreachable node is not copied.
    assert!(find_node(site, "New(&0)").is_some());
    assert!(find_node(site, "New(&1)").is_some());
    assert!(find_node(site, "New(&2)").is_some());
    assert!(
        find_node(site, "New(&3)").is_none(),
        "unreachable node must not be copied"
    );
    let na = find_node(site, "New(&1)").unwrap();
    assert!(
        out_by_label(site, na, "img").is_empty(),
        "image edge must be dropped"
    );
    assert_eq!(out_by_label(site, na, "to").len(), 1);
    assert_eq!(site.collection_str("TextOnlyRoot").unwrap().len(), 1);
}

#[test]
fn complement_query_active_domain() {
    // §3: the complement of a graph.
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    g.add_edge_str(a, "e", Value::Node(b)).unwrap();

    let q = parse_query(
        r#"WHERE not(p -> l -> q)
           CREATE f(p), f(q)
           LINK f(p) -> l -> f(q)"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    // Active domain: p,q ∈ {a,b}, l ∈ {e}. Original has a-e->b only, so the
    // complement has a-e->a, b-e->a, b-e->b.
    let fa = find_node(&out.graph, "f(&0)").unwrap();
    let fb = find_node(&out.graph, "f(&1)").unwrap();
    let edges = out.graph.edges();
    assert_eq!(edges.len(), 3, "{edges:?}");
    assert!(out_by_label(&out.graph, fa, "e").contains(&Value::Node(fa)));
    assert!(out_by_label(&out.graph, fb, "e").contains(&Value::Node(fa)));
    assert!(out_by_label(&out.graph, fb, "e").contains(&Value::Node(fb)));
    assert!(!out_by_label(&out.graph, fa, "e").contains(&Value::Node(fb)));
}

/// Builds a graph encoding an arbitrary binary relation R(a,b) as
/// `pair -> "fst" -> a, pair -> "snd" -> b` — the encoding under which a
/// single where–link query cannot express transitive closure, but a
/// composition of two StruQL queries can (§3, "Expressive power").
fn relation_graph(pairs: &[(i64, i64)]) -> Graph {
    let mut g = Graph::standalone();
    for &(a, b) in pairs {
        let p = g.new_node(None);
        g.add_to_collection_str("R", Value::Node(p));
        g.add_edge_str(p, "fst", a).unwrap();
        g.add_edge_str(p, "snd", b).unwrap();
    }
    g
}

#[test]
fn transitive_closure_via_two_query_composition() {
    // R = {(1,2),(2,3),(3,4)}; TC(R) ∋ (1,4).
    let g = relation_graph(&[(1, 2), (2, 3), (3, 4)]);

    // Query 1: re-encode the relation as graph edges N(a) -"r"-> N(b).
    let q1 = parse_query(
        r#"WHERE R(p), p -> "fst" -> a, p -> "snd" -> b
           CREATE N(a), N(b)
           LINK N(a) -> "r" -> N(b),
                N(a) -> "val" -> a,
                N(b) -> "val" -> b"#,
    )
    .unwrap();
    let step1 = q1.evaluate(&g, &EvalOptions::default()).unwrap();

    // Query 2: transitive closure = reachability over the edge encoding.
    let q2 = parse_query(
        r#"WHERE x -> "val" -> a, x -> "r"+ -> y, y -> "val" -> b
           CREATE Pair(a, b)
           LINK Pair(a, b) -> "fst" -> a, Pair(a, b) -> "snd" -> b
           COLLECT TC(Pair(a, b))"#,
    )
    .unwrap();
    let step2 = q2.evaluate(&step1.graph, &EvalOptions::default()).unwrap();

    let tc = step2.graph.collection_str("TC").unwrap();
    // TC of a 3-edge chain: (1,2),(1,3),(1,4),(2,3),(2,4),(3,4).
    assert_eq!(tc.len(), 6);
    assert!(find_node(&step2.graph, "Pair(1,4)").is_some());
    assert!(find_node(&step2.graph, "Pair(1,1)").is_none());
}

#[test]
fn reverse_traversal_when_target_bound() {
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    let c = g.new_node(Some("c"));
    g.add_edge_str(a, "to", Value::Node(b)).unwrap();
    g.add_edge_str(b, "to", Value::Node(c)).unwrap();
    g.add_edge_str(c, "tag", "goal").unwrap();

    // `x -> "to"+ -> y` with y bound via the tag: sources of paths to c.
    let q = parse_query(
        r#"WHERE y -> "tag" -> "goal", x -> "to"+ -> y
           CREATE S(x) COLLECT Sources(S(x))"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Sources").unwrap().len(), 2); // a and b
}

#[test]
fn arc_variable_carries_irregularity_into_links() {
    let data = fig2_graph();
    let q = parse_query(
        r#"WHERE Publications(x), x -> l -> v, l in {"journal", "booktitle"}
           CREATE Venue(x)
           LINK Venue(x) -> l -> v"#,
    )
    .unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    // pub1 has journal; pub2 has booktitle — each Venue node carries its own
    // attribute name.
    let v1 = find_node(&out.graph, "Venue(&0)").unwrap();
    let v2 = find_node(&out.graph, "Venue(&1)").unwrap();
    assert_eq!(out_by_label(&out.graph, v1, "journal").len(), 1);
    assert!(out_by_label(&out.graph, v1, "booktitle").is_empty());
    assert_eq!(out_by_label(&out.graph, v2, "booktitle").len(), 1);
}

#[test]
fn shared_skolem_table_composes_queries() {
    // §5.2: different queries create different parts of the same site.
    let data = fig2_graph();
    let q1 = parse_query(r#"WHERE Publications(x) CREATE Page(x) COLLECT Pages(Page(x))"#).unwrap();
    let q2 = parse_query(
        r#"WHERE Publications(x), x -> "title" -> t
           CREATE Page(x)
           LINK Page(x) -> "Title" -> t"#,
    )
    .unwrap();
    let mut out = Graph::new(std::sync::Arc::clone(data.universe()));
    let mut table = SkolemTable::new();
    let opts = EvalOptions::default();
    q1.evaluate_into(&data, &mut out, &mut table, &opts)
        .unwrap();
    let nodes_after_q1 = out.node_count();
    q2.evaluate_into(&data, &mut out, &mut table, &opts)
        .unwrap();
    // q2 reused q1's Page(x) nodes rather than creating new ones.
    assert_eq!(
        out.node_count(),
        nodes_after_q1,
        "Skolem terms must unify across queries"
    );
    let page = find_node(&out, "Page(&0)").unwrap();
    assert_eq!(out_by_label(&out, page, "Title").len(), 1);
}

#[test]
fn assignment_comparison_binds() {
    let data = fig2_graph();
    let q = parse_query(
        r#"WHERE y = 1997, Publications(x), x -> "year" -> y
           COLLECT Of1997(x)"#,
    )
    .unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Of1997").unwrap().len(), 1);
}

#[test]
fn comparison_operators_filter() {
    let data = fig2_graph();
    let q = parse_query(
        r#"WHERE Publications(x), x -> "year" -> y, y >= 1998
           COLLECT Recent(x)"#,
    )
    .unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Recent").unwrap().len(), 1);
}

#[test]
fn negated_collection_membership() {
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    g.add_to_collection_str("All", Value::Node(a));
    g.add_to_collection_str("All", Value::Node(b));
    g.add_to_collection_str("Banned", Value::Node(b));
    let q = parse_query("WHERE All(x), not(Banned(x)) COLLECT Ok(x)").unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(
        out.graph.collection_str("Ok").unwrap().items(),
        &[Value::Node(a)]
    );
}

#[test]
fn external_predicate_in_query() {
    let data = fig2_graph();
    let mut preds = PredicateRegistry::with_builtins();
    preds.register("isProgrammingLanguages", 1, |args| {
        args[0].text().is_some_and(|t| t.contains("Programming"))
    });
    let opts = EvalOptions {
        predicates: preds,
        ..Default::default()
    };
    let q = parse_query(
        r#"WHERE Publications(x), x -> "category" -> c, isProgrammingLanguages(c)
           COLLECT PL(x)"#,
    )
    .unwrap();
    let out = q.evaluate(&data, &opts).unwrap();
    assert_eq!(out.graph.collection_str("PL").unwrap().len(), 2);
}

#[test]
fn max_rows_guard_fires() {
    let mut g = Graph::standalone();
    for _ in 0..50 {
        let n = g.new_node(None);
        g.add_to_collection_str("C", Value::Node(n));
    }
    let opts = EvalOptions {
        max_rows: 100,
        ..Default::default()
    };
    // 50 × 50 = 2500 rows > 100.
    let q = parse_query("WHERE C(x), C(y), C(z) COLLECT Out(x)").unwrap();
    let err = q.evaluate(&g, &opts).unwrap_err();
    assert!(err.to_string().contains("max_rows"), "{err}");
}

#[test]
fn bindings_of_block_computes_governing_conjunction() {
    let data = fig2_graph();
    let q = parse_query(FIG3).unwrap();
    let opts = EvalOptions::default();
    // Block Q2 (BlockId 1): Publications(x), x->l->v — one row per attribute.
    let b1 = q
        .bindings_of_block(strudel_struql::BlockId(1), &data, &opts)
        .unwrap();
    assert_eq!(b1.len(), 22); // 12 attrs of pub1 + 10 of pub2
                              // Block Q3 (BlockId 2): … ∧ l = "year" — one row per publication.
    let b2 = q
        .bindings_of_block(strudel_struql::BlockId(2), &data, &opts)
        .unwrap();
    assert_eq!(b2.len(), 2);
}

#[test]
fn explain_lists_block_plans() {
    let data = fig2_graph();
    let q = parse_query(FIG3).unwrap();
    let text = q.explain(&data, &EvalOptions::default()).unwrap();
    assert!(text.contains("Q2"), "{text}");
    // Explain prints the compiled physical plan: concrete operator tags
    // plus per-node row estimates.
    assert!(
        text.contains("collection-scan") || text.contains("label-forward"),
        "{text}"
    );
    assert!(text.contains("arc-forward"), "{text}");
    assert!(text.contains("est. cost"), "{text}");
}

#[test]
fn stats_track_construction() {
    let data = fig2_graph();
    let q = parse_query(FIG3).unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    assert!(out.stats.construct.nodes_created >= 9); // root, abstracts, 2 pp, 2 ap, 2 years, 3 cats
    assert!(out.stats.construct.edges_created > 20);
    assert!(out.stats.conditions_applied > 0);
    assert!(out.stats.intermediate_rows > 0);
}

#[test]
fn empty_where_creates_once() {
    let g = Graph::standalone();
    let q = parse_query("CREATE HomePage() COLLECT Roots(HomePage())").unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.node_count(), 1);
    assert_eq!(out.graph.collection_str("Roots").unwrap().len(), 1);
}

#[test]
fn star_includes_source_itself() {
    // "finds all nodes q reachable from the root p (including p itself)".
    let mut g = Graph::standalone();
    let root = g.new_node(Some("root"));
    g.add_to_collection_str("Root", Value::Node(root));
    let q = parse_query("WHERE Root(p), p -> * -> q COLLECT Reached(q)").unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(
        out.graph.collection_str("Reached").unwrap().items(),
        &[Value::Node(root)]
    );
}

#[test]
fn alternation_label_sets() {
    let data = fig2_graph();
    let q = parse_query(
        r#"WHERE Publications(x), x -> "journal" | "booktitle" -> v
           COLLECT Venues(v)"#,
    )
    .unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Venues").unwrap().len(), 2);
}

#[test]
fn cyclic_graphs_terminate() {
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    g.add_to_collection_str("Root", Value::Node(a));
    g.add_edge_str(a, "to", Value::Node(b)).unwrap();
    g.add_edge_str(b, "to", Value::Node(a)).unwrap();
    let q = parse_query("WHERE Root(p), p -> * -> q COLLECT Reached(q)").unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Reached").unwrap().len(), 2);
}

#[test]
fn profile_reports_strategies_rows_and_blocks() {
    let data = fig2_graph();
    let q = parse_query(FIG3).unwrap();
    let opts = EvalOptions {
        profile: true,
        ..EvalOptions::default()
    };
    let out = q.evaluate(&data, &opts).unwrap();
    let profile = &out.stats.profile;
    assert!(!profile.is_empty());
    for p in profile {
        assert!(!p.strategy.is_empty(), "untagged operator: {p:?}");
        assert!(!p.block.is_empty(), "untagged block: {p:?}");
        assert!(!p.condition.is_empty());
    }
    // The outer block scans the Publications collection, then walks arcs
    // forward from the bound source; the inner blocks filter on `l`.
    assert!(profile.iter().any(|p| p.strategy == "collection-scan"));
    let arc = profile
        .iter()
        .find(|p| p.strategy == "arc-forward")
        .expect("arc-forward");
    assert!(arc.rows_out >= arc.rows_in);
    assert!(profile.iter().any(|p| p.strategy == "compare-filter"));

    // Profiling changes observability only, never the result; and the
    // disabled path records nothing.
    let plain = q.evaluate(&data, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.edge_count(), plain.graph.edge_count());
    assert!(plain.stats.profile.is_empty());
}

#[test]
fn profile_sees_path_cache_and_strategy_shift() {
    // An RPE over an indexed graph memoizes reach sets: repeated sources
    // hit the PathCache. With the index off, the reverse strategies shift.
    let data = fig2_graph();
    let q = parse_query(r#"WHERE Publications(x), x -> * -> v COLLECT Reached(v)"#).unwrap();
    let opts = EvalOptions {
        profile: true,
        ..EvalOptions::default()
    };
    let out = q.evaluate(&data, &opts).unwrap();
    let rpe = out
        .stats
        .profile
        .iter()
        .find(|p| p.strategy == "rpe-forward")
        .expect("rpe-forward");
    assert!(
        rpe.cache_hits + rpe.cache_misses > 0,
        "path cache untouched: {rpe:?}"
    );
}
