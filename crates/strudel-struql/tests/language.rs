//! Language-level tests for StruQL corners: negation over paths, label-set
//! membership, predicates of several arguments, deep block nesting, query
//! merging, and error paths.

use strudel_graph::{Graph, Value};
use strudel_struql::{parse_query, EvalOptions, PredicateRegistry, Query, StruqlError};

fn chain(n: usize) -> Graph {
    let mut g = Graph::standalone();
    let nodes: Vec<_> = (0..n).map(|i| g.new_node(Some(&format!("n{i}")))).collect();
    for w in nodes.windows(2) {
        g.add_edge_str(w[0], "next", Value::Node(w[1])).unwrap();
    }
    for &n in &nodes {
        g.add_to_collection_str("Nodes", Value::Node(n));
    }
    g.add_to_collection_str("Head", Value::Node(nodes[0]));
    g
}

#[test]
fn negated_path_expression_filters_reachability() {
    // Pairs (x, y) of nodes such that y is NOT reachable from x.
    let g = chain(4); // n0 -> n1 -> n2 -> n3
    let q = parse_query(
        r#"WHERE Nodes(x), Nodes(y), not(x -> * -> y)
           CREATE Pair(x, y)
           COLLECT Unreachable(Pair(x, y))"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    // Reachable pairs (including self): 4+3+2+1 = 10 of 16 → 6 unreachable.
    assert_eq!(out.graph.collection_str("Unreachable").unwrap().len(), 6);
}

#[test]
fn negated_in_set() {
    let mut g = chain(2);
    let head = g.nodes()[0];
    g.add_edge_str(head, "color", "red").unwrap();
    let q = parse_query(
        r#"WHERE Head(x), x -> l -> v, not(l in {"next"})
           COLLECT NonStructural(v)"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(
        out.graph.collection_str("NonStructural").unwrap().items(),
        &[Value::str("red")]
    );
}

#[test]
fn multi_argument_predicates() {
    let mut g = Graph::standalone();
    let a = g.new_node(None);
    g.add_to_collection_str("C", Value::Node(a));
    g.add_edge_str(a, "name", "semistructured").unwrap();
    g.add_edge_str(a, "prefix", "semi").unwrap();
    let q = parse_query(
        r#"WHERE C(x), x -> "name" -> n, x -> "prefix" -> p, startsWith(n, p)
           COLLECT Hit(x)"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Hit").unwrap().len(), 1);
}

#[test]
fn three_level_nesting_conjoins_all_ancestors() {
    let mut g = Graph::standalone();
    for (name, year, kind) in [("a", 1997i64, "x"), ("b", 1997, "y"), ("c", 1998, "x")] {
        let n = g.new_node(Some(name));
        g.add_to_collection_str("C", Value::Node(n));
        g.add_edge_str(n, "year", year).unwrap();
        g.add_edge_str(n, "kind", kind).unwrap();
    }
    let q = parse_query(
        r#"{ WHERE C(n), n -> "year" -> y
             { WHERE y = 1997
               { WHERE n -> "kind" -> "x" CREATE P(n) COLLECT Deep(P(n)) } } }"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    // Only "a" satisfies year=1997 ∧ kind=x.
    assert_eq!(out.graph.collection_str("Deep").unwrap().len(), 1);
}

#[test]
fn merged_queries_preserve_semantics() {
    let g = chain(3);
    let q1 = parse_query(r#"{ WHERE Nodes(x) CREATE P(x) COLLECT All(P(x)) }"#).unwrap();
    let q2 = parse_query(
        r#"{ WHERE Nodes(x), x -> "next" -> y CREATE P(x), P(y) LINK P(x) -> "Next" -> P(y) }"#,
    )
    .unwrap();
    let merged = Query::merge([&q1, &q2]);
    let out = merged.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("All").unwrap().len(), 3);
    assert_eq!(
        out.table.len(),
        3,
        "P(x) unifies across the merged children"
    );
    // Block ids renumbered without collision.
    let ids: Vec<u32> = merged.blocks().iter().map(|b| b.id.0).collect();
    let mut dedup = ids.clone();
    dedup.dedup();
    assert_eq!(ids, dedup);
}

#[test]
fn skolem_in_where_is_an_error() {
    let g = chain(2);
    let q = parse_query(r#"WHERE Nodes(F(x)) COLLECT Out(x)"#).unwrap();
    let err = q.evaluate(&g, &EvalOptions::default()).unwrap_err();
    assert!(
        err.to_string().contains("WHERE") || err.to_string().contains("Skolem"),
        "{err}"
    );
}

#[test]
fn link_label_var_bound_to_non_text_fails_cleanly() {
    let mut g = Graph::standalone();
    let a = g.new_node(None);
    g.add_to_collection_str("C", Value::Node(a));
    g.add_edge_str(a, "n", 42i64).unwrap();
    // l in the link position will be bound to... here l is an arc var
    // (fine). Bind a *node/int* to the label position instead via
    // assignment to check the runtime guard.
    let q = parse_query(
        r#"WHERE C(x), x -> "n" -> v, l = v
           CREATE P(x)
           LINK P(x) -> l -> x"#,
    )
    .unwrap();
    // l = 42 (an int) is not a label.
    let err = q.evaluate(&g, &EvalOptions::default()).unwrap_err();
    assert!(err.to_string().contains("label"), "{err}");
}

#[test]
fn collect_literal_values() {
    let g = chain(2);
    let q = parse_query(r#"WHERE Nodes(x) COLLECT Marked(x), Constant("tag")"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(
        out.graph.collection_str("Constant").unwrap().items(),
        &[Value::str("tag")]
    );
}

#[test]
fn arc_variable_joins_two_edges() {
    // Same attribute name on two different nodes: l joins them.
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    g.add_to_collection_str("L", Value::Node(a));
    g.add_to_collection_str("R", Value::Node(b));
    g.add_edge_str(a, "color", "red").unwrap();
    g.add_edge_str(a, "size", "big").unwrap();
    g.add_edge_str(b, "color", "blue").unwrap();
    let q = parse_query(
        r#"WHERE L(x), R(y), x -> l -> v, y -> l -> w
           CREATE Common(x, y)
           LINK Common(x, y) -> l -> v
           COLLECT Shared(Common(x, y))"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    // Only "color" is shared.
    let common = out
        .table
        .lookup("Common", &[Value::Node(a), Value::Node(b)])
        .unwrap();
    let edges = out.graph.out_edges(common);
    assert_eq!(edges.len(), 1);
    assert_eq!(&*out.graph.resolve(edges[0].0), "color");
}

#[test]
fn custom_predicate_arity_two_in_rpe_rejected() {
    let mut preds = PredicateRegistry::with_builtins();
    preds.register("pair", 2, |_| true);
    let opts = EvalOptions {
        predicates: preds,
        ..Default::default()
    };
    let g = chain(2);
    let q = parse_query("WHERE Head(x), x -> pair* -> y COLLECT Out(y)").unwrap();
    let err = q.evaluate(&g, &opts).unwrap_err();
    assert!(matches!(err, StruqlError::Semantic(_)), "{err}");
}

#[test]
fn seq_and_plus_path_operators() {
    let g = chain(5);
    // Exactly two hops: "next"."next".
    let q = parse_query(r#"WHERE Head(x), x -> "next" . "next" -> y COLLECT Two(y)"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let two = out.graph.collection_str("Two").unwrap();
    assert_eq!(two.len(), 1);
    // One or more hops.
    let q = parse_query(r#"WHERE Head(x), x -> "next"+ -> y COLLECT Plus(y)"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(
        out.graph.collection_str("Plus").unwrap().len(),
        4,
        "head excluded"
    );
}

#[test]
fn optional_path_operator() {
    let g = chain(3);
    let q = parse_query(r#"WHERE Head(x), x -> "next"? -> y COLLECT ZeroOrOne(y)"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(
        out.graph.collection_str("ZeroOrOne").unwrap().len(),
        2,
        "self + one hop"
    );
}

#[test]
fn output_and_input_names_are_carried() {
    let q = parse_query("INPUT A WHERE C(x) COLLECT O(x) OUTPUT B").unwrap();
    assert_eq!(q.input.as_deref(), Some("A"));
    assert_eq!(q.output.as_deref(), Some("B"));
    // Display keeps them.
    let printed = q.to_string();
    assert!(printed.contains("INPUT A") && printed.contains("OUTPUT B"));
}

#[test]
fn empty_collection_yields_empty_result_not_error() {
    let g = chain(2);
    let q = parse_query("WHERE Ghost(x) CREATE P(x) COLLECT O(P(x))").unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.node_count(), 0);
    assert_eq!(
        out.graph.collection_str("O").map(|c| c.len()).unwrap_or(0),
        0
    );
}

#[test]
fn warnings_surface_in_stats() {
    let mut g = Graph::standalone();
    let a = g.new_node(None);
    g.add_edge_str(a, "e", Value::Node(a)).unwrap();
    let q =
        parse_query(r#"WHERE not(p -> l -> q) CREATE f(p), f(q) LINK f(p) -> l -> f(q)"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert!(out
        .stats
        .warnings
        .iter()
        .any(|w| w.contains("active-domain")));
}

// ---- grouping & aggregation (the §5.2 extension) ----

fn pubs_by_year() -> Graph {
    let mut g = Graph::standalone();
    for (i, year) in [1997i64, 1997, 1997, 1998, 1998].iter().enumerate() {
        let p = g.new_node(Some(&format!("p{i}")));
        g.add_to_collection_str("Publications", Value::Node(p));
        g.add_edge_str(p, "year", *year).unwrap();
        g.add_edge_str(p, "pages", 10 * (i as i64 + 1)).unwrap();
    }
    g
}

#[test]
fn count_groups_by_link_source() {
    let g = pubs_by_year();
    let q = parse_query(
        r#"WHERE Publications(x), x -> "year" -> y
           CREATE YearPage(y)
           LINK YearPage(y) -> "paperCount" -> COUNT(x),
                YearPage(y) -> "Year" -> y"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let y97 = out.table.lookup("YearPage", &[Value::Int(1997)]).unwrap();
    let y98 = out.table.lookup("YearPage", &[Value::Int(1998)]).unwrap();
    let count = out.graph.universe().interner().get("paperCount").unwrap();
    let r = out.graph.reader();
    assert_eq!(r.attr(y97, count), Some(&Value::Int(3)));
    assert_eq!(r.attr(y98, count), Some(&Value::Int(2)));
}

#[test]
fn sum_min_max_avg() {
    let g = pubs_by_year();
    let q = parse_query(
        r#"WHERE Publications(x), x -> "pages" -> p
           CREATE Stats()
           LINK Stats() -> "total" -> SUM(p),
                Stats() -> "least" -> MIN(p),
                Stats() -> "most"  -> MAX(p),
                Stats() -> "mean"  -> AVG(p)"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let stats = out.table.lookup("Stats", &[]).unwrap();
    let r = out.graph.reader();
    let get = |l: &str| {
        r.attr(stats, out.graph.universe().interner().get(l).unwrap())
            .cloned()
    };
    assert_eq!(get("total"), Some(Value::Int(10 + 20 + 30 + 40 + 50)));
    assert_eq!(get("least"), Some(Value::Int(10)));
    assert_eq!(get("most"), Some(Value::Int(50)));
    assert_eq!(get("mean"), Some(Value::Float(30.0)));
}

#[test]
fn aggregates_are_over_distinct_values() {
    // Two edges with the same value: COUNT sees one distinct value.
    let mut g = Graph::standalone();
    let a = g.new_node(None);
    g.add_to_collection_str("C", Value::Node(a));
    g.add_edge_str(a, "tag", "x").unwrap();
    g.add_edge_str(a, "tag", "x").unwrap();
    g.add_edge_str(a, "tag", "y").unwrap();
    let q = parse_query(
        r#"WHERE C(c), c -> "tag" -> t
           CREATE S(c) LINK S(c) -> "tags" -> COUNT(t)"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let s = out.table.lookup("S", &[Value::Node(a)]).unwrap();
    let tags = out.graph.universe().interner().get("tags").unwrap();
    assert_eq!(out.graph.reader().attr(s, tags), Some(&Value::Int(2)));
}

#[test]
fn aggregate_in_collect() {
    let g = pubs_by_year();
    let q = parse_query(r#"WHERE Publications(x) COLLECT Sizes(COUNT(x))"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(
        out.graph.collection_str("Sizes").unwrap().items(),
        &[Value::Int(5)]
    );
}

#[test]
fn aggregate_in_where_is_rejected() {
    let g = pubs_by_year();
    let q = parse_query(r#"WHERE Publications(x), x -> "year" -> COUNT(x) COLLECT O(x)"#).unwrap();
    let err = q.evaluate(&g, &EvalOptions::default()).unwrap_err();
    assert!(err.to_string().contains("aggregate"), "{err}");
}

#[test]
fn dynamic_site_computes_aggregates_at_click_time() {
    use strudel_site::{DynamicSite, PageRef, Target};
    let g = pubs_by_year();
    let q = parse_query(
        r#"WHERE Publications(x), x -> "year" -> y
           CREATE YearPage(y)
           LINK YearPage(y) -> "paperCount" -> COUNT(x)"#,
    )
    .unwrap();
    let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
    let page = PageRef {
        skolem: "YearPage".into(),
        args: vec![Value::Int(1997)],
    };
    let links = site.expand(&page).unwrap();
    assert_eq!(links.len(), 1);
    assert_eq!(links[0].label, "paperCount");
    assert!(
        matches!(&links[0].target, Target::Value(Value::Int(3))),
        "{links:?}"
    );
}

// ---- database-level INPUT/OUTPUT resolution ----

#[test]
fn run_on_database_resolves_graph_names() {
    use strudel_graph::Database;
    use strudel_struql::{run_on_database, SkolemTable};
    let mut db = Database::new();
    {
        let g = db.create_graph("BIBTEX").unwrap();
        let p = g.new_node(Some("p1"));
        g.add_to_collection_str("Publications", Value::Node(p));
        g.add_edge_str(p, "title", "UnQL").unwrap();
    }
    let q = parse_query(
        r#"INPUT BIBTEX
           WHERE Publications(x), x -> "title" -> t
           CREATE Page(x) LINK Page(x) -> "T" -> t COLLECT Pages(Page(x))
           OUTPUT HomePage"#,
    )
    .unwrap();
    let mut table = SkolemTable::new();
    run_on_database(&mut db, &q, &mut table, &EvalOptions::default()).unwrap();
    let home = db.graph("HomePage").unwrap();
    assert_eq!(home.collection_str("Pages").unwrap().len(), 1);

    // A second query extends the same output graph (§5.2 composition).
    let q2 = parse_query(
        r#"INPUT BIBTEX
           WHERE Publications(x)
           CREATE Page(x), Index()
           LINK Index() -> "Entry" -> Page(x)
           OUTPUT HomePage"#,
    )
    .unwrap();
    run_on_database(&mut db, &q2, &mut table, &EvalOptions::default()).unwrap();
    let home = db.graph("HomePage").unwrap();
    // Page(x) unified; Index() added.
    assert_eq!(home.collection_str("Pages").unwrap().len(), 1);
    assert_eq!(table.lookup("Index", &[]).map(|_| ()), Some(()));
    assert_eq!(home.node_count(), 2);
}

#[test]
fn run_on_database_requires_names() {
    use strudel_graph::Database;
    use strudel_struql::{run_on_database, SkolemTable};
    let mut db = Database::new();
    db.create_graph("G").unwrap();
    let q = parse_query("WHERE C(x) COLLECT O(x)").unwrap();
    let err = run_on_database(
        &mut db,
        &q,
        &mut SkolemTable::new(),
        &EvalOptions::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("INPUT"), "{err}");
}

// ---- further operator edge cases ----

#[test]
fn any_single_edge_wildcard() {
    let g = chain(3);
    // `_` is exactly one edge: from head, reaches n1 only.
    let q = parse_query("WHERE Head(x), x -> _ -> y COLLECT One(y)").unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("One").unwrap().len(), 1);
}

#[test]
fn in_set_as_binder_when_unbound() {
    // Positive `l in {...}` with l unbound enumerates the set.
    let mut g = Graph::standalone();
    let a = g.new_node(None);
    g.add_to_collection_str("C", Value::Node(a));
    g.add_edge_str(a, "x", 1i64).unwrap();
    g.add_edge_str(a, "y", 2i64).unwrap();
    g.add_edge_str(a, "z", 3i64).unwrap();
    let q = parse_query(r#"WHERE C(c), l in {"x", "z"}, c -> l -> v COLLECT Picked(v)"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let picked = out.graph.collection_str("Picked").unwrap();
    assert_eq!(picked.len(), 2);
    assert!(picked.contains(&Value::Int(1)) && picked.contains(&Value::Int(3)));
}

#[test]
fn both_ends_bound_edge_probe() {
    let g = chain(3);
    // Join shape where the final condition is a pure edge-existence probe.
    let q = parse_query(
        r#"WHERE Nodes(x), Nodes(y), x -> "next" -> y
           CREATE E(x, y) COLLECT Edges(E(x, y))"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Edges").unwrap().len(), 2);
}

#[test]
fn negated_predicate_filters() {
    let mut g = Graph::standalone();
    for (name, v) in [("a", Value::str("x")), ("b", Value::Int(1))] {
        let n = g.new_node(Some(name));
        g.add_to_collection_str("C", Value::Node(n));
        g.add_edge_str(n, "val", v).unwrap();
    }
    let q =
        parse_query(r#"WHERE C(c), c -> "val" -> v, not(isString(v)) COLLECT NonStr(c)"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("NonStr").unwrap().len(), 1);
}

#[test]
fn var_var_equality_joins_columns() {
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    g.add_to_collection_str("L", Value::Node(a));
    g.add_to_collection_str("R", Value::Node(b));
    g.add_edge_str(a, "k", 7i64).unwrap();
    g.add_edge_str(b, "k", 7i64).unwrap();
    let q = parse_query(
        r#"WHERE L(x), R(y), x -> "k" -> u, y -> "k" -> w, u = w
           CREATE M(x, y) COLLECT Matched(M(x, y))"#,
    )
    .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Matched").unwrap().len(), 1);
}

#[test]
fn link_to_literal_target() {
    let g = chain(2);
    let q = parse_query(r#"WHERE Nodes(x) CREATE T(x) LINK T(x) -> "kind" -> "node""#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    let kind = out.graph.universe().interner().get("kind").unwrap();
    let r = out.graph.reader();
    for &n in out.graph.nodes() {
        assert_eq!(r.attr(n, kind), Some(&Value::str("node")));
    }
}

#[test]
fn alternation_of_paths_with_different_lengths() {
    let g = chain(4);
    // Either exactly one or exactly three hops from the head.
    let q = parse_query(r#"WHERE Head(x), x -> "next" | "next"."next"."next" -> y COLLECT Hit(y)"#)
        .unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Hit").unwrap().len(), 2); // n1 and n3
}

#[test]
fn create_only_nested_block_multiplicity() {
    // Creates in a nested block run once per *binding* but Skolem identity
    // deduplicates: one node per distinct year.
    let mut g = Graph::standalone();
    for y in [1990i64, 1990, 1991] {
        let n = g.new_node(None);
        g.add_to_collection_str("C", Value::Node(n));
        g.add_edge_str(n, "year", y).unwrap();
    }
    let q =
        parse_query(r#"{ WHERE C(x), x -> "year" -> y CREATE Y(y) COLLECT Years(Y(y)) }"#).unwrap();
    let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Years").unwrap().len(), 2);
}
