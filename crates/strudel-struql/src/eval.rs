//! The query stage: evaluating `WHERE` clauses over a graph.
//!
//! Evaluation walks the block tree. For each block, the optimizer orders the
//! block's conditions ([`crate::optimize`]); each condition is then applied
//! as a physical operator that transforms the bindings relation — scans of
//! collection extents and label extensions, out-edge expansion, reverse-index
//! probes, product-automaton traversal for regular path expressions (forward
//! *and* backward), filters for predicates and comparisons, and
//! active-domain expansion for variables no positive condition binds (which
//! gives queries like the graph-complement example of §3 their well-defined
//! meaning).
//!
//! The executor is vectorized over the slab-backed [`Bindings`] relation:
//!
//! * *Widening* operators append base-row slices plus new columns directly
//!   into the output slab ([`Bindings::push_row_extend`]) — no `Vec` is
//!   allocated per emitted row.
//! * *Filters* (no new variables) are semi-joins applied in place with
//!   [`Bindings::retain_rows`]; they never materialize a second relation.
//! * When an edge condition joins a bound variable against the whole edge
//!   set (`arc_edge_scan` with a bound target), a hash probe table over the
//!   edge targets is built once per condition and each row probes it —
//!   replacing the O(rows·edges) nested loop. Row-independent match sets
//!   (unbound or literal targets) are computed once and cross-joined.
//! * Regular-path work is memoized in an evaluator-lifetime [`PathCache`]
//!   shared through [`EvalOptions`]: compiled (and reversed) automata,
//!   per-start reachability sets, and the materialized reverse adjacency
//!   for unindexed graphs all persist across rows, blocks and click-time
//!   re-expansions, validated against the graph's
//!   [`CacheStamp`](strudel_graph::graph::CacheStamp) on every access.
//! * Single-label path steps (`x -> "author" -> a`) bypass the automaton
//!   entirely: label matching is an interned-symbol comparison, so they run
//!   as direct adjacency filters.
//!
//! A nested block starts from its parent's bindings, so the conjunction of
//! ancestor `WHERE` clauses is evaluated exactly once — the paper's nested
//! blocks are both sugar and a shared-prefix optimization here.
//!
//! Equality semantics: `Compare`/`In` conditions and *literals* use the data
//! model's dynamic coercion ([`strudel_graph::Value::coerced_eq`]); joins of
//! two bound variables and index probes use strict equality (indexes are
//! exact). Hash probe tables are therefore only built for strict-equality
//! joins; label comparisons group edges by symbol and compare the distinct
//! label values with coercion. This is documented behaviour of this
//! reproduction.

use crate::analyze::analyze;
use crate::ast::*;
use crate::binding::Bindings;
use crate::construct::{apply_block_jobs, ConstructStats, SkolemTable};
use crate::error::{Result, StruqlError};
use crate::optimize::{eligible, multiplier, vars_of, GraphStats, Optimizer};
use crate::plan::{choose_op, replan_suffix, PhysOp, PhysicalPlan, PlanCache, PlanNode};
use crate::pred::PredicateRegistry;
use crate::rpe::Nfa;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use strudel_graph::fxhash::{FxHashMap, FxHashSet};
use strudel_graph::graph::{CacheStamp, GraphReader};
use strudel_graph::{Graph, Oid, Sym, Value};
use strudel_obs::{trace, CondProfile, Timer};

/// Reverse adjacency / probe-table shape: edge target value → the
/// `(source, label)` pairs of edges arriving at it.
type RevAdj = FxHashMap<Value, Vec<(Oid, Sym)>>;

/// Row-independent arc-edge matches grouped by (label value, edges),
/// where each edge carries the target to bind (if any).
type ArcLabelGroups = Vec<(Value, Vec<(Oid, Option<Value>)>)>;

/// Minimum rows a parallel worker must receive before an operator is
/// chunked across threads; smaller inputs stay on the calling thread.
const PAR_MIN_CHUNK: usize = 128;

pub use crate::optimize::Optimizer as OptimizerChoice;

/// Options controlling evaluation.
#[derive(Clone)]
pub struct EvalOptions {
    /// Plan-selection strategy (default: cost-based).
    pub optimizer: Optimizer,
    /// Predicate registry (default: the built-ins).
    pub predicates: PredicateRegistry,
    /// Hard cap on the size of any intermediate bindings relation; guards
    /// against accidental active-domain cross products.
    pub max_rows: usize,
    /// Record per-block plan descriptions in the stats.
    pub explain: bool,
    /// Record a per-condition execution profile ([`EvalStats::profile`]):
    /// rows in/out, strategy chosen, path-cache hits/misses and per-worker
    /// chunk timings. Off by default; the disabled path costs one branch
    /// per *condition*, never per row.
    pub profile: bool,
    /// Memo caches for regular-path work, shared by every evaluation using
    /// (a clone of) these options and invalidated by graph mutation.
    pub path_cache: Arc<PathCache>,
    /// Memo of compiled physical plans, shared like [`EvalOptions::path_cache`]
    /// and validated against the graph revision
    /// ([`strudel_graph::graph::CacheStamp::same_graph`]).
    pub plan_cache: Arc<PlanCache>,
    /// Whether to consult [`EvalOptions::plan_cache`]. Off compiles a fresh
    /// plan per conjunction per evaluation (useful for benchmarks isolating
    /// planning cost); results are identical either way.
    pub use_plan_cache: bool,
    /// Re-optimize the remaining plan suffix when an executed node's observed
    /// rows-out diverges from its estimate by more than
    /// [`EvalOptions::adapt_factor`] (see [`crate::plan::replan_suffix`]).
    pub adaptive: bool,
    /// Divergence factor that triggers adaptive re-optimization: a node must
    /// produce more than `adapt_factor ×` its estimated rows (and at least
    /// 128 rows, with ≥ 2 conditions left) before the suffix is re-planned.
    pub adapt_factor: f64,
    /// Worker threads for data-parallel operators. `1` runs every operator
    /// on the calling thread (the unchanged sequential path); higher values
    /// chunk large row loops across a scoped thread pool. The output is
    /// byte-identical at every setting.
    pub jobs: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            optimizer: Optimizer::CostBased,
            predicates: PredicateRegistry::with_builtins(),
            max_rows: 10_000_000,
            explain: false,
            profile: false,
            path_cache: Arc::new(PathCache::default()),
            plan_cache: Arc::new(PlanCache::default()),
            use_plan_cache: true,
            adaptive: true,
            adapt_factor: 8.0,
            jobs: default_jobs(),
        }
    }
}

impl EvalOptions {
    /// Options using the given optimizer, otherwise defaults.
    pub fn with_optimizer(optimizer: Optimizer) -> Self {
        EvalOptions {
            optimizer,
            ..Default::default()
        }
    }

    /// Options evaluating with the given worker count, otherwise defaults.
    pub fn with_jobs(jobs: usize) -> Self {
        EvalOptions {
            jobs: jobs.max(1),
            ..Default::default()
        }
    }
}

/// The default worker count: the `STRUDEL_JOBS` environment variable when
/// set (CI forces the parallel paths across the whole test suite with
/// `STRUDEL_JOBS=2`), else 1 — parallelism is opt-in for library callers;
/// the CLI passes `available_parallelism` explicitly via `--jobs`.
fn default_jobs() -> usize {
    static JOBS: OnceLock<usize> = OnceLock::new();
    *JOBS.get_or_init(|| {
        std::env::var("STRUDEL_JOBS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or(1)
    })
}

/// Evaluator-lifetime memo caches for regular-path-expression work.
///
/// Cloning [`EvalOptions`] shares the cache, so a site server reuses
/// reachability results across clicks and blocks. Every access validates the
/// stored [`CacheStamp`] against the graph being evaluated; any mutation of
/// the graph (or of its universe) clears the cache, so stale entries can
/// never be observed.
#[derive(Default)]
pub struct PathCache {
    inner: Mutex<PathCacheInner>,
    /// Observability counters. Outside the inner mutex (and never reset by
    /// invalidation) so they survive stamp-mismatch wipes and can be read
    /// without contending with evaluation.
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    /// Per-worker caches handed out to parallel operator workers, kept here
    /// so they stay warm across conditions, blocks and evaluations.
    workers: Mutex<Vec<Arc<PathCache>>>,
}

/// A snapshot of [`PathCache`] counters, aggregated over the cache itself
/// and every per-worker cache it has handed out.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathCacheStats {
    /// Memo lookups answered from the cache.
    pub hits: u64,
    /// Memo lookups that had to compute (and then cached) their result.
    pub misses: u64,
    /// Times a graph mutation (stamp mismatch) wiped cached entries.
    pub invalidations: u64,
}

impl PathCache {
    /// Drops all cached state, including the per-worker caches (useful for
    /// benchmarks isolating cold costs). Counters are kept: they report
    /// cache behaviour over the cache's whole lifetime.
    pub fn clear(&self) {
        *self.lock() = PathCacheInner::default();
        for w in self.workers().iter() {
            *w.lock() = PathCacheInner::default();
        }
    }

    /// Aggregated hit/miss/invalidation counters: this cache plus every
    /// per-worker cache.
    pub fn stats(&self) -> PathCacheStats {
        let mut s = PathCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        };
        for w in self.workers().iter() {
            s.hits += w.hits.load(Ordering::Relaxed);
            s.misses += w.misses.load(Ordering::Relaxed);
            s.invalidations += w.invalidations.load(Ordering::Relaxed);
        }
        s
    }

    /// The cache for worker slot `i`, created on first use. Worker caches
    /// never hand out workers of their own — parallel operators do not nest.
    fn worker(&self, i: usize) -> Arc<PathCache> {
        let mut ws = self.workers();
        while ws.len() <= i {
            ws.push(Arc::new(PathCache::default()));
        }
        Arc::clone(&ws[i])
    }

    fn lock(&self) -> MutexGuard<'_, PathCacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn workers(&self) -> MutexGuard<'_, Vec<Arc<PathCache>>> {
        self.workers.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Default)]
struct PathCacheInner {
    /// The graph state the entries below were computed against.
    stamp: Option<CacheStamp>,
    /// RPE (display form) → compiled automaton.
    compiled: FxHashMap<String, Arc<Nfa>>,
    /// Every automaton that keys a memo entry, kept alive so the pointer
    /// keys below can never be reused by a new allocation while entries
    /// referencing them exist.
    pinned: FxHashMap<usize, Arc<Nfa>>,
    /// Forward automaton (by address) → reversed automaton.
    reversed: FxHashMap<usize, Arc<Nfa>>,
    /// (automaton, start) → values reachable along a matching path.
    forward: FxHashMap<(usize, Value), Arc<Reach>>,
    /// (reversed automaton, target) → values a matching path reaches it from.
    backward: FxHashMap<(usize, Value), Arc<Reach>>,
    /// Materialized reverse adjacency for unindexed graphs, built at most
    /// once per cache lifetime.
    reverse_adj: Option<Arc<RevAdj>>,
}

impl PathCacheInner {
    fn pin(&mut self, nfa: &Arc<Nfa>) {
        self.pinned
            .entry(Arc::as_ptr(nfa) as usize)
            .or_insert_with(|| Arc::clone(nfa));
    }
}

/// A reachability result: values in BFS emission order plus the same values
/// as a set for O(1) membership probes.
struct Reach {
    order: Vec<Value>,
    set: FxHashSet<Value>,
}

/// Counters and plan descriptions from one evaluation.
#[derive(Default, Clone, Debug)]
pub struct EvalStats {
    /// Conditions applied (across all blocks).
    pub conditions_applied: u64,
    /// Total rows produced by all intermediate relations.
    pub intermediate_rows: u64,
    /// Times adaptive execution re-optimized a running plan's suffix from
    /// sampled runtime cardinalities.
    pub plan_replans: u64,
    /// Construction-stage counters.
    pub construct: ConstructStats,
    /// Per-block plan descriptions (only when `explain` is set).
    pub plans: Vec<String>,
    /// Analyzer warnings (active-domain fallbacks etc.).
    pub warnings: Vec<String>,
    /// Per-condition execution profile, in application order (only when
    /// [`EvalOptions::profile`] is set).
    pub profile: Vec<CondProfile>,
    /// Per-block construction counters `(block id, delta)` (only when
    /// [`EvalOptions::profile`] is set).
    pub block_construct: Vec<(String, ConstructStats)>,
}

/// The result of evaluating a query: the output graph plus statistics.
#[derive(Debug)]
pub struct EvalOutput {
    /// The constructed output graph (shares the input's universe).
    pub graph: Graph,
    /// The Skolem table: which `F(args)` produced which node. Site
    /// verification uses this to find the extension of each Skolem function.
    pub table: SkolemTable,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl Query {
    /// Evaluates the query against `input`, producing a fresh output graph
    /// in the same universe.
    pub fn evaluate(&self, input: &Graph, opts: &EvalOptions) -> Result<EvalOutput> {
        let mut out = Graph::new(Arc::clone(input.universe()));
        let mut table = SkolemTable::new();
        let stats = self.evaluate_into(input, &mut out, &mut table, opts)?;
        Ok(EvalOutput {
            graph: out,
            table,
            stats,
        })
    }

    /// Evaluates the query, writing construction results into an existing
    /// graph with an externally owned Skolem table. This is how "different
    /// queries create different parts of the same site" (§5.2): queries
    /// sharing a table resolve the same Skolem terms to the same nodes.
    pub fn evaluate_into(
        &self,
        input: &Graph,
        out: &mut Graph,
        table: &mut SkolemTable,
        opts: &EvalOptions,
    ) -> Result<EvalStats> {
        let analyzed = analyze(self, &opts.predicates)?;
        let mut ev = Ev::new(input, opts, opts.path_cache.as_ref());
        ev.stats.warnings = analyzed.warnings;
        let arc_vars = arc_vars_of(&analyzed.query);
        ev.eval_block(
            &analyzed.query.root,
            &Bindings::unit(),
            out,
            table,
            &arc_vars,
        )?;
        Ok(ev.stats)
    }

    /// Evaluates only the *query stage* for the conjunction governing block
    /// `id` (ancestors' conditions plus the block's own), returning the
    /// bindings relation. Used by site schemas' incremental evaluation and
    /// by tests.
    pub fn bindings_of_block(
        &self,
        id: BlockId,
        input: &Graph,
        opts: &EvalOptions,
    ) -> Result<Bindings> {
        let analyzed = analyze(self, &opts.predicates)?;
        let conds: Vec<Condition> = analyzed
            .query
            .governing_conditions(id)
            .ok_or_else(|| StruqlError::eval(format!("no block {id}")))?
            .into_iter()
            .cloned()
            .collect();
        let mut ev = Ev::new(input, opts, opts.path_cache.as_ref());
        let arc_vars = arc_vars_of(&analyzed.query);
        let plan = plan_for(opts, &conds, &FxHashSet::default(), input);
        ev.eval_conditions(&conds, &plan, Bindings::unit(), &arc_vars)
    }

    /// Returns the compiled physical plan for every block, without executing
    /// the query. Each block is compiled against the variables its ancestors
    /// bind, so the printed operators are the ones evaluation would execute.
    pub fn explain(&self, input: &Graph, opts: &EvalOptions) -> Result<String> {
        fn walk<'q>(
            block: &'q Block,
            bound: &FxHashSet<&'q str>,
            input: &Graph,
            opts: &EvalOptions,
            out: &mut String,
        ) {
            if !block.where_.is_empty() {
                let p = PhysicalPlan::compile(&block.where_, bound, input, opts.optimizer);
                out.push_str(&format!("{}:\n{}", block.id, p.describe(&block.where_)));
            }
            let mut child_bound = bound.clone();
            for cond in &block.where_ {
                for v in vars_of(cond) {
                    child_bound.insert(v);
                }
            }
            for child in &block.children {
                walk(child, &child_bound, input, opts, out);
            }
        }
        let analyzed = analyze(self, &opts.predicates)?;
        let mut out = String::new();
        walk(
            &analyzed.query.root,
            &FxHashSet::default(),
            input,
            opts,
            &mut out,
        );
        Ok(out)
    }
}

/// Runs a query against a [`strudel_graph::Database`], resolving the
/// `INPUT` graph name and materializing (or extending) the `OUTPUT` graph:
/// `INPUT BIBTEX … OUTPUT HomePage` reads `db["BIBTEX"]` and writes
/// `db["HomePage"]`. If the output graph already exists the query *extends*
/// it — the §5.2 composition mode ("we allowed queries to add nodes and
/// arcs to a graph, instead of creating a new graph in every query") — with
/// the caller-supplied Skolem table carrying identity across queries.
pub fn run_on_database(
    db: &mut strudel_graph::Database,
    query: &Query,
    table: &mut SkolemTable,
    opts: &EvalOptions,
) -> Result<EvalStats> {
    let input_name = query
        .input
        .as_deref()
        .ok_or_else(|| StruqlError::eval("query has no INPUT graph name"))?;
    let output_name = query
        .output
        .as_deref()
        .ok_or_else(|| StruqlError::eval("query has no OUTPUT graph name"))?
        .to_string();
    // Take the output graph out of the database (creating it if missing) so
    // input and output can be borrowed simultaneously.
    let mut out = match db.remove_graph(&output_name) {
        Ok(g) => g,
        Err(_) => Graph::new(Arc::clone(db.universe())),
    };
    let result = {
        let input = db.graph(input_name)?;
        query.evaluate_into(input, &mut out, table, opts)
    };
    db.insert_graph(&output_name, out)?;
    result
}

/// Evaluates a bare conjunction of (already analyzed) conditions against a
/// graph, starting from the given bindings. This is the query-stage entry
/// point used by click-time/incremental evaluation ([FER 98c]): the dynamic
/// evaluator binds a page's Skolem arguments and runs only the governing
/// conjunction of one link clause.
pub fn evaluate_conditions(
    conds: &[Condition],
    input: &Graph,
    start: Bindings,
    opts: &EvalOptions,
) -> Result<Bindings> {
    let mut ev = Ev::new(input, opts, opts.path_cache.as_ref());
    let mut arc_vars = FxHashSet::default();
    for cond in conds {
        if let Condition::Edge {
            step: PathStep::ArcVar(v),
            ..
        } = cond
        {
            arc_vars.insert(v.clone());
        }
    }
    let bound: FxHashSet<&str> = start.vars().iter().map(String::as_str).collect();
    let plan = plan_for(opts, conds, &bound, input);
    ev.eval_conditions(conds, &plan, start, &arc_vars)
}

/// The compiled plan for a conjunction: from the shared
/// [`EvalOptions::plan_cache`] when enabled, else compiled directly.
fn plan_for(
    opts: &EvalOptions,
    conds: &[Condition],
    bound: &FxHashSet<&str>,
    graph: &Graph,
) -> Arc<PhysicalPlan> {
    if opts.use_plan_cache {
        opts.plan_cache
            .get_or_compile(conds, bound, graph, opts.optimizer)
    } else {
        Arc::new(PhysicalPlan::compile(conds, bound, graph, opts.optimizer))
    }
}

/// The set of arc variables of a query (variables appearing in arc position
/// of some edge condition or as a link-label variable); used to pick the
/// active domain (labels vs. nodes) when expanding an unbound variable.
fn arc_vars_of(q: &Query) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for block in q.blocks() {
        for cond in &block.where_ {
            if let Condition::Edge {
                step: PathStep::ArcVar(v),
                ..
            } = cond
            {
                out.insert(v.clone());
            }
        }
        for link in &block.links {
            if let LabelTerm::Var(v) = &link.label {
                out.insert(v.clone());
            }
        }
    }
    out
}

struct Ev<'g> {
    graph: &'g Graph,
    opts: &'g EvalOptions,
    /// The path cache this evaluator consults: the shared cache from the
    /// options on the calling thread, a per-worker cache inside parallel
    /// operator workers (so workers never contend on one mutex).
    path_cache: &'g PathCache,
    stats: EvalStats,
    /// The operator tag of the most recently executed plan node. Written
    /// unconditionally (a pointer store), read only when profiling.
    strategy: &'static str,
    /// The plan nodes the most recent `eval_conditions` executed (in final,
    /// possibly re-optimized order) with observed rows-out; unexecuted tail
    /// nodes (empty-relation short-circuit) carry `None`. Recorded only when
    /// [`EvalOptions::explain`] is set.
    last_exec: Vec<(PlanNode, Option<u64>)>,
    /// Per-worker `(worker, µs)` chunk timings of the most recent operator;
    /// written by pool workers only when profiling is on.
    chunk_us: Mutex<Vec<(usize, u64)>>,
}

impl<'g> Ev<'g> {
    fn new(graph: &'g Graph, opts: &'g EvalOptions, path_cache: &'g PathCache) -> Self {
        Ev {
            graph,
            opts,
            path_cache,
            stats: EvalStats::default(),
            strategy: "",
            last_exec: Vec::new(),
            chunk_us: Mutex::new(Vec::new()),
        }
    }

    fn chunk_sink(&self) -> MutexGuard<'_, Vec<(usize, u64)>> {
        self.chunk_us.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks this evaluator's path cache, clearing it first if the graph
    /// (or its universe) has changed since the entries were computed.
    fn cache(&self) -> MutexGuard<'_, PathCacheInner> {
        let mut c = self.path_cache.lock();
        let stamp = self.graph.cache_stamp();
        if c.stamp != Some(stamp) {
            if c.stamp.is_some() {
                self.path_cache
                    .invalidations
                    .fetch_add(1, Ordering::Relaxed);
            }
            *c = PathCacheInner {
                stamp: Some(stamp),
                ..PathCacheInner::default()
            };
        }
        c
    }

    fn cache_hit(&self) {
        self.path_cache.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn cache_miss(&self) {
        self.path_cache.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// The compiled automaton for `rpe`, from the cache.
    fn compiled_nfa(&self, rpe: &Rpe) -> Arc<Nfa> {
        let key = rpe.to_string();
        {
            let c = self.cache();
            if let Some(n) = c.compiled.get(&key) {
                self.cache_hit();
                return Arc::clone(n);
            }
        }
        self.cache_miss();
        let nfa = Arc::new(Nfa::compile(rpe, self.graph.universe().interner()));
        let mut c = self.cache();
        let n = Arc::clone(c.compiled.entry(key).or_insert(nfa));
        c.pin(&n);
        n
    }

    /// The reversed automaton for `nfa`, from the cache.
    fn reversed_nfa(&self, nfa: &Arc<Nfa>) -> Arc<Nfa> {
        let key = Arc::as_ptr(nfa) as usize;
        {
            let c = self.cache();
            if let Some(r) = c.reversed.get(&key) {
                self.cache_hit();
                return Arc::clone(r);
            }
        }
        self.cache_miss();
        let rev = Arc::new(nfa.reversed());
        let mut c = self.cache();
        c.pin(nfa);
        let r = Arc::clone(c.reversed.entry(key).or_insert(rev));
        c.pin(&r);
        r
    }

    /// Values reachable from `start` along a path matching `nfa`, memoized
    /// across rows, blocks and evaluations.
    fn forward_reach(&self, reader: &GraphReader<'_>, nfa: &Arc<Nfa>, start: &Value) -> Arc<Reach> {
        let key = (Arc::as_ptr(nfa) as usize, start.clone());
        {
            let c = self.cache();
            if let Some(r) = c.forward.get(&key) {
                self.cache_hit();
                return Arc::clone(r);
            }
        }
        self.cache_miss();
        let r = Arc::new(self.rpe_forward(reader, nfa, start));
        let mut c = self.cache();
        c.pin(nfa);
        Arc::clone(c.forward.entry(key).or_insert(r))
    }

    /// Values from which a path matching the (forward) automaton reaches
    /// `start`, traversed over `rev`/`adj`, memoized like `forward_reach`.
    fn backward_reach(&self, rev: &Arc<Nfa>, adj: &ReverseAdj<'_>, start: &Value) -> Arc<Reach> {
        let key = (Arc::as_ptr(rev) as usize, start.clone());
        {
            let c = self.cache();
            if let Some(r) = c.backward.get(&key) {
                self.cache_hit();
                return Arc::clone(r);
            }
        }
        self.cache_miss();
        let r = Arc::new(self.rpe_backward(rev, adj, start));
        let mut c = self.cache();
        c.pin(rev);
        Arc::clone(c.backward.entry(key).or_insert(r))
    }

    fn label_value(&self, sym: Sym) -> Value {
        Value::Str(self.graph.universe().interner().resolve(sym))
    }

    // ---- data-parallel row drivers ----

    /// Worker count for an input of `rows` rows: capped so every chunk has
    /// at least [`PAR_MIN_CHUNK`] rows (below that, thread startup dominates
    /// the row loop), and 1 when the options are sequential.
    fn jobs_for(&self, rows: usize) -> usize {
        if self.opts.jobs <= 1 {
            1
        } else {
            self.opts.jobs.min(rows / PAR_MIN_CHUNK).max(1)
        }
    }

    /// Runs a per-row emitter over `input`, chunked across a scoped worker
    /// pool when the options ask for parallelism.
    ///
    /// `emit` must append to the output exactly what the sequential loop
    /// would emit for that row (each output row may only depend on its input
    /// row and row-independent captured state). Every chunk writes its own
    /// relation with `proto`'s schema and the chunks are concatenated in
    /// chunk order, so the merged slab is byte-identical to a sequential
    /// pass. Workers evaluate through their own [`Ev`] with a per-worker
    /// path cache (validated by the same graph stamp) and a fresh `scratch`;
    /// scratches only memoize deterministic per-row state, so they cannot
    /// influence the output.
    fn run_rows<S, MS, F>(
        &self,
        input: &Bindings,
        proto: Bindings,
        make_scratch: MS,
        emit: F,
    ) -> Bindings
    where
        MS: Fn() -> S + Sync,
        F: for<'e> Fn(&Ev<'e>, &mut S, &[Value], &mut Bindings) + Sync,
    {
        let jobs = self.jobs_for(input.len());
        if jobs <= 1 {
            let mut out = proto;
            let mut scratch = make_scratch();
            for row in input.rows() {
                emit(self, &mut scratch, row, &mut out);
            }
            return out;
        }
        let chunk = input.len().div_ceil(jobs);
        let graph = self.graph;
        let opts = self.opts;
        let profiling = opts.profile;
        let chunk_sink = &self.chunk_us;
        let mut parts = std::thread::scope(|scope| {
            let proto = &proto;
            let make_scratch = &make_scratch;
            let emit = &emit;
            let handles: Vec<_> = (0..input.len())
                .step_by(chunk)
                .enumerate()
                .map(|(wi, start)| {
                    let end = (start + chunk).min(input.len());
                    let wcache = self.path_cache.worker(wi);
                    scope.spawn(move || {
                        let t = Timer::start_if(profiling);
                        let ev = Ev::new(graph, opts, &wcache);
                        let mut out = proto.clone();
                        let mut scratch = make_scratch();
                        for i in start..end {
                            emit(&ev, &mut scratch, input.row(i), &mut out);
                        }
                        if profiling {
                            chunk_sink
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push((wi, t.elapsed_us()));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluation worker panicked"))
                .collect::<Vec<Bindings>>()
        });
        let mut out = parts.remove(0);
        for part in parts {
            out.append(part);
        }
        out
    }

    /// Applies a pure row filter in place, computing the keep mask in
    /// parallel chunks when the options ask for it. Compaction always runs
    /// in row order against the mask, so the surviving rows and their order
    /// match the sequential filter exactly.
    fn par_retain<S, MS, F>(&self, b: &mut Bindings, make_scratch: MS, keep: F)
    where
        MS: Fn() -> S + Sync,
        F: for<'e> Fn(&Ev<'e>, &mut S, &[Value]) -> bool + Sync,
    {
        let jobs = self.jobs_for(b.len());
        if jobs <= 1 {
            let mut scratch = make_scratch();
            b.retain_rows(|row| keep(self, &mut scratch, row));
            return;
        }
        let chunk = b.len().div_ceil(jobs);
        let graph = self.graph;
        let opts = self.opts;
        let profiling = opts.profile;
        let chunk_sink = &self.chunk_us;
        let mask: Vec<bool> = {
            let input = &*b;
            std::thread::scope(|scope| {
                let make_scratch = &make_scratch;
                let keep = &keep;
                let handles: Vec<_> = (0..input.len())
                    .step_by(chunk)
                    .enumerate()
                    .map(|(wi, start)| {
                        let end = (start + chunk).min(input.len());
                        let wcache = self.path_cache.worker(wi);
                        scope.spawn(move || {
                            let t = Timer::start_if(profiling);
                            let ev = Ev::new(graph, opts, &wcache);
                            let mut scratch = make_scratch();
                            let kept = (start..end)
                                .map(|i| keep(&ev, &mut scratch, input.row(i)))
                                .collect::<Vec<bool>>();
                            if profiling {
                                chunk_sink
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push((wi, t.elapsed_us()));
                            }
                            kept
                        })
                    })
                    .collect();
                let mut mask = Vec::with_capacity(input.len());
                for h in handles {
                    mask.extend(h.join().expect("evaluation worker panicked"));
                }
                mask
            })
        };
        let mut i = 0;
        b.retain_rows(|_| {
            let k = mask[i];
            i += 1;
            k
        });
    }

    fn eval_block(
        &mut self,
        block: &Block,
        parent: &Bindings,
        out: &mut Graph,
        table: &mut SkolemTable,
        arc_vars: &FxHashSet<String>,
    ) -> Result<()> {
        let bindings = if block.where_.is_empty() {
            parent.clone()
        } else {
            let bound: FxHashSet<&str> = parent.vars().iter().map(String::as_str).collect();
            let p = plan_for(self.opts, &block.where_, &bound, self.graph);
            let profiled_from = self.stats.profile.len();
            let bindings = self.eval_conditions(&block.where_, &p, parent.clone(), arc_vars)?;
            for prof in &mut self.stats.profile[profiled_from..] {
                prof.block = block.id.to_string();
            }
            if self.opts.explain {
                // Render the plan as executed: adaptive re-optimization may
                // have reordered the suffix, and each executed node carries
                // its observed rows next to the estimate.
                let exec = std::mem::take(&mut self.last_exec);
                let shown = PhysicalPlan {
                    nodes: exec.iter().map(|(n, _)| n.clone()).collect(),
                    est_cost: p.est_cost,
                    optimizer: p.optimizer,
                    dp_fallback: p.dp_fallback,
                };
                let observed: Vec<Option<u64>> = exec.iter().map(|(_, o)| *o).collect();
                self.stats.plans.push(format!(
                    "{}:\n{}",
                    block.id,
                    shown.render(&block.where_, &observed)
                ));
            }
            bindings
        };
        let construct_before = self.stats.construct;
        apply_block_jobs(
            block,
            &bindings,
            out,
            table,
            &mut self.stats.construct,
            self.opts.jobs,
        )?;
        if self.opts.profile {
            self.stats.block_construct.push((
                block.id.to_string(),
                self.stats.construct.delta_since(&construct_before),
            ));
        }
        for child in &block.children {
            self.eval_block(child, &bindings, out, table, arc_vars)?;
        }
        Ok(())
    }

    /// Executes a compiled plan over `conds`, starting from `start`.
    ///
    /// When [`EvalOptions::adaptive`] is set and an executed node's observed
    /// rows-out exceeds its estimate by more than
    /// [`EvalOptions::adapt_factor`], the remaining suffix is re-optimized:
    /// each pending condition's result multiplier is *measured* on a small
    /// sample of the live relation and [`replan_suffix`] reorders what is
    /// left using those measurements. The output relation is canonically
    /// sorted, so the row sequence (hence construction order, node identity
    /// and final page bytes) is independent of the physical plan executed.
    fn eval_conditions(
        &mut self,
        conds: &[Condition],
        plan: &PhysicalPlan,
        start: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let mut nodes: Vec<PlanNode> = plan.nodes.clone();
        if self.opts.explain {
            self.last_exec.clear();
        }
        let mut b = start;
        let mut replans = 0u32;
        let mut k = 0;
        while k < nodes.len() {
            let node = nodes[k].clone();
            let cond = &conds[node.cond];
            let rows_in = b.len() as u64;
            // One flight-recorder span per executed plan node (inert unless
            // a trace is active on this thread): the PhysOp tag plus the
            // optimizer's estimated vs. observed row counts make bad plans
            // visible per-request in /debug/traces.
            let mut tspan = trace::span("eval.op", trace::Layer::Eval);
            if tspan.is_live() {
                tspan.attr_text("op", node.op.tag());
                tspan.attr_u64("rows_in", rows_in);
                tspan.attr_u64("est_rows", (node.est_mult * rows_in as f64).max(1.0) as u64);
            }
            if self.opts.profile {
                let before = self.path_cache.stats();
                let t = Timer::start();
                self.strategy = "";
                self.chunk_sink().clear();
                b = self.execute_op(node.op, cond, b, arc_vars)?;
                let elapsed_us = t.elapsed_us();
                let after = self.path_cache.stats();
                let mut chunks = std::mem::take(&mut *self.chunk_sink());
                chunks.sort_unstable();
                self.stats.profile.push(CondProfile {
                    block: String::new(),
                    condition: cond.to_string(),
                    strategy: self.strategy,
                    rows_in,
                    rows_out: b.len() as u64,
                    elapsed_us,
                    cache_hits: after.hits.saturating_sub(before.hits),
                    cache_misses: after.misses.saturating_sub(before.misses),
                    chunks,
                });
            } else {
                b = self.execute_op(node.op, cond, b, arc_vars)?;
            }
            tspan.attr_u64("obs_rows", b.len() as u64);
            drop(tspan);
            self.stats.conditions_applied += 1;
            self.stats.intermediate_rows += b.len() as u64;
            if self.opts.explain {
                self.last_exec.push((node.clone(), Some(b.len() as u64)));
            }
            if b.len() > self.opts.max_rows {
                return Err(StruqlError::eval(format!(
                    "intermediate result exceeded max_rows ({} rows) at condition `{cond}`",
                    b.len()
                )));
            }
            if b.is_empty() {
                // Short-circuit: the conjunction is unsatisfiable.
                if self.opts.explain {
                    for n in &nodes[k + 1..] {
                        self.last_exec.push((n.clone(), None));
                    }
                }
                break;
            }
            // Adaptive re-optimization: only when the estimate was badly
            // wrong on a relation big enough for the divergence to matter,
            // with enough plan left for a different order to pay off.
            let observed = b.len() as f64;
            let expected = (node.est_mult * rows_in as f64).max(1.0);
            if self.opts.adaptive
                && replans < 2
                && nodes.len() - k > 2
                && b.len() >= 128
                && observed > expected * self.opts.adapt_factor
            {
                let remaining: Vec<usize> = nodes[k + 1..].iter().map(|n| n.cond).collect();
                let measured = self.sample_multipliers(conds, &remaining, &b, arc_vars);
                if !measured.is_empty() {
                    let bound: FxHashSet<&str> = b.vars().iter().map(String::as_str).collect();
                    let suffix =
                        replan_suffix(conds, &remaining, &bound, self.graph, observed, &measured);
                    nodes.truncate(k + 1);
                    nodes.extend(suffix);
                    self.stats.plan_replans += 1;
                    replans += 1;
                }
            }
            k += 1;
        }
        // Canonical order: columns were fixed by the schema, rows are sorted
        // by a total order over values, so the same result relation is
        // byte-identical whatever plan produced it.
        b.canonical_sort();
        Ok(b)
    }

    /// Measures result multipliers for the pending conditions by running
    /// each one over a sample of the live relation through the real
    /// operators. Conditions that are not yet eligible (their active-domain
    /// expansion would race a later binder), whose estimated output would
    /// make the sample itself expensive, or that error are skipped — the
    /// re-planner falls back to static estimates for those.
    fn sample_multipliers(
        &mut self,
        conds: &[Condition],
        remaining: &[usize],
        b: &Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> FxHashMap<usize, f64> {
        const SAMPLE_ROWS: usize = 16;
        const SAMPLE_OUT_BUDGET: f64 = 50_000.0;
        let n = b.len().min(SAMPLE_ROWS);
        let mut sample = Bindings::with_vars(b.vars().to_vec());
        for i in 0..n {
            sample.push_row(b.row(i));
        }
        let stats = GraphStats::of(self.graph);
        let bound: FxHashSet<&str> = b.vars().iter().map(String::as_str).collect();
        let rem_refs: Vec<&Condition> = remaining.iter().map(|&i| &conds[i]).collect();
        let mut measured = FxHashMap::default();
        for &i in remaining {
            let cond = &conds[i];
            if !eligible(cond, &bound, &rem_refs) {
                continue;
            }
            let (static_mult, _) = multiplier(cond, &bound, self.graph, &stats);
            if static_mult * n as f64 > SAMPLE_OUT_BUDGET {
                continue;
            }
            if let Ok(out) = self.apply(cond, sample.clone(), arc_vars) {
                measured.insert(i, (out.len() as f64 / n as f64).max(1e-6));
            }
        }
        measured
    }

    // ---- the physical operators ----

    /// Executes one plan node's operator. This is the single dispatch point:
    /// the strategy tag is set from the operator (nowhere else), and both the
    /// plan-driven path and the boundness-driven [`Ev::apply`] go through it.
    fn execute_op(
        &mut self,
        op: PhysOp,
        cond: &Condition,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        self.strategy = op.tag();
        let mismatch = || {
            StruqlError::eval(format!(
                "plan operator `{}` does not apply to condition `{cond}`",
                op.tag()
            ))
        };
        match cond {
            Condition::Collection { name, arg, negated } => match op {
                PhysOp::CollectionSemijoin => self.collection_semijoin(name, arg, *negated, input),
                PhysOp::CollectionScan => self.collection_scan(name, arg, *negated, input),
                PhysOp::CollectionConst => self.collection_const(name, arg, *negated, input),
                _ => Err(mismatch()),
            },
            Condition::Compare { lhs, op: cmp, rhs } => match op {
                PhysOp::CompareBind => self.compare_bind(lhs, rhs, input),
                PhysOp::CompareFilter => self.compare_filter(lhs, *cmp, rhs, input, arc_vars),
                _ => Err(mismatch()),
            },
            Condition::In { var, set, negated } => match op {
                PhysOp::InSemijoin => self.in_semijoin(var, set, *negated, input, arc_vars),
                PhysOp::InExpand => self.in_expand(var, set, input),
                _ => Err(mismatch()),
            },
            Condition::Predicate {
                name,
                args,
                negated,
            } => match op {
                PhysOp::PredicateFilter => {
                    self.predicate_filter(name, args, *negated, input, arc_vars)
                }
                _ => Err(mismatch()),
            },
            Condition::Edge { from, step, to, .. } => match (op, step) {
                (PhysOp::NegEdgeSemijoin, PathStep::ArcVar(l)) => {
                    self.neg_edge_semijoin(from, l, to, input, arc_vars)
                }
                (PhysOp::ArcForward, PathStep::ArcVar(l)) => {
                    self.arc_edge_forward(from, l, to, input)
                }
                (PhysOp::ArcReverseIndex, PathStep::ArcVar(l)) => {
                    self.arc_edge_backward(from, l, to, input)
                }
                (PhysOp::ArcHashJoin | PhysOp::ArcScan, PathStep::ArcVar(l)) => {
                    self.arc_edge_scan(from, l, to, input)
                }
                (PhysOp::NegLabelSemijoin, PathStep::Rpe(Rpe::Label(name))) => {
                    self.neg_label_semijoin(name, from, to, input, arc_vars)
                }
                (PhysOp::LabelForward | PhysOp::LabelSemijoin, PathStep::Rpe(Rpe::Label(name))) => {
                    self.label_from_bound(name, from, to, input)
                }
                (
                    PhysOp::LabelReverseIndex | PhysOp::LabelHashJoin,
                    PathStep::Rpe(Rpe::Label(name)),
                ) => self.label_to_bound(name, from, to, input),
                (PhysOp::LabelScan, PathStep::Rpe(Rpe::Label(name))) => {
                    self.label_scan(name, from, to, input)
                }
                (PhysOp::NegRpeSemijoin, PathStep::Rpe(rpe)) => {
                    self.neg_rpe_semijoin(rpe, from, to, input, arc_vars)
                }
                (PhysOp::RpeForward, PathStep::Rpe(rpe)) => {
                    let nfa = self.compiled_nfa(rpe);
                    self.rpe_from_bound(&nfa, from, to, input)
                }
                (PhysOp::RpeReverse, PathStep::Rpe(rpe)) => {
                    let nfa = self.compiled_nfa(rpe);
                    self.rpe_to_bound(&nfa, from, to, input)
                }
                (PhysOp::RpeScan, PathStep::Rpe(rpe)) => {
                    let nfa = self.compiled_nfa(rpe);
                    self.rpe_both_unbound(&nfa, from, to, input)
                }
                (PhysOp::BareEdge, PathStep::Bare(name)) => Err(StruqlError::eval(format!(
                    "unresolved bare path step `{name}` (query was not analyzed)"
                ))),
                _ => Err(mismatch()),
            },
        }
    }

    /// Chooses the operator from the *runtime* schema and executes it — the
    /// pre-compiled-plan dispatch, kept for one-off applications (adaptive
    /// sampling) where compiling a plan would cost more than it saves.
    fn apply(
        &mut self,
        cond: &Condition,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let op = choose_op(cond, &|v| input.is_bound(v), self.graph.is_indexed());
        self.execute_op(op, cond, input, arc_vars)
    }

    /// Active-domain values for a variable: all labels if it is an arc
    /// variable, else all member nodes (documented choice; see module docs).
    fn active_domain(&self, var: &str, arc_vars: &FxHashSet<String>) -> Vec<Value> {
        if arc_vars.contains(var) {
            self.graph
                .labels()
                .into_iter()
                .map(|s| self.label_value(s))
                .collect()
        } else {
            self.graph.nodes().iter().map(|&n| Value::Node(n)).collect()
        }
    }

    /// Expands every unbound variable of `vars` over its active domain.
    fn expand_active(
        &self,
        mut b: Bindings,
        vars: &[&str],
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        for var in vars {
            if b.is_bound(var) {
                continue;
            }
            let domain = self.active_domain(var, arc_vars);
            if b.len().saturating_mul(domain.len()) > self.opts.max_rows {
                return Err(StruqlError::eval(format!(
                    "active-domain expansion of `{var}` exceeded max_rows"
                )));
            }
            let mut proto = Bindings::with_vars(b.vars().to_vec());
            proto.add_var(var);
            proto.reserve_rows(b.len().saturating_mul(domain.len()));
            let domain = &domain;
            b = self.run_rows(
                &b,
                proto,
                || (),
                |_, _, row, out| {
                    for v in domain {
                        out.push_row_extend(row, [v.clone()]);
                    }
                },
            );
        }
        Ok(b)
    }

    /// Membership filter of a bound variable against the collection extent.
    fn collection_semijoin(
        &mut self,
        name: &str,
        arg: &Term,
        negated: bool,
        mut input: Bindings,
    ) -> Result<Bindings> {
        let coll = self.graph.collection_str(name);
        let Term::Var(v) = arg else {
            return Err(StruqlError::eval(format!(
                "collection semijoin needs a variable argument, got `{arg}`"
            )));
        };
        let col = input.col(v).expect("bound");
        self.par_retain(
            &mut input,
            || (),
            |_, _, row| coll.is_some_and(|c| c.contains(&row[col])) != negated,
        );
        Ok(input)
    }

    /// Cross-join of the input with the collection's extent (or, negated,
    /// its complement over the member nodes), binding a fresh variable.
    fn collection_scan(
        &mut self,
        name: &str,
        arg: &Term,
        negated: bool,
        input: Bindings,
    ) -> Result<Bindings> {
        let coll = self.graph.collection_str(name);
        let Term::Var(v) = arg else {
            return Err(StruqlError::eval(format!(
                "collection scan needs a variable argument, got `{arg}`"
            )));
        };
        // The emitted domain is row-independent: the collection's
        // extent, or (negated) its complement over the member nodes.
        let domain: Vec<Value> = if !negated {
            match coll {
                Some(c) => c.items().to_vec(),
                None => Vec::new(),
            }
        } else {
            self.graph
                .nodes()
                .iter()
                .map(|&n| Value::Node(n))
                .filter(|v| !coll.is_some_and(|c| c.contains(v)))
                .collect()
        };
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        proto.add_var(v);
        proto.reserve_rows(input.len().saturating_mul(domain.len()));
        let domain = &domain;
        let out = self.run_rows(
            &input,
            proto,
            || (),
            |_, _, row, out| {
                for item in domain {
                    out.push_row_extend(row, [item.clone()]);
                }
            },
        );
        Ok(out)
    }

    /// Constant membership test of a literal: keeps or empties the input.
    fn collection_const(
        &mut self,
        name: &str,
        arg: &Term,
        negated: bool,
        mut input: Bindings,
    ) -> Result<Bindings> {
        let coll = self.graph.collection_str(name);
        match arg {
            Term::Lit(l) => {
                let val = l.to_value();
                let present = coll.is_some_and(|c| c.contains(&val));
                if present == negated {
                    input.clear_rows();
                }
                Ok(input)
            }
            Term::Var(v) => Err(StruqlError::eval(format!(
                "collection const got variable `{v}`"
            ))),
            Term::Skolem(s) => Err(StruqlError::eval(format!(
                "Skolem term `{s}` cannot appear in WHERE"
            ))),
            Term::Agg(f, v) => Err(StruqlError::eval(format!(
                "aggregate `{f}({v})` cannot appear in WHERE"
            ))),
        }
    }

    /// Assignment `v = <bound term>`: binds the unbound side, one row out
    /// per row in.
    fn compare_bind(&mut self, lhs: &Term, rhs: &Term, input: Bindings) -> Result<Bindings> {
        let lb = match lhs {
            Term::Var(v) => input.is_bound(v),
            _ => true,
        };
        let (var, bound_term) = if lb {
            (rhs.as_var().expect("unbound side is a var"), lhs)
        } else {
            (lhs.as_var().expect("unbound side is a var"), rhs)
        };
        let slot = TermSlot::of(&input, bound_term)?;
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        proto.add_var(var);
        proto.reserve_rows(input.len());
        let slot = &slot;
        let out = self.run_rows(
            &input,
            proto,
            || (),
            |_, _, row, out| {
                out.push_row_extend(row, [slot.value(row).clone()]);
            },
        );
        Ok(out)
    }

    /// General comparison: expand any unbound vars, then filter in place.
    fn compare_filter(
        &mut self,
        lhs: &Term,
        op: CmpOp,
        rhs: &Term,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let mut need: Vec<&str> = Vec::new();
        for t in [lhs, rhs] {
            if let Term::Var(v) = t {
                if !input.is_bound(v) {
                    need.push(v);
                }
            }
        }
        let mut b = self.expand_active(input, &need, arc_vars)?;
        let ls = TermSlot::of(&b, lhs)?;
        let rs = TermSlot::of(&b, rhs)?;
        let (ls, rs) = (&ls, &rs);
        self.par_retain(
            &mut b,
            || (),
            |_, _, row| compare(ls.value(row), op, rs.value(row)),
        );
        Ok(b)
    }

    /// `v IN {…}` membership filter. An unbound variable (only reachable
    /// negated — the planner routes positive unbound `IN` to
    /// [`Ev::in_expand`]) is expanded over its active domain first.
    fn in_semijoin(
        &mut self,
        var: &str,
        set: &[Literal],
        negated: bool,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let mut input = if input.is_bound(var) {
            input
        } else {
            self.expand_active(input, &[var], arc_vars)?
        };
        let col = input.col(var).expect("bound");
        let vals: Vec<Value> = set.iter().map(Literal::to_value).collect();
        let vals = &vals;
        self.par_retain(
            &mut input,
            || (),
            |_, _, row| vals.iter().any(|v| v.coerced_eq(&row[col])) != negated,
        );
        Ok(input)
    }

    /// `v IN {…}` enumeration: binds `v` to each set element.
    fn in_expand(&mut self, var: &str, set: &[Literal], input: Bindings) -> Result<Bindings> {
        let vals: Vec<Value> = set.iter().map(Literal::to_value).collect();
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        proto.add_var(var);
        proto.reserve_rows(input.len().saturating_mul(vals.len()));
        let vals = &vals;
        let out = self.run_rows(
            &input,
            proto,
            || (),
            |_, _, row, out| {
                for v in vals {
                    out.push_row_extend(row, [v.clone()]);
                }
            },
        );
        Ok(out)
    }

    /// Built-in/external predicate filter (expanding unbound args first).
    fn predicate_filter(
        &mut self,
        name: &str,
        args: &[Term],
        negated: bool,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let need: Vec<&str> = args
            .iter()
            .filter_map(|t| t.as_var())
            .filter(|v| !input.is_bound(v))
            .collect();
        let mut b = self.expand_active(input, &need, arc_vars)?;
        let slots: Vec<TermSlot> = args
            .iter()
            .map(|a| TermSlot::of(&b, a))
            .collect::<Result<_>>()?;
        let preds = &self.opts.predicates;
        let unknown = AtomicBool::new(false);
        let slots = &slots;
        let unknown_ref = &unknown;
        self.par_retain(
            &mut b,
            || (),
            |_, _, row| {
                let refs: Vec<&Value> = slots.iter().map(|s| s.value(row)).collect();
                match preds.apply(name, &refs) {
                    Some(holds) => holds != negated,
                    None => {
                        unknown_ref.store(true, Ordering::Relaxed);
                        false
                    }
                }
            },
        );
        if unknown.load(Ordering::Relaxed) {
            return Err(StruqlError::eval(format!("unknown predicate `{name}`")));
        }
        Ok(b)
    }

    /// Negated `from -> l -> to` (arc variable): anti-semijoin against the
    /// edge set, expanding any unbound variables over the active domain.
    fn neg_edge_semijoin(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let mut need: Vec<&str> = Vec::new();
        for t in [from, to] {
            if let Term::Var(v) = t {
                if !input.is_bound(v) {
                    need.push(v);
                }
            }
        }
        if !input.is_bound(l) {
            need.push(l);
        }
        let mut b = self.expand_active(input, &need, arc_vars)?;
        let reader = self.graph.reader();
        let fs = TermSlot::of(&b, from)?;
        let ts = TermSlot::of(&b, to)?;
        let l_col = b.col(l).expect("expanded");
        let (reader, fs, ts) = (&reader, &fs, &ts);
        self.par_retain(&mut b, LabelCache::default, |ev, labels, row| {
            !ev.edge_exists(
                reader,
                labels,
                fs.value(row),
                Some(&row[l_col]),
                ts.value(row),
            )
        });
        Ok(b)
    }

    fn arc_edge_forward(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let l_col = input.col(l);
        let to_unbound_var = match to {
            Term::Var(v) if !input.is_bound(v) => Some(v.as_str()),
            _ => None,
        };
        let to_mode = ToMode::of(&input, to)?;
        let fs = TermSlot::of(&input, from)?;
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        if l_col.is_none() {
            proto.add_var(l);
        }
        if let Some(v) = to_unbound_var {
            proto.add_var(v);
        }
        let reader = self.graph.reader();
        let (reader, fs, to_mode) = (&reader, &fs, &to_mode);
        let emit_target = to_unbound_var.is_some();
        let out = self.run_rows(
            &input,
            proto,
            LabelCache::default,
            |ev, labels, row, out| {
                let Some(n) = fs.value(row).as_node() else {
                    return;
                };
                for (sym, target) in reader.out(n) {
                    if let Some(c) = l_col {
                        if !labels.get(ev.graph, *sym).coerced_eq(&row[c]) {
                            continue;
                        }
                    }
                    match to_mode {
                        ToMode::Unbound => {}
                        ToMode::BoundCol(c) => {
                            if &row[*c] != target {
                                continue;
                            }
                        }
                        ToMode::Lit(lv) => {
                            if !lv.coerced_eq(target) {
                                continue;
                            }
                        }
                    }
                    match (l_col.is_some(), emit_target) {
                        (true, true) => out.push_row_extend(row, [target.clone()]),
                        (true, false) => out.push_row(row),
                        (false, true) => out.push_row_extend(
                            row,
                            [labels.get(ev.graph, *sym).clone(), target.clone()],
                        ),
                        (false, false) => {
                            out.push_row_extend(row, [labels.get(ev.graph, *sym).clone()])
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    fn arc_edge_backward(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let idx = self.graph.index().expect("checked indexed");
        let l_col = input.col(l);
        let from_var = from.as_var().expect("from is an unbound var here");
        let ts = TermSlot::of(&input, to)?;
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        if l_col.is_none() {
            proto.add_var(l);
        }
        proto.add_var(from_var);
        let ts = &ts;
        let out = self.run_rows(
            &input,
            proto,
            LabelCache::default,
            |ev, labels, row, out| {
                let incoming: &[(Oid, Sym)] = match ts.value(row) {
                    Value::Node(n) => idx.edges_to_node(*n),
                    atomic => idx.edges_to_value(atomic),
                };
                for (src, sym) in incoming {
                    if let Some(c) = l_col {
                        if !labels.get(ev.graph, *sym).coerced_eq(&row[c]) {
                            continue;
                        }
                        out.push_row_extend(row, [Value::Node(*src)]);
                    } else {
                        out.push_row_extend(
                            row,
                            [labels.get(ev.graph, *sym).clone(), Value::Node(*src)],
                        );
                    }
                }
            },
        );
        Ok(out)
    }

    /// Full edge scan: `from` unbound and no usable reverse index. A bound
    /// target turns this into a hash join (probe table over edge targets,
    /// built once); unbound/literal targets have a row-independent match set
    /// computed once and cross-joined with the input.
    fn arc_edge_scan(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let from_var = from.as_var().expect("from is an unbound var here");
        let l_col = input.col(l);
        let to_state = match to {
            Term::Var(v) if !input.is_bound(v) => ToState::Unbound(v.as_str()),
            Term::Var(v) => ToState::BoundVar(v.as_str()),
            Term::Lit(lit) => ToState::Lit(lit.to_value()),
            Term::Skolem(s) => {
                return Err(StruqlError::eval(format!(
                    "Skolem term `{s}` cannot appear in WHERE"
                )))
            }
            Term::Agg(f, v) => {
                return Err(StruqlError::eval(format!(
                    "aggregate `{f}({v})` cannot appear in WHERE"
                )))
            }
        };
        // `x -> l -> x` with one unbound variable on both ends binds it to
        // self-loop sources only, in a single column.
        let same_var = matches!(&to_state, ToState::Unbound(v) if *v == from_var);
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        proto.add_var(from_var);
        if l_col.is_none() {
            proto.add_var(l);
        }
        if !same_var {
            if let ToState::Unbound(v) = to_state {
                proto.add_var(v);
            }
        }
        let reader = self.graph.reader();
        let mut labels = LabelCache::default();
        if let ToState::BoundVar(v) = &to_state {
            // Hash join: joins of two bound variables use strict equality,
            // so a probe table keyed by edge target is exact. The probe
            // table is built once, sequentially; rows probe it in parallel.
            let tcol = input.col(v).expect("bound");
            let mut by_target: RevAdj = FxHashMap::default();
            for &n in self.graph.nodes() {
                for (sym, target) in reader.out(n) {
                    by_target.entry(target.clone()).or_default().push((n, *sym));
                }
            }
            let by_target = &by_target;
            let out = self.run_rows(
                &input,
                proto,
                LabelCache::default,
                |ev, labels, row, out| {
                    let Some(candidates) = by_target.get(&row[tcol]) else {
                        return;
                    };
                    for (n, sym) in candidates {
                        if let Some(c) = l_col {
                            if !labels.get(ev.graph, *sym).coerced_eq(&row[c]) {
                                continue;
                            }
                            out.push_row_extend(row, [Value::Node(*n)]);
                        } else {
                            out.push_row_extend(
                                row,
                                [Value::Node(*n), labels.get(ev.graph, *sym).clone()],
                            );
                        }
                    }
                },
            );
            return Ok(out);
        }
        // Row-independent match set (target unbound or a literal).
        let lit = match &to_state {
            ToState::Lit(v) => Some(v),
            _ => None,
        };
        let emit_target = !same_var && matches!(to_state, ToState::Unbound(_));
        let mut matches: Vec<(Oid, Sym, Option<Value>)> = Vec::new();
        for &n in self.graph.nodes() {
            for (sym, target) in reader.out(n) {
                if let Some(lv) = lit {
                    if !lv.coerced_eq(target) {
                        continue;
                    }
                }
                if same_var && *target != Value::Node(n) {
                    continue;
                }
                matches.push((n, *sym, emit_target.then(|| target.clone())));
            }
        }
        if let Some(c) = l_col {
            // Group matches by label symbol and compare each row's bound
            // label against the distinct label values (coerced, as literal
            // label comparisons are).
            let mut by_label: FxHashMap<Sym, Vec<(Oid, Option<Value>)>> = FxHashMap::default();
            for (n, sym, tv) in matches {
                by_label.entry(sym).or_default().push((n, tv));
            }
            let groups: ArcLabelGroups = by_label
                .into_iter()
                .map(|(sym, es)| (labels.get(self.graph, sym).clone(), es))
                .collect();
            let groups = &groups;
            let out = self.run_rows(
                &input,
                proto,
                || (),
                |_, _, row, out| {
                    for (lv, es) in groups {
                        if !lv.coerced_eq(&row[c]) {
                            continue;
                        }
                        for (n, tv) in es {
                            match tv {
                                Some(t) => out.push_row_extend(row, [Value::Node(*n), t.clone()]),
                                None => out.push_row_extend(row, [Value::Node(*n)]),
                            }
                        }
                    }
                },
            );
            Ok(out)
        } else {
            proto.reserve_rows(input.len().saturating_mul(matches.len()));
            let matches = &matches;
            let out = self.run_rows(
                &input,
                proto,
                LabelCache::default,
                |ev, labels, row, out| {
                    for (n, sym, tv) in matches {
                        let lv = labels.get(ev.graph, *sym).clone();
                        match tv {
                            Some(t) => out.push_row_extend(row, [Value::Node(*n), lv, t.clone()]),
                            None => out.push_row_extend(row, [Value::Node(*n), lv]),
                        }
                    }
                },
            );
            Ok(out)
        }
    }

    /// Whether an edge `from --l?--> to` exists (all values known).
    fn edge_exists(
        &self,
        reader: &GraphReader<'_>,
        labels: &mut LabelCache,
        from: &Value,
        label: Option<&Value>,
        to: &Value,
    ) -> bool {
        let Some(n) = from.as_node() else {
            return false;
        };
        reader.out(n).iter().any(|(sym, target)| {
            if let Some(lv) = label {
                if !labels.get(self.graph, *sym).coerced_eq(lv) {
                    return false;
                }
            }
            target == to
        })
    }

    /// Negated `from -> R -> to`: anti-semijoin over memoized reachability
    /// sets, expanding any unbound endpoints over the active domain.
    fn neg_rpe_semijoin(
        &mut self,
        rpe: &Rpe,
        from: &Term,
        to: &Term,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let nfa = self.compiled_nfa(rpe);
        let mut need: Vec<&str> = Vec::new();
        for t in [from, to] {
            if let Term::Var(v) = t {
                if !input.is_bound(v) {
                    need.push(v);
                }
            }
        }
        let mut b = self.expand_active(input, &need, arc_vars)?;
        let reader = self.graph.reader();
        let fs = TermSlot::of(&b, from)?;
        let ts = TermSlot::of(&b, to)?;
        let (reader, nfa, fs, ts) = (&reader, &nfa, &fs, &ts);
        self.par_retain(
            &mut b,
            || (),
            |ev, _, row| {
                let reach = ev.forward_reach(reader, nfa, fs.value(row));
                !reach.set.contains(ts.value(row))
            },
        );
        Ok(b)
    }

    /// Negated `from -> "label" -> to`: automaton-free anti-semijoin against
    /// the label's adjacency, expanding unbound endpoints first. Semantics
    /// match the general negated path exactly.
    fn neg_label_semijoin(
        &mut self,
        name: &str,
        from: &Term,
        to: &Term,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let want = self.graph.universe().interner().get(name);
        let reader = self.graph.reader();
        let mut need: Vec<&str> = Vec::new();
        for t in [from, to] {
            if let Term::Var(v) = t {
                if !input.is_bound(v) {
                    need.push(v);
                }
            }
        }
        let mut b = self.expand_active(input, &need, arc_vars)?;
        let fs = TermSlot::of(&b, from)?;
        let ts = TermSlot::of(&b, to)?;
        let (reader, fs, ts) = (&reader, &fs, &ts);
        self.par_retain(
            &mut b,
            || (),
            |_, _, row| {
                let Some(w) = want else { return true };
                let Some(n) = fs.value(row).as_node() else {
                    return true;
                };
                let t = ts.value(row);
                !reader
                    .out(n)
                    .iter()
                    .any(|(sym, target)| *sym == w && target == t)
            },
        );
        Ok(b)
    }

    /// `from -> "label" -> to` with `from` bound: an out-adjacency expansion
    /// binding a fresh target (plan op `label-forward`) or an adjacency
    /// semijoin against a bound/literal target (`label-semijoin`) — the
    /// branch is determined by the same target boundness the planner used.
    /// Semantics match the general path exactly, including the per-source
    /// target deduplication the BFS result set performs.
    fn label_from_bound(
        &mut self,
        name: &str,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let want = self.graph.universe().interner().get(name);
        let reader = self.graph.reader();
        {
            let fs = TermSlot::of(&input, from)?;
            let to_mode = ToMode::of(&input, to)?;
            match to_mode {
                ToMode::Unbound => {
                    let to_var = to.as_var().expect("unbound to is a var");
                    let mut proto = Bindings::with_vars(input.vars().to_vec());
                    proto.add_var(to_var);
                    let Some(w) = want else { return Ok(proto) };
                    let (reader, fs) = (&reader, &fs);
                    // The per-row target dedup buffer is worker-local
                    // scratch: it is cleared for every row, so per-worker
                    // instances emit exactly what one shared one would.
                    let out = self.run_rows(
                        &input,
                        proto,
                        Vec::new,
                        |_, emitted: &mut Vec<&Value>, row, out| {
                            let Some(n) = fs.value(row).as_node() else {
                                return;
                            };
                            emitted.clear();
                            for (sym, target) in reader.out(n) {
                                if *sym != w || emitted.contains(&target) {
                                    continue;
                                }
                                emitted.push(target);
                                out.push_row_extend(row, [target.clone()]);
                            }
                        },
                    );
                    Ok(out)
                }
                ToMode::BoundCol(c) => {
                    let mut input = input;
                    let (reader, fs) = (&reader, &fs);
                    self.par_retain(
                        &mut input,
                        || (),
                        |_, _, row| {
                            let Some(w) = want else { return false };
                            let Some(n) = fs.value(row).as_node() else {
                                return false;
                            };
                            reader
                                .out(n)
                                .iter()
                                .any(|(sym, target)| *sym == w && target == &row[c])
                        },
                    );
                    Ok(input)
                }
                ToMode::Lit(lv) => {
                    let mut input = input;
                    let (reader, fs, lv) = (&reader, &fs, &lv);
                    self.par_retain(
                        &mut input,
                        || (),
                        |_, _, row| {
                            let Some(w) = want else { return false };
                            let Some(n) = fs.value(row).as_node() else {
                                return false;
                            };
                            reader
                                .out(n)
                                .iter()
                                .any(|(sym, target)| *sym == w && lv.coerced_eq(target))
                        },
                    );
                    Ok(input)
                }
            }
        }
    }

    /// `from -> "label" -> to` with `from` unbound onto a bound target:
    /// probes the reverse adjacency and filters by symbol — the backward
    /// path. The plan op recorded whether the probe uses the graph index
    /// (`label-reverse-index`) or the materialized map (`label-hash-join`);
    /// both route through [`Ev::reverse_adjacency`], which makes the same
    /// choice from the same graph state. The materialized map is built once,
    /// sequentially, before rows probe it in parallel.
    fn label_to_bound(
        &mut self,
        name: &str,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let want = self.graph.universe().interner().get(name);
        let from_var = from.as_var().expect("unbound from");
        {
            let adj = self.reverse_adjacency();
            let ts = TermSlot::of(&input, to)?;
            let mut proto = Bindings::with_vars(input.vars().to_vec());
            proto.add_var(from_var);
            let Some(w) = want else { return Ok(proto) };
            let (adj, ts) = (&adj, &ts);
            let out = self.run_rows(
                &input,
                proto,
                Vec::new,
                |_, emitted: &mut Vec<Oid>, row, out| {
                    emitted.clear();
                    for (src, sym) in adj.incoming(ts.value(row)) {
                        if *sym != w || emitted.contains(src) {
                            continue;
                        }
                        emitted.push(*src);
                        out.push_row_extend(row, [Value::Node(*src)]);
                    }
                },
            );
            Ok(out)
        }
    }

    /// `from -> "label" -> to` with both ends unbound: the label's pair set
    /// is row-independent — computed once (with per-source target dedup,
    /// matching the BFS result-set semantics) and cross-joined.
    fn label_scan(
        &mut self,
        name: &str,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let want = self.graph.universe().interner().get(name);
        let reader = self.graph.reader();
        let from_var = from.as_var().expect("unbound from");
        {
            let to_state = match to {
                Term::Var(v) => ToState::Unbound(v.as_str()),
                Term::Lit(lit) => ToState::Lit(lit.to_value()),
                Term::Skolem(s) => {
                    return Err(StruqlError::eval(format!(
                        "Skolem term `{s}` cannot appear in WHERE"
                    )))
                }
                Term::Agg(f, v) => {
                    return Err(StruqlError::eval(format!(
                        "aggregate `{f}({v})` cannot appear in WHERE"
                    )))
                }
            };
            // `x -> l -> x` with one unbound variable on both ends
            // binds it to self-loop sources only, in a single column.
            let same_var = matches!(&to_state, ToState::Unbound(v) if *v == from_var);
            let mut proto = Bindings::with_vars(input.vars().to_vec());
            proto.add_var(from_var);
            if !same_var {
                if let ToState::Unbound(v) = to_state {
                    proto.add_var(v);
                }
            }
            let Some(w) = want else { return Ok(proto) };
            let mut pairs: Vec<(Oid, Value)> = Vec::new();
            let mut emitted: Vec<&Value> = Vec::new();
            for &n in self.graph.nodes() {
                emitted.clear();
                for (sym, target) in reader.out(n) {
                    if *sym != w || emitted.contains(&target) {
                        continue;
                    }
                    emitted.push(target);
                    if let ToState::Lit(lv) = &to_state {
                        if !lv.coerced_eq(target) {
                            continue;
                        }
                    }
                    if same_var && *target != Value::Node(n) {
                        continue;
                    }
                    pairs.push((n, target.clone()));
                }
            }
            let emit_target = !same_var && matches!(to_state, ToState::Unbound(_));
            proto.reserve_rows(input.len().saturating_mul(pairs.len()));
            let pairs = &pairs;
            let out = self.run_rows(
                &input,
                proto,
                || (),
                |_, _, row, out| {
                    for (n, t) in pairs {
                        if emit_target {
                            out.push_row_extend(row, [Value::Node(*n), t.clone()]);
                        } else {
                            out.push_row_extend(row, [Value::Node(*n)]);
                        }
                    }
                },
            );
            Ok(out)
        }
    }

    fn rpe_from_bound(
        &mut self,
        nfa: &Arc<Nfa>,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let to_unbound_var = match to {
            Term::Var(v) if !input.is_bound(v) => Some(v.as_str()),
            _ => None,
        };
        let to_mode = ToMode::of(&input, to)?;
        let fs = TermSlot::of(&input, from)?;
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        if let Some(v) = to_unbound_var {
            proto.add_var(v);
        }
        let reader = self.graph.reader();
        let (reader, fs, to_mode) = (&reader, &fs, &to_mode);
        // Consecutive rows often share the source value; each worker
        // remembers its last reach set to skip the cache lock.
        let out = self.run_rows(
            &input,
            proto,
            || None,
            |ev, last: &mut Option<(Value, Arc<Reach>)>, row, out| {
                let f = fs.value(row);
                let reach = match &*last {
                    Some((lf, r)) if lf == f => Arc::clone(r),
                    _ => {
                        let r = ev.forward_reach(reader, nfa, f);
                        *last = Some((f.clone(), Arc::clone(&r)));
                        r
                    }
                };
                match to_mode {
                    ToMode::Unbound => {
                        for t in &reach.order {
                            out.push_row_extend(row, [t.clone()]);
                        }
                    }
                    ToMode::BoundCol(c) => {
                        if reach.set.contains(&row[*c]) {
                            out.push_row(row);
                        }
                    }
                    ToMode::Lit(lv) => {
                        if reach.order.iter().any(|t| lv.coerced_eq(t)) {
                            out.push_row(row);
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    fn rpe_to_bound(
        &mut self,
        nfa: &Arc<Nfa>,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let from_var = from.as_var().expect("unbound from");
        let rev = self.reversed_nfa(nfa);
        let reverse_adj = self.reverse_adjacency();
        let ts = TermSlot::of(&input, to)?;
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        proto.add_var(from_var);
        let (rev, reverse_adj, ts) = (&rev, &reverse_adj, &ts);
        let out = self.run_rows(
            &input,
            proto,
            || None,
            |ev, last: &mut Option<(Value, Arc<Reach>)>, row, out| {
                let t = ts.value(row);
                let sources = match &*last {
                    Some((lt, r)) if lt == t => Arc::clone(r),
                    _ => {
                        let r = ev.backward_reach(rev, reverse_adj, t);
                        *last = Some((t.clone(), Arc::clone(&r)));
                        r
                    }
                };
                // Sources are nodes (edges originate at nodes); keep atomics
                // only when the empty path matched (s == t).
                for s in &sources.order {
                    out.push_row_extend(row, [s.clone()]);
                }
            },
        );
        Ok(out)
    }

    fn rpe_both_unbound(
        &mut self,
        nfa: &Arc<Nfa>,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let from_var = from.as_var().expect("unbound from");
        let to_state = match to {
            Term::Var(v) => ToState::Unbound(v.as_str()),
            Term::Lit(lit) => ToState::Lit(lit.to_value()),
            Term::Skolem(s) => {
                return Err(StruqlError::eval(format!(
                    "Skolem term `{s}` cannot appear in WHERE"
                )))
            }
            Term::Agg(f, v) => {
                return Err(StruqlError::eval(format!(
                    "aggregate `{f}({v})` cannot appear in WHERE"
                )))
            }
        };
        // `x -> rpe -> x` with one unbound variable on both ends binds it
        // to cyclic sources only, in a single column.
        let same_var = matches!(&to_state, ToState::Unbound(v) if *v == from_var);
        let mut proto = Bindings::with_vars(input.vars().to_vec());
        proto.add_var(from_var);
        if !same_var {
            if let ToState::Unbound(v) = to_state {
                proto.add_var(v);
            }
        }
        let reader = self.graph.reader();
        // Sources range over the member nodes (the active domain choice).
        let mut pairs: Vec<(Value, Value)> = Vec::new();
        for &n in self.graph.nodes() {
            let f = Value::Node(n);
            let reach = self.forward_reach(&reader, nfa, &f);
            for t in &reach.order {
                if same_var && *t != f {
                    continue;
                }
                match &to_state {
                    ToState::Unbound(_) => pairs.push((f.clone(), t.clone())),
                    ToState::Lit(lit) => {
                        if lit.coerced_eq(t) {
                            pairs.push((f.clone(), t.clone()));
                        }
                    }
                    ToState::BoundVar(_) => unreachable!("to is unbound here"),
                }
            }
        }
        let emit_target = !same_var && matches!(to_state, ToState::Unbound(_));
        proto.reserve_rows(input.len().saturating_mul(pairs.len()));
        let pairs = &pairs;
        let out = self.run_rows(
            &input,
            proto,
            || (),
            |_, _, row, out| {
                for (f, t) in pairs {
                    if emit_target {
                        out.push_row_extend(row, [f.clone(), t.clone()]);
                    } else {
                        out.push_row_extend(row, [f.clone()]);
                    }
                }
            },
        );
        Ok(out)
    }

    /// Product-automaton BFS, forward. Returns every value reachable from
    /// `start` along a path matching the automaton.
    fn rpe_forward(&self, reader: &GraphReader<'_>, nfa: &Nfa, start: &Value) -> Reach {
        let interner = self.graph.universe().interner();
        let resolve = |s: Sym| Value::Str(interner.resolve(s));
        let mut results: Vec<Value> = Vec::new();
        let mut result_set: FxHashSet<Value> = FxHashSet::default();
        let mut visited: FxHashSet<(Value, u32)> = FxHashSet::default();
        let mut queue: VecDeque<(Value, u32)> = VecDeque::new();
        for s in nfa.eps_closure_of(nfa.start()) {
            if visited.insert((start.clone(), s)) {
                queue.push_back((start.clone(), s));
            }
        }
        while let Some((v, s)) = queue.pop_front() {
            if nfa.is_accept(s) && result_set.insert(v.clone()) {
                results.push(v.clone());
            }
            let Some(n) = v.as_node() else { continue };
            for (test, t) in nfa.transitions(s) {
                for (sym, target) in reader.out(n) {
                    if test.matches(*sym, &resolve, &self.opts.predicates) {
                        for u in nfa.eps_closure_of(*t) {
                            let key = (target.clone(), u);
                            if visited.insert(key.clone()) {
                                queue.push_back(key);
                            }
                        }
                    }
                }
            }
        }
        Reach {
            order: results,
            set: result_set,
        }
    }

    /// Product-automaton BFS over reverse edges: every value from which a
    /// matching path reaches `start`.
    fn rpe_backward(&self, rev: &Nfa, adj: &ReverseAdj<'_>, start: &Value) -> Reach {
        let interner = self.graph.universe().interner();
        let resolve = |s: Sym| Value::Str(interner.resolve(s));
        let mut results: Vec<Value> = Vec::new();
        let mut result_set: FxHashSet<Value> = FxHashSet::default();
        let mut visited: FxHashSet<(Value, u32)> = FxHashSet::default();
        let mut queue: VecDeque<(Value, u32)> = VecDeque::new();
        for s in rev.eps_closure_of(rev.start()) {
            if visited.insert((start.clone(), s)) {
                queue.push_back((start.clone(), s));
            }
        }
        while let Some((v, s)) = queue.pop_front() {
            if rev.is_accept(s) && result_set.insert(v.clone()) {
                results.push(v.clone());
            }
            for (src, sym) in adj.incoming(&v) {
                for (test, t) in rev.transitions(s) {
                    if test.matches(*sym, &resolve, &self.opts.predicates) {
                        for u in rev.eps_closure_of(*t) {
                            let key = (Value::Node(*src), u);
                            if visited.insert(key.clone()) {
                                queue.push_back(key);
                            }
                        }
                    }
                }
            }
        }
        Reach {
            order: results,
            set: result_set,
        }
    }

    /// Reverse adjacency: from the index when available, else materialized
    /// at most once per cache lifetime and shared across evaluations.
    fn reverse_adjacency(&self) -> ReverseAdj<'g> {
        if let Some(idx) = self.graph.index() {
            return ReverseAdj::Indexed(idx);
        }
        {
            let c = self.cache();
            if let Some(map) = &c.reverse_adj {
                self.cache_hit();
                return ReverseAdj::Materialized(Arc::clone(map));
            }
        }
        self.cache_miss();
        let mut map: RevAdj = FxHashMap::default();
        let reader = self.graph.reader();
        for &n in self.graph.nodes() {
            for (sym, target) in reader.out(n) {
                map.entry(target.clone()).or_default().push((n, *sym));
            }
        }
        let map = Arc::new(map);
        self.cache().reverse_adj = Some(Arc::clone(&map));
        ReverseAdj::Materialized(map)
    }
}

/// A term resolved against a schema: either a column of the relation or a
/// constant. Lets filters run over row slices without re-resolving names.
enum TermSlot {
    Col(usize),
    Const(Value),
}

impl TermSlot {
    fn of(b: &Bindings, term: &Term) -> Result<TermSlot> {
        match term {
            Term::Var(v) => Ok(TermSlot::Col(b.col(v).expect("variable bound by now"))),
            Term::Lit(l) => Ok(TermSlot::Const(l.to_value())),
            Term::Skolem(s) => Err(StruqlError::eval(format!(
                "Skolem term `{s}` cannot appear in WHERE"
            ))),
            Term::Agg(f, v) => Err(StruqlError::eval(format!(
                "aggregate `{f}({v})` cannot appear in WHERE"
            ))),
        }
    }

    #[inline]
    fn value<'r>(&'r self, row: &'r [Value]) -> &'r Value {
        match self {
            TermSlot::Col(i) => &row[*i],
            TermSlot::Const(v) => v,
        }
    }
}

/// How the target term of a forward edge/path step is interpreted.
enum ToMode {
    Unbound,
    BoundCol(usize),
    Lit(Value),
}

impl ToMode {
    fn of(b: &Bindings, to: &Term) -> Result<ToMode> {
        match to {
            Term::Var(v) => match b.col(v) {
                Some(c) => Ok(ToMode::BoundCol(c)),
                None => Ok(ToMode::Unbound),
            },
            Term::Lit(lit) => Ok(ToMode::Lit(lit.to_value())),
            Term::Skolem(s) => Err(StruqlError::eval(format!(
                "Skolem term `{s}` cannot appear in WHERE"
            ))),
            Term::Agg(f, v) => Err(StruqlError::eval(format!(
                "aggregate `{f}({v})` cannot appear in WHERE"
            ))),
        }
    }
}

/// Memoizes label-symbol → [`Value::Str`] resolution so hot loops do not
/// take the interner's lock per edge.
#[derive(Default)]
struct LabelCache(FxHashMap<Sym, Value>);

impl LabelCache {
    fn get(&mut self, graph: &Graph, sym: Sym) -> &Value {
        self.0
            .entry(sym)
            .or_insert_with(|| Value::Str(graph.universe().interner().resolve(sym)))
    }
}

enum ToState<'a> {
    Unbound(&'a str),
    BoundVar(&'a str),
    Lit(Value),
}

enum ReverseAdj<'g> {
    Indexed(&'g strudel_graph::index::GraphIndex),
    Materialized(Arc<RevAdj>),
}

impl ReverseAdj<'_> {
    fn incoming(&self, v: &Value) -> &[(Oid, Sym)] {
        match self {
            ReverseAdj::Indexed(idx) => match v {
                Value::Node(n) => idx.edges_to_node(*n),
                atomic => idx.edges_to_value(atomic),
            },
            ReverseAdj::Materialized(map) => map.get(v).map_or(&[], Vec::as_slice),
        }
    }
}

fn compare(l: &Value, op: CmpOp, r: &Value) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => l.coerced_eq(r),
        CmpOp::Ne => !l.coerced_eq(r),
        CmpOp::Lt => l.coerced_cmp(r) == Some(Less),
        CmpOp::Le => matches!(l.coerced_cmp(r), Some(Less | Equal)),
        CmpOp::Gt => l.coerced_cmp(r) == Some(Greater),
        CmpOp::Ge => matches!(l.coerced_cmp(r), Some(Greater | Equal)),
    }
}
