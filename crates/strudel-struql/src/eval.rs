//! The query stage: evaluating `WHERE` clauses over a graph.
//!
//! Evaluation walks the block tree. For each block, the optimizer orders the
//! block's conditions ([`crate::optimize`]); each condition is then applied
//! as a physical operator that transforms the bindings relation — scans of
//! collection extents and label extensions, out-edge expansion, reverse-index
//! probes, product-automaton traversal for regular path expressions (forward
//! *and* backward), filters for predicates and comparisons, and
//! active-domain expansion for variables no positive condition binds (which
//! gives queries like the graph-complement example of §3 their well-defined
//! meaning).
//!
//! A nested block starts from its parent's bindings, so the conjunction of
//! ancestor `WHERE` clauses is evaluated exactly once — the paper's nested
//! blocks are both sugar and a shared-prefix optimization here.
//!
//! Equality semantics: `Compare`/`In` conditions and *literals* use the data
//! model's dynamic coercion ([`strudel_graph::Value::coerced_eq`]); joins of
//! two bound variables and index probes use strict equality (indexes are
//! exact). This is documented behaviour of this reproduction.

use crate::analyze::analyze;
use crate::ast::*;
use crate::binding::Bindings;
use crate::construct::{apply_block, ConstructStats, SkolemTable};
use crate::error::{Result, StruqlError};
use crate::optimize::{plan, Optimizer};
use crate::pred::PredicateRegistry;
use crate::rpe::Nfa;
use std::collections::VecDeque;
use std::sync::Arc;
use strudel_graph::fxhash::{FxHashMap, FxHashSet};
use strudel_graph::graph::GraphReader;
use strudel_graph::{Graph, Oid, Sym, Value};

pub use crate::optimize::Optimizer as OptimizerChoice;

/// Options controlling evaluation.
#[derive(Clone)]
pub struct EvalOptions {
    /// Plan-selection strategy (default: cost-based).
    pub optimizer: Optimizer,
    /// Predicate registry (default: the built-ins).
    pub predicates: PredicateRegistry,
    /// Hard cap on the size of any intermediate bindings relation; guards
    /// against accidental active-domain cross products.
    pub max_rows: usize,
    /// Record per-block plan descriptions in the stats.
    pub explain: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            optimizer: Optimizer::CostBased,
            predicates: PredicateRegistry::with_builtins(),
            max_rows: 10_000_000,
            explain: false,
        }
    }
}

impl EvalOptions {
    /// Options using the given optimizer, otherwise defaults.
    pub fn with_optimizer(optimizer: Optimizer) -> Self {
        EvalOptions {
            optimizer,
            ..Default::default()
        }
    }
}

/// Counters and plan descriptions from one evaluation.
#[derive(Default, Clone, Debug)]
pub struct EvalStats {
    /// Conditions applied (across all blocks).
    pub conditions_applied: u64,
    /// Total rows produced by all intermediate relations.
    pub intermediate_rows: u64,
    /// Construction-stage counters.
    pub construct: ConstructStats,
    /// Per-block plan descriptions (only when `explain` is set).
    pub plans: Vec<String>,
    /// Analyzer warnings (active-domain fallbacks etc.).
    pub warnings: Vec<String>,
}

/// The result of evaluating a query: the output graph plus statistics.
#[derive(Debug)]
pub struct EvalOutput {
    /// The constructed output graph (shares the input's universe).
    pub graph: Graph,
    /// The Skolem table: which `F(args)` produced which node. Site
    /// verification uses this to find the extension of each Skolem function.
    pub table: SkolemTable,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl Query {
    /// Evaluates the query against `input`, producing a fresh output graph
    /// in the same universe.
    pub fn evaluate(&self, input: &Graph, opts: &EvalOptions) -> Result<EvalOutput> {
        let mut out = Graph::new(Arc::clone(input.universe()));
        let mut table = SkolemTable::new();
        let stats = self.evaluate_into(input, &mut out, &mut table, opts)?;
        Ok(EvalOutput {
            graph: out,
            table,
            stats,
        })
    }

    /// Evaluates the query, writing construction results into an existing
    /// graph with an externally owned Skolem table. This is how "different
    /// queries create different parts of the same site" (§5.2): queries
    /// sharing a table resolve the same Skolem terms to the same nodes.
    pub fn evaluate_into(
        &self,
        input: &Graph,
        out: &mut Graph,
        table: &mut SkolemTable,
        opts: &EvalOptions,
    ) -> Result<EvalStats> {
        let analyzed = analyze(self, &opts.predicates)?;
        let mut ev = Ev {
            graph: input,
            opts,
            stats: EvalStats::default(),
        };
        ev.stats.warnings = analyzed.warnings;
        let arc_vars = arc_vars_of(&analyzed.query);
        ev.eval_block(
            &analyzed.query.root,
            &Bindings::unit(),
            out,
            table,
            &arc_vars,
        )?;
        Ok(ev.stats)
    }

    /// Evaluates only the *query stage* for the conjunction governing block
    /// `id` (ancestors' conditions plus the block's own), returning the
    /// bindings relation. Used by site schemas' incremental evaluation and
    /// by tests.
    pub fn bindings_of_block(
        &self,
        id: BlockId,
        input: &Graph,
        opts: &EvalOptions,
    ) -> Result<Bindings> {
        let analyzed = analyze(self, &opts.predicates)?;
        let conds: Vec<Condition> = analyzed
            .query
            .governing_conditions(id)
            .ok_or_else(|| StruqlError::eval(format!("no block {id}")))?
            .into_iter()
            .cloned()
            .collect();
        let mut ev = Ev {
            graph: input,
            opts,
            stats: EvalStats::default(),
        };
        let arc_vars = arc_vars_of(&analyzed.query);
        ev.eval_conditions(&conds, Bindings::unit(), &arc_vars)
    }

    /// Returns the plans the optimizer would choose for every block, without
    /// executing the query.
    pub fn explain(&self, input: &Graph, opts: &EvalOptions) -> Result<String> {
        let analyzed = analyze(self, &opts.predicates)?;
        let mut out = String::new();
        for block in analyzed.query.blocks() {
            let bound: FxHashSet<&str> = FxHashSet::default();
            let p = plan(&block.where_, &bound, input, opts.optimizer);
            out.push_str(&format!("{}:\n{}", block.id, p.describe(&block.where_)));
        }
        Ok(out)
    }
}

/// Runs a query against a [`strudel_graph::Database`], resolving the
/// `INPUT` graph name and materializing (or extending) the `OUTPUT` graph:
/// `INPUT BIBTEX … OUTPUT HomePage` reads `db["BIBTEX"]` and writes
/// `db["HomePage"]`. If the output graph already exists the query *extends*
/// it — the §5.2 composition mode ("we allowed queries to add nodes and
/// arcs to a graph, instead of creating a new graph in every query") — with
/// the caller-supplied Skolem table carrying identity across queries.
pub fn run_on_database(
    db: &mut strudel_graph::Database,
    query: &Query,
    table: &mut SkolemTable,
    opts: &EvalOptions,
) -> Result<EvalStats> {
    let input_name = query
        .input
        .as_deref()
        .ok_or_else(|| StruqlError::eval("query has no INPUT graph name"))?;
    let output_name = query
        .output
        .as_deref()
        .ok_or_else(|| StruqlError::eval("query has no OUTPUT graph name"))?
        .to_string();
    // Take the output graph out of the database (creating it if missing) so
    // input and output can be borrowed simultaneously.
    let mut out = match db.remove_graph(&output_name) {
        Ok(g) => g,
        Err(_) => Graph::new(Arc::clone(db.universe())),
    };
    let result = {
        let input = db.graph(input_name)?;
        query.evaluate_into(input, &mut out, table, opts)
    };
    db.insert_graph(&output_name, out)?;
    result
}

/// Evaluates a bare conjunction of (already analyzed) conditions against a
/// graph, starting from the given bindings. This is the query-stage entry
/// point used by click-time/incremental evaluation ([FER 98c]): the dynamic
/// evaluator binds a page's Skolem arguments and runs only the governing
/// conjunction of one link clause.
pub fn evaluate_conditions(
    conds: &[Condition],
    input: &Graph,
    start: Bindings,
    opts: &EvalOptions,
) -> Result<Bindings> {
    let mut ev = Ev {
        graph: input,
        opts,
        stats: EvalStats::default(),
    };
    let mut arc_vars = FxHashSet::default();
    for cond in conds {
        if let Condition::Edge {
            step: PathStep::ArcVar(v),
            ..
        } = cond
        {
            arc_vars.insert(v.clone());
        }
    }
    let bound: FxHashSet<&str> = start.vars().iter().map(String::as_str).collect();
    let p = plan(conds, &bound, input, opts.optimizer);
    let ordered: Vec<Condition> = p.order.iter().map(|&i| conds[i].clone()).collect();
    ev.eval_conditions(&ordered, start, &arc_vars)
}

/// The set of arc variables of a query (variables appearing in arc position
/// of some edge condition or as a link-label variable); used to pick the
/// active domain (labels vs. nodes) when expanding an unbound variable.
fn arc_vars_of(q: &Query) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for block in q.blocks() {
        for cond in &block.where_ {
            if let Condition::Edge {
                step: PathStep::ArcVar(v),
                ..
            } = cond
            {
                out.insert(v.clone());
            }
        }
        for link in &block.links {
            if let LabelTerm::Var(v) = &link.label {
                out.insert(v.clone());
            }
        }
    }
    out
}

struct Ev<'g> {
    graph: &'g Graph,
    opts: &'g EvalOptions,
    stats: EvalStats,
}

impl<'g> Ev<'g> {
    fn label_value(&self, sym: Sym) -> Value {
        Value::Str(self.graph.universe().interner().resolve(sym))
    }

    fn eval_block(
        &mut self,
        block: &Block,
        parent: &Bindings,
        out: &mut Graph,
        table: &mut SkolemTable,
        arc_vars: &FxHashSet<String>,
    ) -> Result<()> {
        let bindings = if block.where_.is_empty() {
            parent.clone()
        } else {
            let bound: FxHashSet<&str> = parent.vars().iter().map(String::as_str).collect();
            let p = plan(&block.where_, &bound, self.graph, self.opts.optimizer);
            if self.opts.explain {
                self.stats
                    .plans
                    .push(format!("{}:\n{}", block.id, p.describe(&block.where_)));
            }
            let ordered: Vec<Condition> =
                p.order.iter().map(|&i| block.where_[i].clone()).collect();
            self.eval_conditions(&ordered, parent.clone(), arc_vars)?
        };
        apply_block(block, &bindings, out, table, &mut self.stats.construct)?;
        for child in &block.children {
            self.eval_block(child, &bindings, out, table, arc_vars)?;
        }
        Ok(())
    }

    fn eval_conditions(
        &mut self,
        conds: &[Condition],
        start: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let mut b = start;
        for cond in conds {
            b = self.apply(cond, b, arc_vars)?;
            self.stats.conditions_applied += 1;
            self.stats.intermediate_rows += b.len() as u64;
            if b.len() > self.opts.max_rows {
                return Err(StruqlError::eval(format!(
                    "intermediate result exceeded max_rows ({} rows) at condition `{cond}`",
                    b.len()
                )));
            }
            if b.is_empty() {
                // Short-circuit: the conjunction is unsatisfiable.
                break;
            }
        }
        Ok(b)
    }

    // ---- the physical operators ----

    fn apply(
        &mut self,
        cond: &Condition,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        match cond {
            Condition::Collection { name, arg, negated } => {
                self.apply_collection(name, arg, *negated, input)
            }
            Condition::Compare { lhs, op, rhs } => {
                self.apply_compare(lhs, *op, rhs, input, arc_vars)
            }
            Condition::In { var, set, negated } => {
                self.apply_in(var, set, *negated, input, arc_vars)
            }
            Condition::Predicate {
                name,
                args,
                negated,
            } => self.apply_predicate(name, args, *negated, input, arc_vars),
            Condition::Edge {
                from,
                step,
                to,
                negated,
            } => match step {
                PathStep::ArcVar(l) => self.apply_arc_edge(from, l, to, *negated, input, arc_vars),
                PathStep::Rpe(rpe) => self.apply_rpe_edge(from, rpe, to, *negated, input, arc_vars),
                PathStep::Bare(name) => Err(StruqlError::eval(format!(
                    "unresolved bare path step `{name}` (query was not analyzed)"
                ))),
            },
        }
    }

    /// The value of a term in a row, if available.
    fn term_value<'r>(
        b: &Bindings,
        row: &'r [Value],
        term: &Term,
    ) -> Result<Option<ValueOrOwned<'r>>> {
        match term {
            Term::Var(v) => Ok(b.get(row, v).map(ValueOrOwned::Ref)),
            Term::Lit(l) => Ok(Some(ValueOrOwned::Owned(l.to_value()))),
            Term::Skolem(s) => Err(StruqlError::eval(format!(
                "Skolem term `{s}` cannot appear in WHERE"
            ))),
            Term::Agg(f, v) => Err(StruqlError::eval(format!(
                "aggregate `{f}({v})` cannot appear in WHERE"
            ))),
        }
    }

    /// Active-domain values for a variable: all labels if it is an arc
    /// variable, else all member nodes (documented choice; see module docs).
    fn active_domain(&self, var: &str, arc_vars: &FxHashSet<String>) -> Vec<Value> {
        if arc_vars.contains(var) {
            self.graph
                .labels()
                .into_iter()
                .map(|s| self.label_value(s))
                .collect()
        } else {
            self.graph.nodes().iter().map(|&n| Value::Node(n)).collect()
        }
    }

    /// Expands every unbound variable of `vars` over its active domain.
    fn expand_active(
        &self,
        mut b: Bindings,
        vars: &[&str],
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        for var in vars {
            if b.is_bound(var) {
                continue;
            }
            let domain = self.active_domain(var, arc_vars);
            let mut out = Bindings::with_vars(b.vars().to_vec());
            out.add_var(var);
            out.rows.reserve(b.len().saturating_mul(domain.len()));
            for row in &b.rows {
                for v in &domain {
                    let mut r = row.clone();
                    r.push(v.clone());
                    out.rows.push(r);
                }
            }
            if out.rows.len() > self.opts.max_rows {
                return Err(StruqlError::eval(format!(
                    "active-domain expansion of `{var}` exceeded max_rows"
                )));
            }
            b = out;
        }
        Ok(b)
    }

    fn apply_collection(
        &mut self,
        name: &str,
        arg: &Term,
        negated: bool,
        input: Bindings,
    ) -> Result<Bindings> {
        let coll = self.graph.collection_str(name);
        match arg {
            Term::Var(v) if input.is_bound(v) => {
                let col = input.col(v).expect("bound");
                let mut out = Bindings::with_vars(input.vars().to_vec());
                out.rows.extend(input.rows.into_iter().filter(|row| {
                    let present = coll.is_some_and(|c| c.contains(&row[col]));
                    present != negated
                }));
                Ok(out)
            }
            Term::Var(v) => {
                let mut out = Bindings::with_vars(input.vars().to_vec());
                out.add_var(v);
                if !negated {
                    let Some(coll) = coll else { return Ok(out) };
                    out.rows.reserve(input.rows.len() * coll.len());
                    for row in &input.rows {
                        for item in coll.items() {
                            let mut r = row.clone();
                            r.push(item.clone());
                            out.rows.push(r);
                        }
                    }
                } else {
                    // Active domain: nodes not in the collection.
                    for row in &input.rows {
                        for &n in self.graph.nodes() {
                            let v = Value::Node(n);
                            if !coll.is_some_and(|c| c.contains(&v)) {
                                let mut r = row.clone();
                                r.push(v);
                                out.rows.push(r);
                            }
                        }
                    }
                }
                Ok(out)
            }
            Term::Lit(l) => {
                let val = l.to_value();
                let present = coll.is_some_and(|c| c.contains(&val));
                let keep = present != negated;
                let mut out = Bindings::with_vars(input.vars().to_vec());
                if keep {
                    out.rows = input.rows;
                }
                Ok(out)
            }
            Term::Skolem(s) => Err(StruqlError::eval(format!(
                "Skolem term `{s}` cannot appear in WHERE"
            ))),
            Term::Agg(f, v) => Err(StruqlError::eval(format!(
                "aggregate `{f}({v})` cannot appear in WHERE"
            ))),
        }
    }

    fn apply_compare(
        &mut self,
        lhs: &Term,
        op: CmpOp,
        rhs: &Term,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let lb = match lhs {
            Term::Var(v) => input.is_bound(v),
            _ => true,
        };
        let rb = match rhs {
            Term::Var(v) => input.is_bound(v),
            _ => true,
        };
        // Assignment: `v = <bound>` binds v.
        if op == CmpOp::Eq && (lb ^ rb) {
            let (var, bound_term) = if lb {
                (rhs.as_var().expect("unbound side is a var"), lhs)
            } else {
                (lhs.as_var().expect("unbound side is a var"), rhs)
            };
            let mut out = Bindings::with_vars(input.vars().to_vec());
            out.add_var(var);
            for row in &input.rows {
                let val = Self::term_value(&input, row, bound_term)?
                    .expect("bound")
                    .into_owned();
                let mut r = row.clone();
                r.push(val);
                out.rows.push(r);
            }
            return Ok(out);
        }
        // General case: expand any unbound vars, then filter.
        let mut need: Vec<&str> = Vec::new();
        for t in [lhs, rhs] {
            if let Term::Var(v) = t {
                if !input.is_bound(v) {
                    need.push(v);
                }
            }
        }
        let b = self.expand_active(input, &need, arc_vars)?;
        let mut out = Bindings::with_vars(b.vars().to_vec());
        for row in &b.rows {
            let l = Self::term_value(&b, row, lhs)?.expect("expanded");
            let r = Self::term_value(&b, row, rhs)?.expect("expanded");
            if compare(l.as_ref(), op, r.as_ref()) {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    fn apply_in(
        &mut self,
        var: &str,
        set: &[Literal],
        negated: bool,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        if input.is_bound(var) {
            let col = input.col(var).expect("bound");
            let vals: Vec<Value> = set.iter().map(Literal::to_value).collect();
            let mut out = Bindings::with_vars(input.vars().to_vec());
            out.rows.extend(input.rows.into_iter().filter(|row| {
                let member = vals.iter().any(|v| v.coerced_eq(&row[col]));
                member != negated
            }));
            Ok(out)
        } else if !negated {
            let mut out = Bindings::with_vars(input.vars().to_vec());
            out.add_var(var);
            for row in &input.rows {
                for lit in set {
                    let mut r = row.clone();
                    r.push(lit.to_value());
                    out.rows.push(r);
                }
            }
            Ok(out)
        } else {
            let b = self.expand_active(input, &[var], arc_vars)?;
            self.apply_in(var, set, negated, b, arc_vars)
        }
    }

    fn apply_predicate(
        &mut self,
        name: &str,
        args: &[Term],
        negated: bool,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let need: Vec<&str> = args
            .iter()
            .filter_map(|t| t.as_var())
            .filter(|v| !input.is_bound(v))
            .collect();
        let b = self.expand_active(input, &need, arc_vars)?;
        let mut out = Bindings::with_vars(b.vars().to_vec());
        for row in &b.rows {
            let mut resolved: Vec<ValueOrOwned<'_>> = Vec::with_capacity(args.len());
            for a in args {
                resolved.push(Self::term_value(&b, row, a)?.expect("expanded"));
            }
            let refs: Vec<&Value> = resolved.iter().map(|v| v.as_ref()).collect();
            let holds = self
                .opts
                .predicates
                .apply(name, &refs)
                .ok_or_else(|| StruqlError::eval(format!("unknown predicate `{name}`")))?;
            if holds != negated {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    /// `from -> l -> to` with `l` an arc variable: single-edge conditions.
    fn apply_arc_edge(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        negated: bool,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        if negated {
            let mut need: Vec<&str> = Vec::new();
            for t in [from, to] {
                if let Term::Var(v) = t {
                    if !input.is_bound(v) {
                        need.push(v);
                    }
                }
            }
            if !input.is_bound(l) {
                need.push(l);
            }
            let b = self.expand_active(input, &need, arc_vars)?;
            let reader = self.graph.reader();
            let mut out = Bindings::with_vars(b.vars().to_vec());
            for row in &b.rows {
                let f = Self::term_value(&b, row, from)?.expect("expanded");
                let lv = b.get(row, l).expect("expanded").clone();
                let t = Self::term_value(&b, row, to)?.expect("expanded");
                let exists = self.edge_exists(&reader, f.as_ref(), Some(&lv), t.as_ref());
                if !exists {
                    out.rows.push(row.clone());
                }
            }
            return Ok(out);
        }

        let from_bound = match from {
            Term::Var(v) => input.is_bound(v),
            _ => true,
        };
        if from_bound {
            self.arc_edge_forward(from, l, to, input)
        } else {
            let to_bound = match to {
                Term::Var(v) => input.is_bound(v),
                _ => true,
            };
            if to_bound && self.graph.is_indexed() {
                self.arc_edge_backward(from, l, to, input)
            } else {
                self.arc_edge_scan(from, l, to, input)
            }
        }
    }

    fn arc_edge_forward(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let l_bound = input.is_bound(l);
        let to_unbound_var = match to {
            Term::Var(v) if !input.is_bound(v) => Some(v.as_str()),
            _ => None,
        };
        let mut out = Bindings::with_vars(input.vars().to_vec());
        if !l_bound {
            out.add_var(l);
        }
        if let Some(v) = to_unbound_var {
            out.add_var(v);
        }
        let reader = self.graph.reader();
        for row in &input.rows {
            let f = Self::term_value(&input, row, from)?.expect("bound");
            let Some(n) = f.as_ref().as_node() else {
                continue;
            };
            for (sym, target) in reader.out(n) {
                let lv = self.label_value(*sym);
                if l_bound {
                    let bound_l = input.get(row, l).expect("bound");
                    if !lv.coerced_eq(bound_l) {
                        continue;
                    }
                }
                match (to_unbound_var, to) {
                    (Some(_), _) => {}
                    (None, Term::Var(v)) => {
                        if input.get(row, v).expect("bound") != target {
                            continue;
                        }
                    }
                    (None, Term::Lit(lit)) => {
                        if !lit.to_value().coerced_eq(target) {
                            continue;
                        }
                    }
                    (None, Term::Skolem(_) | Term::Agg(..)) => {
                        unreachable!("checked by term_value")
                    }
                }
                let mut r = row.clone();
                if !l_bound {
                    r.push(lv);
                }
                if to_unbound_var.is_some() {
                    r.push(target.clone());
                }
                out.rows.push(r);
            }
        }
        Ok(out)
    }

    fn arc_edge_backward(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let idx = self.graph.index().expect("checked indexed");
        let l_bound = input.is_bound(l);
        let from_var = from.as_var().expect("from is an unbound var here");
        let mut out = Bindings::with_vars(input.vars().to_vec());
        if !l_bound {
            out.add_var(l);
        }
        out.add_var(from_var);
        for row in &input.rows {
            let t = Self::term_value(&input, row, to)?
                .expect("bound")
                .into_owned();
            let incoming: &[(Oid, Sym)] = match &t {
                Value::Node(n) => idx.edges_to_node(*n),
                atomic => idx.edges_to_value(atomic),
            };
            for (src, sym) in incoming {
                let lv = self.label_value(*sym);
                if l_bound {
                    let bound_l = input.get(row, l).expect("bound");
                    if !lv.coerced_eq(bound_l) {
                        continue;
                    }
                }
                let mut r = row.clone();
                if !l_bound {
                    r.push(lv);
                }
                r.push(Value::Node(*src));
                out.rows.push(r);
            }
        }
        Ok(out)
    }

    /// Full edge scan: `from` unbound and no usable reverse index.
    fn arc_edge_scan(
        &mut self,
        from: &Term,
        l: &str,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let from_var = from.as_var().expect("from is an unbound var here");
        let l_bound = input.is_bound(l);
        let to_state = match to {
            Term::Var(v) if !input.is_bound(v) => ToState::Unbound(v.as_str()),
            Term::Var(v) => ToState::BoundVar(v.as_str()),
            Term::Lit(lit) => ToState::Lit(lit.to_value()),
            Term::Skolem(s) => {
                return Err(StruqlError::eval(format!(
                    "Skolem term `{s}` cannot appear in WHERE"
                )))
            }
            Term::Agg(f, v) => {
                return Err(StruqlError::eval(format!(
                    "aggregate `{f}({v})` cannot appear in WHERE"
                )))
            }
        };
        let mut out = Bindings::with_vars(input.vars().to_vec());
        out.add_var(from_var);
        if !l_bound {
            out.add_var(l);
        }
        if let ToState::Unbound(v) = to_state {
            out.add_var(v);
        }
        let reader = self.graph.reader();
        for row in &input.rows {
            for &n in self.graph.nodes() {
                for (sym, target) in reader.out(n) {
                    let lv = self.label_value(*sym);
                    if l_bound && !lv.coerced_eq(input.get(row, l).expect("bound")) {
                        continue;
                    }
                    match &to_state {
                        ToState::Unbound(_) => {}
                        ToState::BoundVar(v) => {
                            if input.get(row, v).expect("bound") != target {
                                continue;
                            }
                        }
                        ToState::Lit(lit) => {
                            if !lit.coerced_eq(target) {
                                continue;
                            }
                        }
                    }
                    let mut r = row.clone();
                    r.push(Value::Node(n));
                    if !l_bound {
                        r.push(lv);
                    }
                    if matches!(to_state, ToState::Unbound(_)) {
                        r.push(target.clone());
                    }
                    out.rows.push(r);
                }
            }
        }
        Ok(out)
    }

    /// Whether an edge `from --l?--> to` exists (all values known).
    fn edge_exists(
        &self,
        reader: &GraphReader<'_>,
        from: &Value,
        label: Option<&Value>,
        to: &Value,
    ) -> bool {
        let Some(n) = from.as_node() else {
            return false;
        };
        reader.out(n).iter().any(|(sym, target)| {
            if let Some(lv) = label {
                if !self.label_value(*sym).coerced_eq(lv) {
                    return false;
                }
            }
            target == to
        })
    }

    /// `from -> R -> to` with a regular path expression `R`.
    fn apply_rpe_edge(
        &mut self,
        from: &Term,
        rpe: &Rpe,
        to: &Term,
        negated: bool,
        input: Bindings,
        arc_vars: &FxHashSet<String>,
    ) -> Result<Bindings> {
        let interner = self.graph.universe().interner();
        let nfa = Nfa::compile(rpe, interner);

        if negated {
            let mut need: Vec<&str> = Vec::new();
            for t in [from, to] {
                if let Term::Var(v) = t {
                    if !input.is_bound(v) {
                        need.push(v);
                    }
                }
            }
            let b = self.expand_active(input, &need, arc_vars)?;
            let mut memo: FxHashMap<Value, FxHashSet<Value>> = FxHashMap::default();
            let reader = self.graph.reader();
            let mut out = Bindings::with_vars(b.vars().to_vec());
            for row in &b.rows {
                let f = Self::term_value(&b, row, from)?
                    .expect("expanded")
                    .into_owned();
                let t = Self::term_value(&b, row, to)?
                    .expect("expanded")
                    .into_owned();
                let targets = memo
                    .entry(f.clone())
                    .or_insert_with(|| self.rpe_forward(&reader, &nfa, &f).into_iter().collect());
                if !targets.contains(&t) {
                    out.rows.push(row.clone());
                }
            }
            return Ok(out);
        }

        let from_bound = match from {
            Term::Var(v) => input.is_bound(v),
            _ => true,
        };
        let to_bound = match to {
            Term::Var(v) => input.is_bound(v),
            _ => true,
        };

        match (from_bound, to_bound) {
            (true, _) => self.rpe_from_bound(&nfa, from, to, input),
            (false, true) => self.rpe_to_bound(&nfa, from, to, input),
            (false, false) => self.rpe_both_unbound(&nfa, from, to, input),
        }
    }

    fn rpe_from_bound(
        &mut self,
        nfa: &Nfa,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let to_unbound_var = match to {
            Term::Var(v) if !input.is_bound(v) => Some(v.to_string()),
            _ => None,
        };
        let mut out = Bindings::with_vars(input.vars().to_vec());
        if let Some(v) = &to_unbound_var {
            out.add_var(v);
        }
        let reader = self.graph.reader();
        let mut memo: FxHashMap<Value, Vec<Value>> = FxHashMap::default();
        for row in &input.rows {
            let f = Self::term_value(&input, row, from)?
                .expect("bound")
                .into_owned();
            let targets = memo
                .entry(f.clone())
                .or_insert_with(|| self.rpe_forward(&reader, nfa, &f));
            match (&to_unbound_var, to) {
                (Some(_), _) => {
                    for t in targets.iter() {
                        let mut r = row.clone();
                        r.push(t.clone());
                        out.rows.push(r);
                    }
                }
                (None, Term::Var(v)) => {
                    let bound = input.get(row, v).expect("bound");
                    if targets.iter().any(|t| t == bound) {
                        out.rows.push(row.clone());
                    }
                }
                (None, Term::Lit(lit)) => {
                    let lv = lit.to_value();
                    if targets.iter().any(|t| lv.coerced_eq(t)) {
                        out.rows.push(row.clone());
                    }
                }
                (None, Term::Skolem(_) | Term::Agg(..)) => unreachable!("checked by term_value"),
            }
        }
        Ok(out)
    }

    fn rpe_to_bound(
        &mut self,
        nfa: &Nfa,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let from_var = from.as_var().expect("unbound from");
        let rev = nfa.reversed();
        let reverse_adj = self.reverse_adjacency();
        let mut out = Bindings::with_vars(input.vars().to_vec());
        out.add_var(from_var);
        let mut memo: FxHashMap<Value, Vec<Value>> = FxHashMap::default();
        for row in &input.rows {
            let t = Self::term_value(&input, row, to)?
                .expect("bound")
                .into_owned();
            let sources = memo
                .entry(t.clone())
                .or_insert_with(|| self.rpe_backward(&rev, &reverse_adj, &t));
            for s in sources.iter() {
                // Sources are nodes (edges originate at nodes); keep atomics
                // only when the empty path matched (s == t).
                let mut r = row.clone();
                r.push(s.clone());
                out.rows.push(r);
            }
        }
        Ok(out)
    }

    fn rpe_both_unbound(
        &mut self,
        nfa: &Nfa,
        from: &Term,
        to: &Term,
        input: Bindings,
    ) -> Result<Bindings> {
        let from_var = from.as_var().expect("unbound from");
        let to_state = match to {
            Term::Var(v) => ToState::Unbound(v.as_str()),
            Term::Lit(lit) => ToState::Lit(lit.to_value()),
            Term::Skolem(s) => {
                return Err(StruqlError::eval(format!(
                    "Skolem term `{s}` cannot appear in WHERE"
                )))
            }
            Term::Agg(f, v) => {
                return Err(StruqlError::eval(format!(
                    "aggregate `{f}({v})` cannot appear in WHERE"
                )))
            }
        };
        let mut out = Bindings::with_vars(input.vars().to_vec());
        out.add_var(from_var);
        if let ToState::Unbound(v) = to_state {
            out.add_var(v);
        }
        let reader = self.graph.reader();
        // Sources range over the member nodes (the active domain choice).
        let mut pairs: Vec<(Value, Value)> = Vec::new();
        for &n in self.graph.nodes() {
            let f = Value::Node(n);
            for t in self.rpe_forward(&reader, nfa, &f) {
                match &to_state {
                    ToState::Unbound(_) => pairs.push((f.clone(), t)),
                    ToState::Lit(lit) => {
                        if lit.coerced_eq(&t) {
                            pairs.push((f.clone(), t));
                        }
                    }
                    ToState::BoundVar(_) => unreachable!("to is unbound here"),
                }
            }
        }
        for row in &input.rows {
            for (f, t) in &pairs {
                let mut r = row.clone();
                r.push(f.clone());
                if matches!(to_state, ToState::Unbound(_)) {
                    r.push(t.clone());
                }
                out.rows.push(r);
            }
        }
        Ok(out)
    }

    /// Product-automaton BFS, forward. Returns every value reachable from
    /// `start` along a path matching the automaton.
    fn rpe_forward(&self, reader: &GraphReader<'_>, nfa: &Nfa, start: &Value) -> Vec<Value> {
        let interner = self.graph.universe().interner();
        let resolve = |s: Sym| Value::Str(interner.resolve(s));
        let mut results: Vec<Value> = Vec::new();
        let mut result_set: FxHashSet<Value> = FxHashSet::default();
        let mut visited: FxHashSet<(Value, u32)> = FxHashSet::default();
        let mut queue: VecDeque<(Value, u32)> = VecDeque::new();
        for s in nfa.eps_closure_of(nfa.start()) {
            if visited.insert((start.clone(), s)) {
                queue.push_back((start.clone(), s));
            }
        }
        while let Some((v, s)) = queue.pop_front() {
            if nfa.is_accept(s) && result_set.insert(v.clone()) {
                results.push(v.clone());
            }
            let Some(n) = v.as_node() else { continue };
            for (test, t) in nfa.transitions(s) {
                for (sym, target) in reader.out(n) {
                    if test.matches(*sym, &resolve, &self.opts.predicates) {
                        for u in nfa.eps_closure_of(*t) {
                            let key = (target.clone(), u);
                            if visited.insert(key.clone()) {
                                queue.push_back(key);
                            }
                        }
                    }
                }
            }
        }
        results
    }

    /// Product-automaton BFS over reverse edges: every value from which a
    /// matching path reaches `start`.
    fn rpe_backward(&self, rev: &Nfa, adj: &ReverseAdj<'_>, start: &Value) -> Vec<Value> {
        let interner = self.graph.universe().interner();
        let resolve = |s: Sym| Value::Str(interner.resolve(s));
        let mut results: Vec<Value> = Vec::new();
        let mut result_set: FxHashSet<Value> = FxHashSet::default();
        let mut visited: FxHashSet<(Value, u32)> = FxHashSet::default();
        let mut queue: VecDeque<(Value, u32)> = VecDeque::new();
        for s in rev.eps_closure_of(rev.start()) {
            if visited.insert((start.clone(), s)) {
                queue.push_back((start.clone(), s));
            }
        }
        while let Some((v, s)) = queue.pop_front() {
            if rev.is_accept(s) && result_set.insert(v.clone()) {
                results.push(v.clone());
            }
            for (src, sym) in adj.incoming(&v) {
                for (test, t) in rev.transitions(s) {
                    if test.matches(sym, &resolve, &self.opts.predicates) {
                        for u in rev.eps_closure_of(*t) {
                            let key = (Value::Node(src), u);
                            if visited.insert(key.clone()) {
                                queue.push_back(key);
                            }
                        }
                    }
                }
            }
        }
        results
    }

    /// Reverse adjacency: from the index when available, else materialized.
    fn reverse_adjacency(&self) -> ReverseAdj<'g> {
        if let Some(idx) = self.graph.index() {
            ReverseAdj::Indexed(idx)
        } else {
            let mut map: FxHashMap<Value, Vec<(Oid, Sym)>> = FxHashMap::default();
            let reader = self.graph.reader();
            for &n in self.graph.nodes() {
                for (sym, target) in reader.out(n) {
                    map.entry(target.clone()).or_default().push((n, *sym));
                }
            }
            ReverseAdj::Materialized(map)
        }
    }
}

enum ToState<'a> {
    Unbound(&'a str),
    BoundVar(&'a str),
    Lit(Value),
}

enum ReverseAdj<'g> {
    Indexed(&'g strudel_graph::index::GraphIndex),
    Materialized(FxHashMap<Value, Vec<(Oid, Sym)>>),
}

impl ReverseAdj<'_> {
    fn incoming(&self, v: &Value) -> Vec<(Oid, Sym)> {
        match self {
            ReverseAdj::Indexed(idx) => match v {
                Value::Node(n) => idx.edges_to_node(*n).to_vec(),
                atomic => idx.edges_to_value(atomic).to_vec(),
            },
            ReverseAdj::Materialized(map) => map.get(v).cloned().unwrap_or_default(),
        }
    }
}

/// A value that is either borrowed from a row or owned (a literal).
enum ValueOrOwned<'a> {
    Ref(&'a Value),
    Owned(Value),
}

impl ValueOrOwned<'_> {
    fn as_ref(&self) -> &Value {
        match self {
            ValueOrOwned::Ref(v) => v,
            ValueOrOwned::Owned(v) => v,
        }
    }

    fn into_owned(self) -> Value {
        match self {
            ValueOrOwned::Ref(v) => v.clone(),
            ValueOrOwned::Owned(v) => v,
        }
    }
}

fn compare(l: &Value, op: CmpOp, r: &Value) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => l.coerced_eq(r),
        CmpOp::Ne => !l.coerced_eq(r),
        CmpOp::Lt => l.coerced_cmp(r) == Some(Less),
        CmpOp::Le => matches!(l.coerced_cmp(r), Some(Less | Equal)),
        CmpOp::Gt => l.coerced_cmp(r) == Some(Greater),
        CmpOp::Ge => matches!(l.coerced_cmp(r), Some(Greater | Equal)),
    }
}
