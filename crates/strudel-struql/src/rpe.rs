//! Compilation of regular path expressions to ε-NFAs.
//!
//! StruQL's regular path expressions "are more general than regular
//! expressions, because they permit predicates on edges" (§3). We compile
//! them with the Thompson construction into an NFA whose alphabet is *edge
//! tests* ([`EdgeTest`]): a literal label, any label, or a named predicate
//! applied to the label. The evaluator then runs the product of the graph
//! and the NFA — this is how `p -> * -> q` computes reachability (transitive
//! closure) without ever materializing paths.
//!
//! For conditions whose *source* is unbound but whose *target* is bound, the
//! evaluator traverses the [`Nfa::reversed`] automaton over the graph's
//! reverse adjacency index, a plan the cost-based optimizer picks when it is
//! cheaper.

use crate::ast::Rpe;
use crate::pred::PredicateRegistry;
use strudel_graph::{Interner, Sym, Value};

/// A test applied to one edge label.
#[derive(Clone, Debug, PartialEq)]
pub enum EdgeTest {
    /// Any label matches.
    Any,
    /// Exactly this (interned) label.
    Label(Sym),
    /// A registered predicate applied to the label string.
    Pred(String),
}

impl EdgeTest {
    /// Whether an edge labeled `label` passes this test. `preds` resolves
    /// predicate names; an unknown predicate matches nothing.
    #[inline]
    pub fn matches(
        &self,
        label: Sym,
        resolve: &dyn Fn(Sym) -> Value,
        preds: &PredicateRegistry,
    ) -> bool {
        match self {
            EdgeTest::Any => true,
            EdgeTest::Label(l) => *l == label,
            EdgeTest::Pred(p) => {
                let v = resolve(label);
                preds.apply(p, &[&v]).unwrap_or(false)
            }
        }
    }
}

/// A nondeterministic finite automaton over edge tests.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// `eps[s]` = ε-successors of state `s`.
    eps: Vec<Vec<u32>>,
    /// `trans[s]` = labeled transitions out of state `s`.
    trans: Vec<Vec<(EdgeTest, u32)>>,
    start: u32,
    accept: Vec<bool>,
}

impl Nfa {
    /// Compiles an RPE. Literal labels are interned in `interner` so that
    /// matching is a symbol comparison.
    pub fn compile(rpe: &Rpe, interner: &Interner) -> Nfa {
        let mut b = Builder {
            eps: Vec::new(),
            trans: Vec::new(),
        };
        let frag = b.build(rpe, interner);
        let mut accept = vec![false; b.eps.len()];
        for a in frag.accepts {
            accept[a as usize] = true;
        }
        Nfa {
            eps: b.eps,
            trans: b.trans,
            start: frag.start,
            accept,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `s` is accepting.
    #[inline]
    pub fn is_accept(&self, s: u32) -> bool {
        self.accept[s as usize]
    }

    /// Whether the automaton accepts the empty path (the source node itself
    /// is a target, as with `*`).
    pub fn matches_empty(&self) -> bool {
        self.eps_closure_of(self.start)
            .into_iter()
            .any(|s| self.is_accept(s))
    }

    /// ε-closure of one state (including itself), as a sorted list.
    pub fn eps_closure_of(&self, s: u32) -> Vec<u32> {
        let mut seen = vec![false; self.eps.len()];
        let mut stack = vec![s];
        let mut out = Vec::new();
        while let Some(t) = stack.pop() {
            if std::mem::replace(&mut seen[t as usize], true) {
                continue;
            }
            out.push(t);
            stack.extend(self.eps[t as usize].iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// The labeled transitions out of state `s`.
    #[inline]
    pub fn transitions(&self, s: u32) -> &[(EdgeTest, u32)] {
        &self.trans[s as usize]
    }

    /// The automaton recognizing the reverse language, used for backward
    /// traversal: transitions are flipped and start/accept exchanged (a
    /// fresh start state ε-links to every original accept state; the
    /// original start becomes the only accept state).
    pub fn reversed(&self) -> Nfa {
        let n = self.eps.len();
        let mut eps: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        let mut trans: Vec<Vec<(EdgeTest, u32)>> = vec![Vec::new(); n + 1];
        for (s, succs) in self.eps.iter().enumerate() {
            for &t in succs {
                eps[t as usize].push(s as u32);
            }
        }
        for (s, succs) in self.trans.iter().enumerate() {
            for (test, t) in succs {
                trans[*t as usize].push((test.clone(), s as u32));
            }
        }
        let new_start = n as u32;
        for (s, acc) in self.accept.iter().enumerate() {
            if *acc {
                eps[new_start as usize].push(s as u32);
            }
        }
        let mut accept = vec![false; n + 1];
        accept[self.start as usize] = true;
        Nfa {
            eps,
            trans,
            start: new_start,
            accept,
        }
    }
}

struct Frag {
    start: u32,
    accepts: Vec<u32>,
}

struct Builder {
    eps: Vec<Vec<u32>>,
    trans: Vec<Vec<(EdgeTest, u32)>>,
}

impl Builder {
    fn new_state(&mut self) -> u32 {
        let s = self.eps.len() as u32;
        self.eps.push(Vec::new());
        self.trans.push(Vec::new());
        s
    }

    fn build(&mut self, rpe: &Rpe, interner: &Interner) -> Frag {
        match rpe {
            Rpe::Label(l) => self.leaf(EdgeTest::Label(interner.intern(l))),
            Rpe::AnyLabel => self.leaf(EdgeTest::Any),
            Rpe::Pred(p) => self.leaf(EdgeTest::Pred(p.clone())),
            Rpe::Seq(a, b) => {
                let fa = self.build(a, interner);
                let fb = self.build(b, interner);
                for s in fa.accepts {
                    self.eps[s as usize].push(fb.start);
                }
                Frag {
                    start: fa.start,
                    accepts: fb.accepts,
                }
            }
            Rpe::Alt(a, b) => {
                let fa = self.build(a, interner);
                let fb = self.build(b, interner);
                let start = self.new_state();
                self.eps[start as usize].push(fa.start);
                self.eps[start as usize].push(fb.start);
                let mut accepts = fa.accepts;
                accepts.extend(fb.accepts);
                Frag { start, accepts }
            }
            Rpe::Star(r) => {
                let fr = self.build(r, interner);
                let hub = self.new_state();
                self.eps[hub as usize].push(fr.start);
                for s in fr.accepts {
                    self.eps[s as usize].push(hub);
                }
                Frag {
                    start: hub,
                    accepts: vec![hub],
                }
            }
            Rpe::Plus(r) => {
                let fr = self.build(r, interner);
                for &s in &fr.accepts {
                    self.eps[s as usize].push(fr.start);
                }
                fr
            }
            Rpe::Opt(r) => {
                let fr = self.build(r, interner);
                let start = self.new_state();
                self.eps[start as usize].push(fr.start);
                let mut accepts = fr.accepts;
                accepts.push(start);
                Frag { start, accepts }
            }
        }
    }

    fn leaf(&mut self, test: EdgeTest) -> Frag {
        let a = self.new_state();
        let b = self.new_state();
        self.trans[a as usize].push((test, b));
        Frag {
            start: a,
            accepts: vec![b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::fxhash::FxHashSet;

    /// Simulates the NFA over an explicit word of labels.
    fn accepts(nfa: &Nfa, interner: &Interner, preds: &PredicateRegistry, word: &[&str]) -> bool {
        let resolve = |s: Sym| Value::Str(interner.resolve(s));
        let mut states: FxHashSet<u32> = nfa.eps_closure_of(nfa.start()).into_iter().collect();
        for label in word {
            let sym = interner.intern(label);
            let mut next = FxHashSet::default();
            for &s in &states {
                for (test, t) in nfa.transitions(s) {
                    if test.matches(sym, &resolve, preds) {
                        next.extend(nfa.eps_closure_of(*t));
                    }
                }
            }
            states = next;
            if states.is_empty() {
                return false;
            }
        }
        states.iter().any(|&s| nfa.is_accept(s))
    }

    fn check(rpe: &Rpe, yes: &[&[&str]], no: &[&[&str]]) {
        let interner = Interner::new();
        let preds = PredicateRegistry::with_builtins();
        let nfa = Nfa::compile(rpe, &interner);
        for w in yes {
            assert!(
                accepts(&nfa, &interner, &preds, w),
                "{rpe} should accept {w:?}"
            );
        }
        for w in no {
            assert!(
                !accepts(&nfa, &interner, &preds, w),
                "{rpe} should reject {w:?}"
            );
        }
    }

    fn label(s: &str) -> Rpe {
        Rpe::Label(s.into())
    }

    #[test]
    fn single_label() {
        check(&label("a"), &[&["a"]], &[&[], &["b"], &["a", "a"]]);
    }

    #[test]
    fn any_label() {
        check(&Rpe::AnyLabel, &[&["a"], &["zzz"]], &[&[], &["a", "b"]]);
    }

    #[test]
    fn any_path_matches_empty() {
        let star = Rpe::any_path();
        check(&star, &[&[], &["a"], &["a", "b", "c"]], &[]);
        let interner = Interner::new();
        assert!(Nfa::compile(&star, &interner).matches_empty());
        assert!(!Nfa::compile(&label("a"), &interner).matches_empty());
    }

    #[test]
    fn seq_alt_star() {
        // ("a" . "b")* | "c"
        let rpe = Rpe::Alt(
            Box::new(Rpe::Star(Box::new(Rpe::Seq(
                Box::new(label("a")),
                Box::new(label("b")),
            )))),
            Box::new(label("c")),
        );
        check(
            &rpe,
            &[&[], &["c"], &["a", "b"], &["a", "b", "a", "b"]],
            &[&["a"], &["b", "a"], &["c", "c"], &["a", "b", "a"]],
        );
    }

    #[test]
    fn plus_requires_one() {
        let rpe = Rpe::Plus(Box::new(label("a")));
        check(&rpe, &[&["a"], &["a", "a", "a"]], &[&[], &["b"]]);
    }

    #[test]
    fn opt_zero_or_one() {
        let rpe = Rpe::Opt(Box::new(label("a")));
        check(&rpe, &[&[], &["a"]], &[&["a", "a"], &["b"]]);
    }

    #[test]
    fn predicate_edges() {
        // startsWith is binary; use a custom unary predicate for labels.
        let mut preds = PredicateRegistry::new();
        preds.register("isName", 1, |args| {
            args[0].text().is_some_and(|t| t.starts_with("name"))
        });
        let interner = Interner::new();
        let nfa = Nfa::compile(&Rpe::Star(Box::new(Rpe::Pred("isName".into()))), &interner);
        assert!(accepts(&nfa, &interner, &preds, &["name1", "name2"]));
        assert!(!accepts(&nfa, &interner, &preds, &["name1", "other"]));
        assert!(accepts(&nfa, &interner, &preds, &[]));
    }

    #[test]
    fn unknown_predicate_matches_nothing() {
        let interner = Interner::new();
        let preds = PredicateRegistry::new();
        let nfa = Nfa::compile(&Rpe::Pred("mystery".into()), &interner);
        assert!(!accepts(&nfa, &interner, &preds, &["anything"]));
    }

    #[test]
    fn reversed_recognizes_reverse_language() {
        // "a" . "b"* reversed is "b"* . "a"
        let rpe = Rpe::Seq(
            Box::new(label("a")),
            Box::new(Rpe::Star(Box::new(label("b")))),
        );
        let interner = Interner::new();
        let preds = PredicateRegistry::with_builtins();
        let nfa = Nfa::compile(&rpe, &interner);
        let rev = nfa.reversed();
        assert!(accepts(&nfa, &interner, &preds, &["a", "b", "b"]));
        assert!(accepts(&rev, &interner, &preds, &["b", "b", "a"]));
        assert!(!accepts(&rev, &interner, &preds, &["a", "b"]));
    }

    #[test]
    fn reversed_preserves_empty_match() {
        let interner = Interner::new();
        assert!(Nfa::compile(&Rpe::any_path(), &interner)
            .reversed()
            .matches_empty());
        assert!(!Nfa::compile(&label("x"), &interner)
            .reversed()
            .matches_empty());
    }
}
