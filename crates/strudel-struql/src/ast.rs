//! The StruQL abstract syntax tree.
//!
//! The AST mirrors the paper's grammar (§3):
//!
//! ```text
//! Query ::= [input ident] Block [output ident]
//! Block ::= (where C1,…,Ck)? (create N1,…,Nn)? (link L1,…,Lp)?
//!           (collect G1,…,Gq)? ({Block} … {Block})?
//! ```
//!
//! A nested block's `where` clause is *conjoined* with those of all its
//! ancestors; its construction clauses run once per binding of the conjoined
//! clause. Every block carries a [`BlockId`] (`Q1`, `Q2`, … in document
//! order) which site schemas use to label edges with the conjunction of
//! governing queries (e.g. `Q1 ∧ Q2`, Fig. 5 of the paper).

use std::fmt;

/// Identifies a block within a query, in document order. The root block is
/// `BlockId(0)`; pretty-printed as `Q1`, `Q2`, ….
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0 + 1)
    }
}

/// A literal constant.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// String constant.
    Str(String),
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
}

impl Literal {
    /// Converts to a graph value.
    pub fn to_value(&self) -> strudel_graph::Value {
        use strudel_graph::Value;
        match self {
            Literal::Str(s) => Value::str(s),
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Bool(b) => Value::Bool(*b),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Aggregate functions — the grouping/aggregation extension the paper
/// anticipates in §5.2 ("the query stage is independently extensible; for
/// example, we could extend it to include grouping and aggregation").
///
/// An aggregate term may appear as a `LINK` target or `COLLECT` argument:
/// `LINK YearPage(v) -> "papers" -> COUNT(x)` emits, per `YearPage(v)`
/// group, one edge whose value aggregates the *distinct* bindings of `x`
/// within the group (grouping is by the link's source Skolem term and
/// label). The names `COUNT`, `SUM`, `MIN`, `MAX`, `AVG` are reserved
/// (case-insensitive) in construction clauses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    /// Number of distinct values.
    Count,
    /// Numeric sum (non-numeric values are ignored).
    Sum,
    /// Minimum under dynamic-coercion ordering.
    Min,
    /// Maximum under dynamic-coercion ordering.
    Max,
    /// Numeric average.
    Avg,
}

impl AggFunc {
    /// Parses a reserved aggregate name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// The canonical (upper-case) name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A term in a condition or construction clause.
#[derive(Clone, PartialEq, Debug)]
pub enum Term {
    /// A variable (node variable or arc variable, resolved by analysis).
    Var(String),
    /// A constant.
    Lit(Literal),
    /// A Skolem-function application — construction clauses only.
    Skolem(SkolemTerm),
    /// An aggregate over a bound variable — `LINK` targets and `COLLECT`
    /// arguments only.
    Agg(AggFunc, String),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Convenience constructor for a string-literal term.
    pub fn str(s: impl Into<String>) -> Term {
        Term::Lit(Literal::Str(s.into()))
    }

    /// Convenience constructor for an integer-literal term.
    pub fn int(i: i64) -> Term {
        Term::Lit(Literal::Int(i))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Lit(l) => write!(f, "{l}"),
            Term::Skolem(s) => write!(f, "{s}"),
            Term::Agg(func, v) => write!(f, "{func}({v})"),
        }
    }
}

/// A Skolem-function application `F(x, y, …)`. By definition a Skolem
/// function applied to the same inputs produces the same node oid.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SkolemTerm {
    /// Function name, e.g. `YearPage`.
    pub name: String,
    /// Argument variables (the paper restricts Skolem arguments to node oids
    /// and label values, i.e. variables bound in the where clause).
    pub args: Vec<String>,
}

impl SkolemTerm {
    /// Builds a Skolem term.
    pub fn new(name: impl Into<String>, args: impl IntoIterator<Item = impl Into<String>>) -> Self {
        SkolemTerm {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for SkolemTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.args.join(", "))
    }
}

/// A regular path expression over edge labels (§3):
/// `R ::= Pred | (R.R) | (R|R) | R*`.
///
/// Regular path expressions are more general than regular expressions
/// because they permit *predicates* on edges; `true` (written `_`) denotes
/// any edge label and `_*` (written `*`) any path, including the empty path.
#[derive(Clone, PartialEq, Debug)]
pub enum Rpe {
    /// A literal label test, e.g. `"Paper"`.
    Label(String),
    /// Any single edge (`_`, the paper's `true`).
    AnyLabel,
    /// A predicate applied to the edge label, e.g. `isName`.
    Pred(String),
    /// Concatenation `R1 . R2`.
    Seq(Box<Rpe>, Box<Rpe>),
    /// Alternation `R1 | R2`.
    Alt(Box<Rpe>, Box<Rpe>),
    /// Kleene star `R*` (zero or more, so the empty path matches).
    Star(Box<Rpe>),
    /// One or more, `R+` (sugar for `R . R*`).
    Plus(Box<Rpe>),
    /// Zero or one, `R?` (sugar for `R | ε`).
    Opt(Box<Rpe>),
}

impl Rpe {
    /// `*`: any path of any length, including the empty path.
    pub fn any_path() -> Rpe {
        Rpe::Star(Box::new(Rpe::AnyLabel))
    }

    /// Whether this expression can match the empty path (so a source node
    /// itself is among the targets).
    pub fn nullable(&self) -> bool {
        match self {
            Rpe::Label(_) | Rpe::AnyLabel | Rpe::Pred(_) => false,
            Rpe::Seq(a, b) => a.nullable() && b.nullable(),
            Rpe::Alt(a, b) => a.nullable() || b.nullable(),
            Rpe::Star(_) | Rpe::Opt(_) => true,
            Rpe::Plus(r) => r.nullable(),
        }
    }
}

impl fmt::Display for Rpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rpe::Label(l) => write!(f, "{l:?}"),
            Rpe::AnyLabel => write!(f, "_"),
            Rpe::Pred(p) => write!(f, "{p}"),
            Rpe::Seq(a, b) => write!(f, "({a} . {b})"),
            Rpe::Alt(a, b) => write!(f, "({a} | {b})"),
            Rpe::Star(r) => {
                if matches!(**r, Rpe::AnyLabel) {
                    write!(f, "*")
                } else {
                    write!(f, "{r}*")
                }
            }
            Rpe::Plus(r) => write!(f, "{r}+"),
            Rpe::Opt(r) => write!(f, "{r}?"),
        }
    }
}

/// The middle element of an edge condition `x -> … -> y`.
#[derive(Clone, PartialEq, Debug)]
pub enum PathStep {
    /// A regular path expression (possibly spanning many edges).
    Rpe(Rpe),
    /// A bare identifier: an arc variable *or* an edge predicate, resolved
    /// semantically by [`crate::analyze`] against the predicate registry
    /// (the paper: "the distinction … is done at a semantic, not syntactic,
    /// level").
    Bare(String),
    /// An arc variable, binding the label of a single edge (post-analysis).
    ArcVar(String),
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Rpe(r) => write!(f, "{r}"),
            PathStep::Bare(s) | PathStep::ArcVar(s) => write!(f, "{s}"),
        }
    }
}

/// Comparison operators for `Compare` conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The negated operator.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A single condition of a `WHERE` clause.
#[derive(Clone, PartialEq, Debug)]
pub enum Condition {
    /// Collection-membership test, e.g. `Publications(x)`.
    Collection {
        /// Collection name.
        name: String,
        /// The tested object.
        arg: Term,
        /// Negated form `not(Coll(x))`, with active-domain semantics for an
        /// unbound argument.
        negated: bool,
    },
    /// An edge / path condition `from -> step -> to`.
    Edge {
        /// Source term.
        from: Term,
        /// Path or arc variable.
        step: PathStep,
        /// Target term.
        to: Term,
        /// Negated form `not(from -> step -> to)` (single-edge or RPE),
        /// with active-domain semantics for unbound variables.
        negated: bool,
    },
    /// A built-in or external predicate, e.g. `isPostScript(q)`.
    Predicate {
        /// Predicate name.
        name: String,
        /// Arguments.
        args: Vec<Term>,
        /// Negated form `not(P(args))`.
        negated: bool,
    },
    /// A comparison, e.g. `l = "year"` (uses dynamic value coercion).
    Compare {
        /// Left operand.
        lhs: Term,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: Term,
    },
    /// Label-set membership of an arc variable:
    /// `l in {"Paper", "TechReport"}`.
    In {
        /// The arc variable.
        var: String,
        /// The candidate labels.
        set: Vec<Literal>,
        /// Negated form `not(l in {...})`.
        negated: bool,
    },
}

impl Condition {
    /// Builds the simple edge condition `from -> "label" -> to`.
    pub fn edge(from: Term, label: &str, to: Term) -> Condition {
        Condition::Edge {
            from,
            step: PathStep::Rpe(Rpe::Label(label.to_string())),
            to,
            negated: false,
        }
    }

    /// Builds the arc-variable edge condition `from -> var -> to`.
    pub fn arc(from: Term, var: &str, to: Term) -> Condition {
        Condition::Edge {
            from,
            step: PathStep::ArcVar(var.to_string()),
            to,
            negated: false,
        }
    }

    /// Builds the membership condition `name(var)`.
    pub fn coll(name: &str, var: &str) -> Condition {
        Condition::Collection {
            name: name.to_string(),
            arg: Term::var(var),
            negated: false,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Collection { name, arg, negated } => {
                if *negated {
                    write!(f, "not({name}({arg}))")
                } else {
                    write!(f, "{name}({arg})")
                }
            }
            Condition::Edge {
                from,
                step,
                to,
                negated,
            } => {
                if *negated {
                    write!(f, "not({from} -> {step} -> {to})")
                } else {
                    write!(f, "{from} -> {step} -> {to}")
                }
            }
            Condition::Predicate {
                name,
                args,
                negated,
            } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                if *negated {
                    write!(f, "not({name}({}))", args.join(", "))
                } else {
                    write!(f, "{name}({})", args.join(", "))
                }
            }
            Condition::Compare { lhs, op, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            Condition::In { var, set, negated } => {
                let items: Vec<String> = set.iter().map(|l| l.to_string()).collect();
                if *negated {
                    write!(f, "not({var} in {{{}}})", items.join(", "))
                } else {
                    write!(f, "{var} in {{{}}}", items.join(", "))
                }
            }
        }
    }
}

/// The label position of a `LINK` clause: a literal label or a bound arc
/// variable (`Page(y) -> l -> Page(z)` carries data irregularity into the
/// site graph).
#[derive(Clone, PartialEq, Debug)]
pub enum LabelTerm {
    /// A literal label, e.g. `"Abstract"`.
    Lit(String),
    /// An arc variable bound in the where clause.
    Var(String),
}

impl fmt::Display for LabelTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelTerm::Lit(s) => write!(f, "{s:?}"),
            LabelTerm::Var(v) => write!(f, "{v}"),
        }
    }
}

/// A `LINK` clause item: `from -> label -> to`.
///
/// Semantic restriction (§3): edges can only be added *from new nodes* —
/// `from` must be a Skolem term; existing nodes are immutable.
#[derive(Clone, PartialEq, Debug)]
pub struct LinkClause {
    /// The (new) source node.
    pub from: SkolemTerm,
    /// The edge label.
    pub label: LabelTerm,
    /// The target: a Skolem term, a bound variable, or a literal.
    pub to: Term,
}

impl fmt::Display for LinkClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} -> {}", self.from, self.label, self.to)
    }
}

/// A `COLLECT` clause item: `Name(term)`.
#[derive(Clone, PartialEq, Debug)]
pub struct CollectClause {
    /// Output collection name.
    pub name: String,
    /// The collected object.
    pub arg: Term,
}

impl fmt::Display for CollectClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.arg)
    }
}

/// One block of a query: a `WHERE` clause, construction clauses, and nested
/// blocks.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    /// Block identity in document order (assigned by the parser/builder).
    pub id: BlockId,
    /// The conjunctive conditions of this block (its own only; ancestors'
    /// conditions are conjoined during evaluation).
    pub where_: Vec<Condition>,
    /// `CREATE` clause: Skolem terms to instantiate per binding.
    pub creates: Vec<SkolemTerm>,
    /// `LINK` clause: edges to add per binding.
    pub links: Vec<LinkClause>,
    /// `COLLECT` clause: output collections to populate per binding.
    pub collects: Vec<CollectClause>,
    /// Nested blocks.
    pub children: Vec<Block>,
}

impl Block {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        if !self.where_.is_empty() {
            let items: Vec<String> = self.where_.iter().map(|c| c.to_string()).collect();
            writeln!(f, "{pad}WHERE {}", items.join(", "))?;
        }
        if !self.creates.is_empty() {
            let items: Vec<String> = self.creates.iter().map(|c| c.to_string()).collect();
            writeln!(f, "{pad}CREATE {}", items.join(", "))?;
        }
        if !self.links.is_empty() {
            let items: Vec<String> = self.links.iter().map(|c| c.to_string()).collect();
            let sep = format!(",\n{pad}     ");
            writeln!(f, "{pad}LINK {}", items.join(&sep))?;
        }
        if !self.collects.is_empty() {
            let items: Vec<String> = self.collects.iter().map(|c| c.to_string()).collect();
            writeln!(f, "{pad}COLLECT {}", items.join(", "))?;
        }
        for child in &self.children {
            writeln!(f, "{pad}{{")?;
            child.fmt_indented(f, depth + 1)?;
            writeln!(f, "{pad}}}")?;
        }
        Ok(())
    }

    /// Iterates this block and all descendants, depth-first, in document
    /// order.
    pub fn iter_blocks(&self) -> Vec<&Block> {
        let mut out = vec![self];
        let mut i = 0;
        while i < out.len() {
            // Manual worklist to avoid recursion; children are appended in
            // order, giving document order because ids were assigned that way.
            let children: Vec<&Block> = out[i].children.iter().collect();
            out.extend(children);
            i += 1;
        }
        out.sort_by_key(|b| b.id);
        out
    }
}

/// A complete StruQL query.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Query {
    /// Name of the input graph (`INPUT BIBTEX`), if any.
    pub input: Option<String>,
    /// Name of the output graph (`OUTPUT HomePage`), if any.
    pub output: Option<String>,
    /// The root block.
    pub root: Block,
}

impl Query {
    /// Merges several queries into one: each query's root becomes a child
    /// block of a fresh empty root, with block ids renumbered in document
    /// order. STRUDEL lets a site be "constructed in several successive
    /// steps by multiple, composed StruQL queries" (§5.1) and generates "a
    /// site schema from the site's StruQL queries" (plural) — this is the
    /// composition the schema generator consumes.
    pub fn merge<'a>(queries: impl IntoIterator<Item = &'a Query>) -> Query {
        fn renumber(b: &mut Block, next: &mut u32) {
            b.id = BlockId(*next);
            *next += 1;
            for c in &mut b.children {
                renumber(c, next);
            }
        }
        let mut root = Block::default();
        let mut next = 1u32;
        for q in queries {
            let mut child = q.root.clone();
            renumber(&mut child, &mut next);
            root.children.push(child);
        }
        Query {
            input: None,
            output: None,
            root,
        }
    }

    /// All blocks in document order (root first).
    pub fn blocks(&self) -> Vec<&Block> {
        self.root.iter_blocks()
    }

    /// Finds a block by id.
    pub fn block(&self, id: BlockId) -> Option<&Block> {
        self.blocks().into_iter().find(|b| b.id == id)
    }

    /// The conjunction of where-conditions governing `id`: the block's own
    /// conditions preceded by all its ancestors'. Returns `None` for an
    /// unknown id.
    pub fn governing_conditions(&self, id: BlockId) -> Option<Vec<&Condition>> {
        fn walk<'a>(block: &'a Block, id: BlockId, acc: &mut Vec<&'a Condition>) -> bool {
            acc.extend(block.where_.iter());
            if block.id == id {
                return true;
            }
            for child in &block.children {
                if walk(child, id, acc) {
                    return true;
                }
            }
            acc.truncate(acc.len() - block.where_.len());
            false
        }
        let mut acc = Vec::new();
        // The root's own conditions are pushed by walk.
        let mut acc2 = Vec::new();
        if walk(&self.root, id, &mut acc2) {
            acc.extend(acc2);
            Some(acc)
        } else {
            None
        }
    }

    /// The list of block ids on the path from the root to `id`, inclusive —
    /// the "Q1 ∧ Q2" labels of site schemas.
    pub fn governing_blocks(&self, id: BlockId) -> Option<Vec<BlockId>> {
        fn walk(block: &Block, id: BlockId, path: &mut Vec<BlockId>) -> bool {
            path.push(block.id);
            if block.id == id {
                return true;
            }
            for child in &block.children {
                if walk(child, id, path) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let mut path = Vec::new();
        walk(&self.root, id, &mut path).then_some(path)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(input) = &self.input {
            writeln!(f, "INPUT {input}")?;
        }
        self.root.fmt_indented(f, 0)?;
        if let Some(output) = &self.output {
            writeln!(f, "OUTPUT {output}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        // WHERE Publications(x), x -> l -> v
        // CREATE Page(x)
        // LINK Page(x) -> l -> v
        // { WHERE l = "year" CREATE YearPage(v) LINK YearPage(v) -> "Paper" -> Page(x) }
        let inner = Block {
            id: BlockId(1),
            where_: vec![Condition::Compare {
                lhs: Term::var("l"),
                op: CmpOp::Eq,
                rhs: Term::str("year"),
            }],
            creates: vec![SkolemTerm::new("YearPage", ["v"])],
            links: vec![LinkClause {
                from: SkolemTerm::new("YearPage", ["v"]),
                label: LabelTerm::Lit("Paper".into()),
                to: Term::Skolem(SkolemTerm::new("Page", ["x"])),
            }],
            collects: vec![],
            children: vec![],
        };
        Query {
            input: Some("BIBTEX".into()),
            output: Some("HomePage".into()),
            root: Block {
                id: BlockId(0),
                where_: vec![
                    Condition::coll("Publications", "x"),
                    Condition::arc(Term::var("x"), "l", Term::var("v")),
                ],
                creates: vec![SkolemTerm::new("Page", ["x"])],
                links: vec![LinkClause {
                    from: SkolemTerm::new("Page", ["x"]),
                    label: LabelTerm::Var("l".into()),
                    to: Term::var("v"),
                }],
                collects: vec![CollectClause {
                    name: "Pages".into(),
                    arg: Term::Skolem(SkolemTerm::new("Page", ["x"])),
                }],
                children: vec![inner],
            },
        }
    }

    #[test]
    fn blocks_in_document_order() {
        let q = sample();
        let ids: Vec<_> = q.blocks().iter().map(|b| b.id).collect();
        assert_eq!(ids, vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn governing_conditions_conjoin_ancestors() {
        let q = sample();
        let conds = q.governing_conditions(BlockId(1)).unwrap();
        assert_eq!(conds.len(), 3); // 2 from root + 1 own
        assert!(q.governing_conditions(BlockId(9)).is_none());
    }

    #[test]
    fn governing_blocks_is_root_path() {
        let q = sample();
        assert_eq!(
            q.governing_blocks(BlockId(1)).unwrap(),
            vec![BlockId(0), BlockId(1)]
        );
        assert_eq!(q.governing_blocks(BlockId(0)).unwrap(), vec![BlockId(0)]);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        // Checked properly in parse.rs tests; here just ensure it renders.
        let text = sample().to_string();
        assert!(text.contains("INPUT BIBTEX"));
        assert!(text.contains("WHERE Publications(x), x -> l -> v"));
        assert!(text.contains("OUTPUT HomePage"));
    }

    #[test]
    fn rpe_nullability() {
        assert!(Rpe::any_path().nullable());
        assert!(!Rpe::Label("a".into()).nullable());
        assert!(Rpe::Opt(Box::new(Rpe::AnyLabel)).nullable());
        assert!(!Rpe::Plus(Box::new(Rpe::AnyLabel)).nullable());
        assert!(Rpe::Seq(Box::new(Rpe::any_path()), Box::new(Rpe::any_path())).nullable());
        assert!(!Rpe::Seq(Box::new(Rpe::any_path()), Box::new(Rpe::AnyLabel)).nullable());
        assert!(Rpe::Alt(Box::new(Rpe::AnyLabel), Box::new(Rpe::any_path())).nullable());
    }

    #[test]
    fn cmp_op_negation_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn block_id_displays_one_based() {
        assert_eq!(BlockId(0).to_string(), "Q1");
        assert_eq!(BlockId(2).to_string(), "Q3");
    }
}
