//! The bindings relation produced by the query stage.
//!
//! "The meaning of the where-clause is the set of assignments … that satisfy
//! all conditions in the where clause"; its result is "a relation with one
//! attribute for each variable" (§3). Arc variables bind to labels,
//! represented as [`Value::Str`] so that comparisons like `l = "year"` are
//! ordinary value comparisons.
//!
//! Storage is a single contiguous slab of values with a fixed stride (the
//! schema width): row *i* is `data[i*width .. (i+1)*width]`. The evaluator's
//! physical operators append directly into the slab instead of allocating a
//! `Vec` per emitted row, and deduplication hashes row *slices* against a
//! hash → row-index table rather than cloning candidate rows into a seen-set.

use std::hash::{Hash, Hasher};
use strudel_graph::fxhash::{FxHashMap, FxHasher};
use strudel_graph::Value;

/// A relation: a variable schema plus rows of values, stored in one slab.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    vars: Vec<String>,
    index: FxHashMap<String, usize>,
    /// Row count. Tracked explicitly because the zero-width relation (the
    /// `unit` of condition evaluation) has rows but no values.
    len: usize,
    /// The value slab: `len * vars.len()` values, row-major.
    data: Vec<Value>,
}

impl Bindings {
    /// An empty relation with no variables and no rows.
    pub fn empty() -> Bindings {
        Bindings::default()
    }

    /// The relation with no variables and exactly one (empty) row — the
    /// identity for condition evaluation. A block with an empty `WHERE`
    /// clause binds this once, which is why `CREATE RootPage()` with no
    /// conditions creates exactly one node.
    pub fn unit() -> Bindings {
        Bindings {
            len: 1,
            ..Bindings::default()
        }
    }

    /// Creates a relation with the given schema and no rows.
    pub fn with_vars(vars: Vec<String>) -> Bindings {
        let index = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect();
        Bindings {
            vars,
            index,
            len: 0,
            data: Vec::new(),
        }
    }

    /// The schema.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The schema width (values per row).
    #[inline]
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Column index of `var`, if bound.
    pub fn col(&self, var: &str) -> Option<usize> {
        self.index.get(var).copied()
    }

    /// Whether `var` is in the schema.
    pub fn is_bound(&self, var: &str) -> bool {
        self.index.contains_key(var)
    }

    /// Appends a new variable column, returning its index. Only valid while
    /// the relation has no rows (operators build fresh output relations);
    /// use [`Bindings::add_var_with`] to extend existing rows.
    pub fn add_var(&mut self, var: &str) -> usize {
        debug_assert!(
            !self.index.contains_key(var),
            "variable {var} already bound"
        );
        debug_assert!(
            self.len == 0,
            "add_var on a non-empty relation (use add_var_with)"
        );
        let i = self.vars.len();
        self.vars.push(var.to_string());
        self.index.insert(var.to_string(), i);
        i
    }

    /// Appends a new variable column bound to `value` in every existing row.
    pub fn add_var_with(&mut self, var: &str, value: Value) -> usize {
        debug_assert!(
            !self.index.contains_key(var),
            "variable {var} already bound"
        );
        let old_width = self.vars.len();
        let i = old_width;
        self.vars.push(var.to_string());
        self.index.insert(var.to_string(), i);
        if self.len > 0 {
            let mut data = Vec::with_capacity(self.len * (old_width + 1));
            for row in self.data.chunks(old_width.max(1)) {
                if old_width > 0 {
                    data.extend(row.iter().cloned());
                }
                data.push(value.clone());
            }
            if old_width == 0 {
                // chunks() above yielded nothing for an empty slab.
                data.clear();
                for _ in 0..self.len {
                    data.push(value.clone());
                }
            }
            self.data = data;
        }
        i
    }

    /// The value of `var` in `row`.
    pub fn get<'a>(&self, row: &'a [Value], var: &str) -> Option<&'a Value> {
        self.col(var).and_then(|i| row.get(i))
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i` as a slice of the slab.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        debug_assert!(i < self.len);
        let w = self.vars.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// Iterates the rows as slab slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Value]> + '_ {
        let w = self.vars.len();
        (0..self.len).map(move |i| &self.data[i * w..(i + 1) * w])
    }

    /// Reserves slab capacity for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data
            .reserve(additional.saturating_mul(self.vars.len()));
    }

    /// Appends a row, cloning from a slice.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.vars.len());
        self.data.extend(row.iter().cloned());
        self.len += 1;
    }

    /// Appends a row made of `base` (cloned) followed by owned `extra`
    /// values — the widening-operator fast path: no intermediate `Vec`.
    #[inline]
    pub fn push_row_extend(&mut self, base: &[Value], extra: impl IntoIterator<Item = Value>) {
        self.data.extend(base.iter().cloned());
        self.data.extend(extra);
        debug_assert_eq!(self.data.len() % self.vars.len().max(1), 0);
        self.len += 1;
    }

    /// Appends a row of owned values.
    #[inline]
    pub fn push_row_values(&mut self, row: impl IntoIterator<Item = Value>) {
        let before = self.data.len();
        self.data.extend(row);
        debug_assert_eq!(self.data.len() - before, self.vars.len());
        self.len += 1;
    }

    /// Keeps only the rows for which `keep` returns true, compacting the
    /// slab in place (no per-row allocation).
    pub fn retain_rows(&mut self, mut keep: impl FnMut(&[Value]) -> bool) {
        let w = self.vars.len();
        if w == 0 {
            // Zero-width relation: rows are indistinguishable; `keep` sees
            // the empty slice once per row.
            let mut kept = 0;
            for _ in 0..self.len {
                if keep(&[]) {
                    kept += 1;
                }
            }
            self.len = kept;
            return;
        }
        let mut write = 0usize;
        for read in 0..self.len {
            let keep_it = keep(&self.data[read * w..(read + 1) * w]);
            if keep_it {
                if write != read {
                    for k in 0..w {
                        self.data.swap(write * w + k, read * w + k);
                    }
                }
                write += 1;
            }
        }
        self.data.truncate(write * w);
        self.len = write;
    }

    /// Drops all rows, keeping the schema and the slab's capacity.
    pub fn clear_rows(&mut self) {
        self.data.clear();
        self.len = 0;
    }

    /// Moves every row of `other` (which must have the same schema) to the
    /// end of this relation. This is the ordered-merge step of parallel
    /// evaluation: per-chunk output relations concatenated in chunk order
    /// reproduce the sequential row order exactly.
    pub fn append(&mut self, other: Bindings) {
        debug_assert_eq!(self.vars, other.vars, "append of mismatched schemas");
        self.data.extend(other.data);
        self.len += other.len;
    }

    /// Sorts the rows into the canonical relation order: columns compared
    /// in variable-name order (so the order is a property of the *schema*,
    /// not of the column positions a particular plan happened to produce),
    /// rows by [`Value::canonical_cmp`]. Any two plans for the same
    /// conjunction produce the same row *set*; after this sort they produce
    /// the same row *sequence* — which is what makes constructed output
    /// (node creation order, page bytes) independent of the physical plan.
    pub fn canonical_sort(&mut self) {
        let w = self.vars.len();
        let n = self.len;
        if n <= 1 || w == 0 {
            return;
        }
        let mut cols: Vec<usize> = (0..w).collect();
        cols.sort_by(|&a, &b| self.vars[a].cmp(&self.vars[b]));
        // Caching an order-preserving digest of each row's primary column
        // keeps almost every comparison inside this contiguous array of
        // `(u64, u32)` pairs; only digest ties pay a full row comparison.
        let primary = cols[0];
        let mut order: Vec<(u64, u32)> = (0..n)
            .map(|r| (sort_digest(&self.data[r * w + primary]), r as u32))
            .collect();
        let data = &self.data;
        // Unstable is fine: `canonical_cmp` returns `Equal` only for
        // identical values, so ties are entirely identical rows.
        order.sort_unstable_by(|&(ka, ra), &(kb, rb)| {
            ka.cmp(&kb).then_with(|| {
                let (ra, rb) = (ra as usize, rb as usize);
                for &c in &cols {
                    match data[ra * w + c].canonical_cmp(&data[rb * w + c]) {
                        std::cmp::Ordering::Equal => {}
                        o => return o,
                    }
                }
                std::cmp::Ordering::Equal
            })
        });
        if order.iter().enumerate().all(|(i, &(_, r))| i == r as usize) {
            return;
        }
        // Apply the permutation with in-place row swaps: no value clones, so
        // no refcount traffic on the `Arc`-backed strings. `inv[src] = dest`;
        // the swap loop applies the inverse of `inv`, i.e. `order` itself.
        let mut inv = vec![0u32; n];
        for (dest, &(_, src)) in order.iter().enumerate() {
            inv[src as usize] = dest as u32;
        }
        for i in 0..n {
            while inv[i] as usize != i {
                let j = inv[i] as usize;
                for k in 0..w {
                    self.data.swap(i * w + k, j * w + k);
                }
                inv.swap(i, j);
            }
        }
    }

    /// Projects onto a subset of variables (deduplicating rows), used when
    /// handing a parent block's bindings to a nested block. Candidate rows
    /// are hashed as slices and compared against the output slab — no row is
    /// cloned twice and rejected duplicates are never materialized.
    pub fn project(&self, keep: &[String]) -> Bindings {
        let cols: Vec<usize> = keep.iter().filter_map(|v| self.col(v)).collect();
        let kept: Vec<String> = keep.iter().filter(|v| self.is_bound(v)).cloned().collect();
        let mut out = Bindings::with_vars(kept);
        let mut dedup = RowDedup::default();
        for row in self.rows() {
            let projected = cols.iter().map(|&c| &row[c]);
            if dedup.probe(&out, projected.clone()) {
                out.push_row_extend(&[], projected.cloned());
                dedup.commit(out.len - 1);
            }
        }
        out
    }
}

/// An order-preserving 64-bit digest of a value: comparing digests never
/// contradicts [`Value::canonical_cmp`], and unequal digests imply the same
/// strict order. Equal digests say nothing (low bits of large integers and
/// string tails past 7 bytes are dropped), so ties must fall back to the
/// full comparison. The top byte is the `canonical_cmp` type rank; the low
/// 56 bits are a monotone compression of the content.
fn sort_digest(v: &Value) -> u64 {
    fn prefix7(s: &str) -> u64 {
        let mut k = 0u64;
        for i in 0..7 {
            k = (k << 8) | *s.as_bytes().get(i).unwrap_or(&0) as u64;
        }
        k
    }
    let (rank, body) = match v {
        Value::Node(n) => (0u64, n.0 as u64),
        Value::Int(i) => (1, (*i as u64 ^ (1 << 63)) >> 8),
        Value::Float(f) => {
            // The IEEE-754 total-order trick: flip all bits of negatives,
            // set the sign bit of non-negatives, and the unsigned bit
            // patterns sort exactly like `f64::total_cmp`.
            let b = f.to_bits();
            let k = if b >> 63 == 1 { !b } else { b | (1 << 63) };
            (2, k >> 8)
        }
        Value::Bool(b) => (3, *b as u64),
        Value::Str(s) => (4, prefix7(s)),
        Value::Url(s) => (5, prefix7(s)),
        Value::File(kind, s) => (6, ((*kind as u64) << 48) | (prefix7(s) >> 8)),
    };
    (rank << 56) | body
}

/// Deduplicates rows of a growing [`Bindings`] slab: a row-hash → row-index
/// table, with collision resolution by comparing against the slab itself.
/// Protocol: call [`RowDedup::probe`] with the candidate; if it returns
/// `true`, push the row and [`RowDedup::commit`] its index.
#[derive(Default)]
pub struct RowDedup {
    table: FxHashMap<u64, Vec<u32>>,
    pending: u64,
}

impl RowDedup {
    /// Whether a row with these values is absent from `b` (among committed
    /// rows). Remembers the hash for a following [`RowDedup::commit`].
    pub fn probe<'a>(
        &mut self,
        b: &Bindings,
        row: impl Iterator<Item = &'a Value> + Clone,
    ) -> bool {
        let mut h = FxHasher::default();
        let mut n = 0usize;
        for v in row.clone() {
            v.hash(&mut h);
            n += 1;
        }
        n.hash(&mut h);
        let hash = h.finish();
        self.pending = hash;
        match self.table.get(&hash) {
            None => true,
            Some(candidates) => !candidates
                .iter()
                .any(|&i| b.row(i as usize).iter().eq(row.clone())),
        }
    }

    /// Records that the row just probed was pushed at `row_index`.
    pub fn commit(&mut self, row_index: usize) {
        self.table
            .entry(self.pending)
            .or_default()
            .push(row_index as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_has_one_empty_row() {
        let u = Bindings::unit();
        assert_eq!(u.len(), 1);
        assert!(u.vars().is_empty());
        assert_eq!(u.row(0), &[] as &[Value]);
    }

    #[test]
    fn add_var_and_get() {
        let mut b = Bindings::unit();
        let _x = b.add_var_with("x", Value::Int(7));
        assert_eq!(b.get(b.row(0), "x"), Some(&Value::Int(7)));
        assert_eq!(b.get(b.row(0), "y"), None);
        assert!(b.is_bound("x"));
    }

    #[test]
    fn add_var_with_extends_every_row() {
        let mut b = Bindings::with_vars(vec!["x".into()]);
        b.push_row(&[Value::Int(1)]);
        b.push_row(&[Value::Int(2)]);
        b.add_var_with("y", Value::str("k"));
        assert_eq!(b.width(), 2);
        assert_eq!(b.row(0), &[Value::Int(1), Value::str("k")]);
        assert_eq!(b.row(1), &[Value::Int(2), Value::str("k")]);
    }

    #[test]
    fn retain_rows_compacts() {
        let mut b = Bindings::with_vars(vec!["x".into()]);
        for i in 0..10 {
            b.push_row(&[Value::Int(i)]);
        }
        b.retain_rows(|r| matches!(r[0], Value::Int(i) if i % 3 == 0));
        assert_eq!(b.len(), 4);
        let got: Vec<_> = b.rows().map(|r| r[0].clone()).collect();
        assert_eq!(
            got,
            vec![Value::Int(0), Value::Int(3), Value::Int(6), Value::Int(9)]
        );
    }

    #[test]
    fn project_deduplicates() {
        let mut b = Bindings::with_vars(vec!["x".into(), "y".into()]);
        b.push_row(&[Value::Int(1), Value::Int(10)]);
        b.push_row(&[Value::Int(1), Value::Int(20)]);
        b.push_row(&[Value::Int(2), Value::Int(30)]);
        let p = b.project(&["x".to_string()]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.vars(), &["x".to_string()]);
    }

    #[test]
    fn project_ignores_unbound() {
        let b = Bindings::with_vars(vec!["x".into()]);
        let p = b.project(&["x".to_string(), "z".to_string()]);
        assert_eq!(p.vars(), &["x".to_string()]);
    }

    #[test]
    fn canonical_sort_orders_by_var_name_then_value() {
        // Schema order y,x — canonical order still compares column x first.
        let mut b = Bindings::with_vars(vec!["y".into(), "x".into()]);
        b.push_row(&[Value::Int(1), Value::Int(2)]);
        b.push_row(&[Value::Int(9), Value::Int(1)]);
        b.push_row(&[Value::Int(0), Value::Int(2)]);
        b.canonical_sort();
        let got: Vec<_> = b.rows().map(|r| (r[0].clone(), r[1].clone())).collect();
        assert_eq!(
            got,
            vec![
                (Value::Int(9), Value::Int(1)),
                (Value::Int(0), Value::Int(2)),
                (Value::Int(1), Value::Int(2)),
            ]
        );
        // Mixed types order by rank: nodes < ints < strings.
        let mut m = Bindings::with_vars(vec!["v".into()]);
        m.push_row(&[Value::str("s")]);
        m.push_row(&[Value::Int(5)]);
        m.canonical_sort();
        assert_eq!(m.row(0), &[Value::Int(5)]);
    }

    #[test]
    fn row_dedup_distinguishes_equal_hashes_by_content() {
        let mut b = Bindings::with_vars(vec!["x".into(), "y".into()]);
        let mut dedup = RowDedup::default();
        let rows = [
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(1), Value::str("b")],
        ];
        let mut inserted = 0;
        for r in &rows {
            if dedup.probe(&b, r.iter()) {
                b.push_row(r);
                dedup.commit(b.len() - 1);
                inserted += 1;
            }
        }
        assert_eq!(inserted, 2);
    }
}
