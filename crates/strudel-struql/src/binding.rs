//! The bindings relation produced by the query stage.
//!
//! "The meaning of the where-clause is the set of assignments … that satisfy
//! all conditions in the where clause"; its result is "a relation with one
//! attribute for each variable" (§3). Arc variables bind to labels,
//! represented as [`Value::Str`] so that comparisons like `l = "year"` are
//! ordinary value comparisons.

use strudel_graph::fxhash::FxHashMap;
use strudel_graph::Value;

/// A relation: a variable schema plus rows of values.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    vars: Vec<String>,
    index: FxHashMap<String, usize>,
    /// The rows. Each row has exactly `vars().len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Bindings {
    /// An empty relation with no variables and no rows.
    pub fn empty() -> Bindings {
        Bindings::default()
    }

    /// The relation with no variables and exactly one (empty) row — the
    /// identity for condition evaluation. A block with an empty `WHERE`
    /// clause binds this once, which is why `CREATE RootPage()` with no
    /// conditions creates exactly one node.
    pub fn unit() -> Bindings {
        Bindings {
            vars: Vec::new(),
            index: FxHashMap::default(),
            rows: vec![Vec::new()],
        }
    }

    /// Creates a relation with the given schema and no rows.
    pub fn with_vars(vars: Vec<String>) -> Bindings {
        let index = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect();
        Bindings {
            vars,
            index,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Column index of `var`, if bound.
    pub fn col(&self, var: &str) -> Option<usize> {
        self.index.get(var).copied()
    }

    /// Whether `var` is in the schema.
    pub fn is_bound(&self, var: &str) -> bool {
        self.index.contains_key(var)
    }

    /// Appends a new variable column, returning its index. The caller must
    /// push a value for it in every row it adds.
    pub fn add_var(&mut self, var: &str) -> usize {
        debug_assert!(
            !self.index.contains_key(var),
            "variable {var} already bound"
        );
        let i = self.vars.len();
        self.vars.push(var.to_string());
        self.index.insert(var.to_string(), i);
        i
    }

    /// The value of `var` in `row`.
    pub fn get<'a>(&self, row: &'a [Value], var: &str) -> Option<&'a Value> {
        self.col(var).and_then(|i| row.get(i))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Projects onto a subset of variables (deduplicating rows), used when
    /// handing a parent block's bindings to a nested block.
    pub fn project(&self, keep: &[String]) -> Bindings {
        let cols: Vec<usize> = keep.iter().filter_map(|v| self.col(v)).collect();
        let kept: Vec<String> = keep.iter().filter(|v| self.is_bound(v)).cloned().collect();
        let mut out = Bindings::with_vars(kept);
        let mut seen = strudel_graph::fxhash::FxHashSet::default();
        for row in &self.rows {
            let projected: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            if seen.insert(projected.clone()) {
                out.rows.push(projected);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_has_one_empty_row() {
        let u = Bindings::unit();
        assert_eq!(u.len(), 1);
        assert!(u.vars().is_empty());
    }

    #[test]
    fn add_var_and_get() {
        let mut b = Bindings::unit();
        let _x = b.add_var("x");
        b.rows[0].push(Value::Int(7));
        assert_eq!(b.get(&b.rows[0], "x"), Some(&Value::Int(7)));
        assert_eq!(b.get(&b.rows[0], "y"), None);
        assert!(b.is_bound("x"));
    }

    #[test]
    fn project_deduplicates() {
        let mut b = Bindings::with_vars(vec!["x".into(), "y".into()]);
        b.rows.push(vec![Value::Int(1), Value::Int(10)]);
        b.rows.push(vec![Value::Int(1), Value::Int(20)]);
        b.rows.push(vec![Value::Int(2), Value::Int(30)]);
        let p = b.project(&["x".to_string()]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.vars(), &["x".to_string()]);
    }

    #[test]
    fn project_ignores_unbound() {
        let b = Bindings::with_vars(vec!["x".into()]);
        let p = b.project(&["x".to_string(), "z".to_string()]);
        assert_eq!(p.vars(), &["x".to_string()]);
    }
}
