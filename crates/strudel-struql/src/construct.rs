//! The construction stage (§3): `CREATE` / `LINK` / `COLLECT`.
//!
//! "For each row in the relation, first construct all new node oids, as
//! specified in the create clause … By convention, when a Skolem function is
//! applied to the same inputs, it returns the same node oid. Next, construct
//! the new edges, as described in the link clause." Edges and collections
//! have set semantics: emitting the same edge from many rows (which Fig. 3's
//! `PaperPresentation(x) -> "Abstract" -> AbstractPage(x)` does, once per
//! attribute binding of `x`) yields one edge.
//!
//! The [`SkolemTable`] may outlive one query: STRUDEL lets "different
//! queries create different parts of the same site" (§5.2), which works
//! precisely because `F(v)` in a later query resolves to the node `F(v)`
//! created by an earlier one.

use crate::ast::{AggFunc, Block, LabelTerm, SkolemTerm, Term};
use crate::binding::Bindings;
use crate::error::{Result, StruqlError};
use std::fmt::Write as _;
use strudel_graph::fxhash::{FxHashMap, FxHashSet};
use strudel_graph::{Graph, Oid, Sym, Value};

/// The memo table of Skolem-function applications:
/// `(function name, argument values) → node`.
///
/// Nested maps (name → args → node) so the hot lookup path hashes the
/// borrowed `&str` and `&[Value]` directly — no `(String, Vec)` key is
/// allocated per call; allocations happen only on first instantiation.
/// The table also carries the *derivation counts* behind DRed-style
/// incremental maintenance: every emitted edge, collection member, and node
/// reference remembers how many construction-row derivations support it, so
/// retracting a binding only deletes site structure whose support drops to
/// zero (multiple rows constructing the same edge keep it alive).
#[derive(Default, Debug)]
pub struct SkolemTable {
    map: FxHashMap<String, FxHashMap<Vec<Value>, Oid>>,
    /// Reverse lookup for retraction: Skolem node → its application.
    skolem_of: FxHashMap<Oid, (String, Vec<Value>)>,
    count: usize,
    /// Emitted edges with derivation counts (set semantics in the graph: the
    /// edge exists while its count is positive). Keyed by `(from, label)` so
    /// duplicate emissions probe without cloning the target value.
    emitted: FxHashMap<(Oid, Sym), FxHashMap<Value, u32>>,
    /// Collection members with derivation counts, keyed by collection.
    collected: FxHashMap<Sym, FxHashMap<Value, u32>>,
    /// Reference counts per output-graph node: one per Skolem resolution,
    /// per Node-valued edge emission, and per Node-valued collect. A node
    /// leaves the site graph only when its last reference is released.
    node_refs: FxHashMap<Oid, u32>,
}

impl SkolemTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct Skolem applications instantiated.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no applications have been instantiated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resolves `name(args)` to its node, creating the node in `out` on
    /// first use. The node's provenance name is the printed Skolem term
    /// (`YearPage(1997)`), which the HTML generator later uses for stable
    /// file names.
    pub fn instantiate(&mut self, out: &mut Graph, name: &str, args: &[Value]) -> Oid {
        self.instantiate_tracked(out, name, args).0
    }

    /// Like [`SkolemTable::instantiate`], also reporting whether the node
    /// was created by this call.
    fn instantiate_tracked(&mut self, out: &mut Graph, name: &str, args: &[Value]) -> (Oid, bool) {
        if let Some(&oid) = self.map.get(name).and_then(|m| m.get(args)) {
            *self.node_refs.entry(oid).or_insert(0) += 1;
            return (oid, false);
        }
        let mut label = String::with_capacity(name.len() + 8);
        label.push_str(name);
        label.push('(');
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                label.push(',');
            }
            match a {
                // Strings print unquoted in node names for readability.
                Value::Str(s) => label.push_str(s),
                other => {
                    let _ = write!(label, "{other}");
                }
            }
        }
        label.push(')');
        let oid = out.new_node(Some(&label));
        self.map
            .entry(name.to_string())
            .or_default()
            .insert(args.to_vec(), oid);
        self.skolem_of
            .insert(oid, (name.to_string(), args.to_vec()));
        self.count += 1;
        *self.node_refs.entry(oid).or_insert(0) += 1;
        (oid, true)
    }

    /// Looks up an existing application without creating it.
    pub fn lookup(&self, name: &str, args: &[Value]) -> Option<Oid> {
        self.map.get(name).and_then(|m| m.get(args)).copied()
    }

    /// Iterates all instantiated applications.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Value], Oid)> {
        self.map.iter().flat_map(|(name, m)| {
            m.iter()
                .map(move |(args, &oid)| (name.as_str(), args.as_slice(), oid))
        })
    }

    fn emit_edge(&mut self, out: &mut Graph, from: Oid, label: Sym, to: Value) -> Result<bool> {
        if let Value::Node(n) = &to {
            *self.node_refs.entry(*n).or_insert(0) += 1;
        }
        let support = self.emitted.entry((from, label)).or_default();
        if let Some(n) = support.get_mut(&to) {
            *n += 1;
            return Ok(false);
        }
        support.insert(to.clone(), 1);
        // Linking to an existing node pulls it (and its attributes)
        // into the output graph — graphs of a database share objects.
        if let Value::Node(n) = &to {
            if !out.contains_node(*n) {
                out.adopt_node(*n)?;
            }
        }
        out.add_edge(from, label, to)?;
        Ok(true)
    }

    /// Withdraws one derivation of `from --label--> to`; the edge leaves the
    /// graph only when its support count reaches zero. Returns whether the
    /// edge was physically removed. Errors on a derivation that was never
    /// emitted (an over-retraction — the caller's deltas are inconsistent).
    fn retract_edge(&mut self, out: &mut Graph, from: Oid, label: Sym, to: &Value) -> Result<bool> {
        let support = self
            .emitted
            .get_mut(&(from, label))
            .and_then(|m| m.get_mut(to))
            .ok_or_else(|| StruqlError::eval("retraction of an edge that was never derived"))?;
        *support -= 1;
        let gone = *support == 0;
        if gone {
            let by_target = self.emitted.get_mut(&(from, label)).expect("present above");
            by_target.remove(to);
            if by_target.is_empty() {
                self.emitted.remove(&(from, label));
            }
            out.remove_edge(from, label, to)?;
        }
        if let Value::Node(n) = to {
            self.release_node(out, *n)?;
        }
        Ok(gone)
    }

    fn emit_collect(&mut self, out: &mut Graph, coll: Sym, value: Value) -> Result<bool> {
        if let Value::Node(n) = &value {
            *self.node_refs.entry(*n).or_insert(0) += 1;
            if !out.contains_node(*n) {
                out.adopt_node(*n)?;
            }
        }
        let support = self.collected.entry(coll).or_default();
        if let Some(n) = support.get_mut(&value) {
            *n += 1;
            return Ok(false);
        }
        support.insert(value.clone(), 1);
        out.add_to_collection(coll, value);
        Ok(true)
    }

    /// Withdraws one derivation of a collection membership; the member is
    /// removed only when its support count reaches zero. Returns whether it
    /// was physically removed.
    fn retract_collect(&mut self, out: &mut Graph, coll: Sym, value: &Value) -> Result<bool> {
        let support = self
            .collected
            .get_mut(&coll)
            .and_then(|m| m.get_mut(value))
            .ok_or_else(|| {
                StruqlError::eval("retraction of a collection member that was never derived")
            })?;
        *support -= 1;
        let gone = *support == 0;
        if gone {
            self.collected
                .get_mut(&coll)
                .expect("present above")
                .remove(value);
            out.remove_from_collection(coll, value);
        }
        if let Value::Node(n) = value {
            self.release_node(out, *n)?;
        }
        Ok(gone)
    }

    /// Looks up the node a Skolem application resolved to, for retraction.
    fn resolve_existing(&self, name: &str, args: &[Value]) -> Result<Oid> {
        self.lookup(name, args).ok_or_else(|| {
            StruqlError::eval(format!(
                "retraction references uninstantiated Skolem term {name}(..)"
            ))
        })
    }

    /// Releases one reference to a site-graph node. When the last reference
    /// goes, the node leaves the graph: a Skolem page is dropped from the
    /// table (so a later re-derivation mints a fresh node) and an adopted
    /// data node merely loses its site membership. Returns whether the node
    /// was removed from the graph.
    fn release_node(&mut self, out: &mut Graph, n: Oid) -> Result<bool> {
        let refs = self
            .node_refs
            .get_mut(&n)
            .ok_or_else(|| StruqlError::eval("node reference underflow during retraction"))?;
        *refs -= 1;
        if *refs > 0 {
            return Ok(false);
        }
        self.node_refs.remove(&n);
        if let Some((name, args)) = self.skolem_of.remove(&n) {
            if let Some(by_args) = self.map.get_mut(&name) {
                by_args.remove(&args);
                if by_args.is_empty() {
                    self.map.remove(&name);
                }
            }
            self.count -= 1;
        }
        out.remove_member(n);
        Ok(true)
    }
}

/// Counters reported by the construction stage.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstructStats {
    /// New nodes created by Skolem instantiation.
    pub nodes_created: u64,
    /// Distinct edges added.
    pub edges_created: u64,
    /// Collection insertions (deduplicated).
    pub collected: u64,
    /// Edges whose support dropped to zero and left the graph.
    pub edges_removed: u64,
    /// Collection members whose support dropped to zero.
    pub collect_removed: u64,
    /// Nodes whose last reference was released.
    pub nodes_removed: u64,
}

impl ConstructStats {
    /// Component-wise difference `self - earlier` (saturating). Used for
    /// per-block accounting against a running total.
    pub fn delta_since(&self, earlier: &ConstructStats) -> ConstructStats {
        ConstructStats {
            nodes_created: self.nodes_created.saturating_sub(earlier.nodes_created),
            edges_created: self.edges_created.saturating_sub(earlier.edges_created),
            collected: self.collected.saturating_sub(earlier.collected),
            edges_removed: self.edges_removed.saturating_sub(earlier.edges_removed),
            collect_removed: self.collect_removed.saturating_sub(earlier.collect_removed),
            nodes_removed: self.nodes_removed.saturating_sub(earlier.nodes_removed),
        }
    }
}

/// A Skolem term resolved against a bindings schema: argument variables as
/// column indexes, so per-row resolution gathers values without name
/// lookups.
struct SkPlan<'a> {
    name: &'a str,
    cols: Vec<usize>,
}

impl<'a> SkPlan<'a> {
    fn of(b: &Bindings, sk: &'a SkolemTerm) -> Result<SkPlan<'a>> {
        let cols = sk
            .args
            .iter()
            .map(|a| {
                b.col(a).ok_or_else(|| {
                    StruqlError::eval(format!(
                        "Skolem argument `{a}` unbound at construction time"
                    ))
                })
            })
            .collect::<Result<_>>()?;
        Ok(SkPlan {
            name: &sk.name,
            cols,
        })
    }

    fn resolve(
        &self,
        table: &mut SkolemTable,
        out: &mut Graph,
        row: &[Value],
        buf: &mut Vec<Value>,
        stats: &mut ConstructStats,
    ) -> Oid {
        buf.clear();
        buf.extend(self.cols.iter().map(|&c| row[c].clone()));
        let (oid, created) = table.instantiate_tracked(out, self.name, buf);
        if created {
            stats.nodes_created += 1;
        }
        oid
    }

    /// Resolves the application this plan produced when it was applied,
    /// without creating it (and without taking a node reference).
    fn resolve_existing(
        &self,
        table: &SkolemTable,
        row: &[Value],
        buf: &mut Vec<Value>,
    ) -> Result<Oid> {
        buf.clear();
        buf.extend(self.cols.iter().map(|&c| row[c].clone()));
        table.resolve_existing(self.name, buf)
    }
}

/// A link label resolved against a bindings schema.
enum LabelPlan<'a> {
    Lit(Sym),
    Col(usize, &'a str),
}

/// A link target / collect argument resolved against a bindings schema.
enum TargetPlan<'a> {
    Skolem(SkPlan<'a>),
    Col(usize),
    Lit(Value),
    Agg(usize),
}

impl<'a> TargetPlan<'a> {
    fn of(b: &Bindings, term: &'a Term, what: &str) -> Result<TargetPlan<'a>> {
        match term {
            Term::Skolem(sk) => Ok(TargetPlan::Skolem(SkPlan::of(b, sk)?)),
            Term::Var(v) => Ok(TargetPlan::Col(b.col(v).ok_or_else(|| {
                StruqlError::eval(format!("{what} variable `{v}` unbound"))
            })?)),
            Term::Lit(l) => Ok(TargetPlan::Lit(l.to_value())),
            Term::Agg(_, v) => Ok(TargetPlan::Agg(b.col(v).ok_or_else(|| {
                StruqlError::eval(format!("aggregate variable `{v}` unbound"))
            })?)),
        }
    }
}

struct LinkPlan<'a> {
    from: SkPlan<'a>,
    label: LabelPlan<'a>,
    to: TargetPlan<'a>,
}

/// Every construction plan of a block resolved against a bindings schema:
/// variable references as column indexes, literal link labels pre-interned,
/// collect collections pre-resolved.
struct BlockPlans<'a> {
    creates: Vec<SkPlan<'a>>,
    links: Vec<LinkPlan<'a>>,
    collect_syms: Vec<Sym>,
    collects: Vec<TargetPlan<'a>>,
}

fn block_plans<'a>(
    block: &'a Block,
    bindings: &Bindings,
    out: &mut Graph,
) -> Result<BlockPlans<'a>> {
    let creates: Vec<SkPlan<'_>> = block
        .creates
        .iter()
        .map(|sk| SkPlan::of(bindings, sk))
        .collect::<Result<_>>()?;
    let links: Vec<LinkPlan<'_>> = block
        .links
        .iter()
        .map(|link| {
            Ok(LinkPlan {
                from: SkPlan::of(bindings, &link.from)?,
                label: match &link.label {
                    LabelTerm::Lit(s) => LabelPlan::Lit(out.sym(s)),
                    LabelTerm::Var(v) => LabelPlan::Col(
                        bindings.col(v).ok_or_else(|| {
                            StruqlError::eval(format!("link label variable `{v}` unbound"))
                        })?,
                        v,
                    ),
                },
                to: TargetPlan::of(bindings, &link.to, "link target")?,
            })
        })
        .collect::<Result<_>>()?;
    let collect_syms: Vec<Sym> = block
        .collects
        .iter()
        .map(|c| out.ensure_collection(&c.name))
        .collect();
    let collects: Vec<TargetPlan<'_>> = block
        .collects
        .iter()
        .map(|c| TargetPlan::of(bindings, &c.arg, "collect argument"))
        .collect::<Result<_>>()?;
    Ok(BlockPlans {
        creates,
        links,
        collect_syms,
        collects,
    })
}

/// The aggregation accumulators of one `apply_block` pass (§5.2 extension):
/// link targets group by (link clause, source node, label); collect
/// arguments aggregate over the whole bindings relation. Distinct values
/// only.
#[derive(Default)]
struct AggAcc {
    links: FxHashMap<(usize, Oid, Sym), FxHashSet<Value>>,
    collects: FxHashMap<usize, FxHashSet<Value>>,
}

/// Emits the aggregated links and collections accumulated by a row pass, in
/// sorted key order (deterministic regardless of accumulation order).
fn emit_aggregates(
    block: &Block,
    collect_syms: &[Sym],
    agg: AggAcc,
    out: &mut Graph,
    table: &mut SkolemTable,
    stats: &mut ConstructStats,
) -> Result<()> {
    let mut agg_link_keys: Vec<(usize, Oid, Sym)> = agg.links.keys().copied().collect();
    agg_link_keys.sort_unstable_by_key(|(i, o, s)| (*i, o.0, s.0));
    for key in agg_link_keys {
        let (link_idx, from, label) = key;
        let values = &agg.links[&key];
        let Term::Agg(func, _) = &block.links[link_idx].to else {
            unreachable!("accumulated from Agg")
        };
        if let Some(result) = aggregate(*func, values) {
            if table.emit_edge(out, from, label, result)? {
                stats.edges_created += 1;
            }
        }
    }
    let mut agg_coll_keys: Vec<usize> = agg.collects.keys().copied().collect();
    agg_coll_keys.sort_unstable();
    for coll_idx in agg_coll_keys {
        let Term::Agg(func, _) = &block.collects[coll_idx].arg else {
            unreachable!("accumulated from Agg")
        };
        if let Some(result) = aggregate(*func, &agg.collects[&coll_idx]) {
            if table.emit_collect(out, collect_syms[coll_idx], result)? {
                stats.collected += 1;
            }
        }
    }
    Ok(())
}

/// Runs a block's construction clauses over its bindings relation, writing
/// into `out`.
pub fn apply_block(
    block: &Block,
    bindings: &Bindings,
    out: &mut Graph,
    table: &mut SkolemTable,
    stats: &mut ConstructStats,
) -> Result<()> {
    if block.creates.is_empty() && block.links.is_empty() && block.collects.is_empty() {
        return Ok(());
    }

    // Nothing to construct from an empty relation (aggregates over an
    // empty group emit nothing either).
    if bindings.is_empty() {
        return Ok(());
    }

    // Resolve every variable reference against the bindings schema once —
    // the per-row loop then works with column indexes only.
    let plans = block_plans(block, bindings, out)?;
    let mut agg = AggAcc::default();

    let mut args: Vec<Value> = Vec::new();
    for row_idx in 0..bindings.len() {
        let row = bindings.row(row_idx);

        for plan in &plans.creates {
            plan.resolve(table, out, row, &mut args, stats);
        }

        for (link_idx, lp) in plans.links.iter().enumerate() {
            let from = lp.from.resolve(table, out, row, &mut args, stats);
            let label = match &lp.label {
                LabelPlan::Lit(sym) => *sym,
                LabelPlan::Col(c, v) => {
                    let value = &row[*c];
                    match value.text() {
                        Some(t) => out.sym(&t),
                        None => {
                            return Err(StruqlError::eval(format!(
                                "link label variable `{v}` is bound to non-label value {value}"
                            )))
                        }
                    }
                }
            };
            let to: Value = match &lp.to {
                TargetPlan::Skolem(p) => Value::Node(p.resolve(table, out, row, &mut args, stats)),
                TargetPlan::Col(c) => row[*c].clone(),
                TargetPlan::Lit(v) => v.clone(),
                TargetPlan::Agg(c) => {
                    // Accumulate the group; the edge is emitted after the
                    // row loop.
                    agg.links
                        .entry((link_idx, from, label))
                        .or_default()
                        .insert(row[*c].clone());
                    continue;
                }
            };
            if table.emit_edge(out, from, label, to)? {
                stats.edges_created += 1;
            }
        }

        for (coll_idx, cp) in plans.collects.iter().enumerate() {
            let value: Value = match cp {
                TargetPlan::Skolem(p) => Value::Node(p.resolve(table, out, row, &mut args, stats)),
                TargetPlan::Col(c) => row[*c].clone(),
                TargetPlan::Lit(v) => v.clone(),
                TargetPlan::Agg(c) => {
                    agg.collects
                        .entry(coll_idx)
                        .or_default()
                        .insert(row[*c].clone());
                    continue;
                }
            };
            if table.emit_collect(out, plans.collect_syms[coll_idx], value)? {
                stats.collected += 1;
            }
        }
    }

    emit_aggregates(block, &plans.collect_syms, agg, out, table, stats)
}

/// Minimum rows per partition before block construction is split across
/// worker threads; below this the sequential path wins.
const PAR_MIN_CONSTRUCT_ROWS: usize = 512;

/// A link/collect target resolved to concrete values by a gather worker,
/// awaiting replay against the graph and table.
enum TargetVal {
    /// Arguments of a Skolem application to instantiate at replay time.
    Skolem(Vec<Value>),
    /// A finished value.
    Val(Value),
    /// A value to fold into the aggregate accumulator.
    Agg(Value),
}

/// One row's construction actions, resolved to values only — no graph or
/// table access — so rows can be gathered in parallel.
struct RowActions {
    /// Argument vectors, one per `CREATE` plan.
    creates: Vec<Vec<Value>>,
    /// Per `LINK` plan: source Skolem arguments, the label value when the
    /// label is a bound variable (`None` for pre-interned literals —
    /// variable labels are interned at replay time, in row order, so symbol
    /// numbering matches the sequential pass exactly), and the target.
    links: Vec<(Vec<Value>, Option<Value>, TargetVal)>,
    /// One target per `COLLECT` plan.
    collects: Vec<TargetVal>,
}

fn gather_row(plans: &BlockPlans<'_>, row: &[Value]) -> RowActions {
    let gather_args =
        |p: &SkPlan<'_>| -> Vec<Value> { p.cols.iter().map(|&c| row[c].clone()).collect() };
    let gather_target = |tp: &TargetPlan<'_>| match tp {
        TargetPlan::Skolem(p) => TargetVal::Skolem(gather_args(p)),
        TargetPlan::Col(c) => TargetVal::Val(row[*c].clone()),
        TargetPlan::Lit(v) => TargetVal::Val(v.clone()),
        TargetPlan::Agg(c) => TargetVal::Agg(row[*c].clone()),
    };
    RowActions {
        creates: plans.creates.iter().map(&gather_args).collect(),
        links: plans
            .links
            .iter()
            .map(|lp| {
                let label = match &lp.label {
                    LabelPlan::Lit(_) => None,
                    LabelPlan::Col(c, _) => Some(row[*c].clone()),
                };
                (gather_args(&lp.from), label, gather_target(&lp.to))
            })
            .collect(),
        collects: plans.collects.iter().map(&gather_target).collect(),
    }
}

/// Like [`apply_block`], but with the per-row value resolution (Skolem
/// argument vectors, link labels and targets, collect values) gathered in
/// parallel over contiguous row partitions. The partitions are then
/// *replayed* against the graph and table on the calling thread, in row
/// order — the replay performs exactly the same `instantiate`/`emit` calls
/// in exactly the same order as the sequential pass, so Skolem node
/// numbering, derivation counts, symbol interning and error behaviour are
/// all byte-identical to [`apply_block`] at any worker count.
pub fn apply_block_jobs(
    block: &Block,
    bindings: &Bindings,
    out: &mut Graph,
    table: &mut SkolemTable,
    stats: &mut ConstructStats,
    jobs: usize,
) -> Result<()> {
    let workers = if jobs <= 1 {
        1
    } else {
        jobs.min(bindings.len() / PAR_MIN_CONSTRUCT_ROWS).max(1)
    };
    if workers <= 1 {
        return apply_block(block, bindings, out, table, stats);
    }
    if block.creates.is_empty() && block.links.is_empty() && block.collects.is_empty() {
        return Ok(());
    }

    let plans = block_plans(block, bindings, out)?;

    // Phase 1 (parallel): gather every row's actions — pure value cloning,
    // no shared mutable state.
    let chunk = bindings.len().div_ceil(workers);
    let plans_ref = &plans;
    let parts: Vec<Vec<RowActions>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..bindings.len())
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(bindings.len());
                scope.spawn(move || {
                    (start..end)
                        .map(|i| gather_row(plans_ref, bindings.row(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("construction worker panicked"))
            .collect()
    });

    // Phase 2 (sequential): replay the partitions in row order.
    let mut agg = AggAcc::default();
    for ra in parts.into_iter().flatten() {
        for (create_idx, args) in ra.creates.into_iter().enumerate() {
            let (_, created) =
                table.instantiate_tracked(out, plans.creates[create_idx].name, &args);
            if created {
                stats.nodes_created += 1;
            }
        }

        for (link_idx, (from_args, label_val, to_val)) in ra.links.into_iter().enumerate() {
            let lp = &plans.links[link_idx];
            let (from, created) = table.instantiate_tracked(out, lp.from.name, &from_args);
            if created {
                stats.nodes_created += 1;
            }
            let label = match (&lp.label, label_val) {
                (LabelPlan::Lit(sym), _) => *sym,
                (LabelPlan::Col(_, v), Some(value)) => match value.text() {
                    Some(t) => out.sym(&t),
                    None => {
                        return Err(StruqlError::eval(format!(
                            "link label variable `{v}` is bound to non-label value {value}"
                        )))
                    }
                },
                (LabelPlan::Col(..), None) => unreachable!("gathered from Col"),
            };
            let to: Value = match to_val {
                TargetVal::Skolem(args) => {
                    let TargetPlan::Skolem(p) = &lp.to else {
                        unreachable!("gathered from Skolem")
                    };
                    let (oid, created) = table.instantiate_tracked(out, p.name, &args);
                    if created {
                        stats.nodes_created += 1;
                    }
                    Value::Node(oid)
                }
                TargetVal::Val(v) => v,
                TargetVal::Agg(v) => {
                    agg.links
                        .entry((link_idx, from, label))
                        .or_default()
                        .insert(v);
                    continue;
                }
            };
            if table.emit_edge(out, from, label, to)? {
                stats.edges_created += 1;
            }
        }

        for (coll_idx, tv) in ra.collects.into_iter().enumerate() {
            let value: Value = match tv {
                TargetVal::Skolem(args) => {
                    let TargetPlan::Skolem(p) = &plans.collects[coll_idx] else {
                        unreachable!("gathered from Skolem")
                    };
                    let (oid, created) = table.instantiate_tracked(out, p.name, &args);
                    if created {
                        stats.nodes_created += 1;
                    }
                    Value::Node(oid)
                }
                TargetVal::Val(v) => v,
                TargetVal::Agg(v) => {
                    agg.collects.entry(coll_idx).or_default().insert(v);
                    continue;
                }
            };
            if table.emit_collect(out, plans.collect_syms[coll_idx], value)? {
                stats.collected += 1;
            }
        }
    }

    emit_aggregates(block, &plans.collect_syms, agg, out, table, stats)
}

/// Withdraws a block's construction clauses for a retracted bindings
/// relation: the exact mirror of [`apply_block`], decrementing the
/// derivation counts taken when the same rows were applied. Edges,
/// collection members, and nodes leave `out` only when their last
/// supporting derivation goes.
///
/// The caller owes the contract that `bindings` is a sub-relation of rows
/// previously applied with this table — in the incremental-maintenance
/// fragment that means evaluating the retracted seed over the *pre-removal*
/// data graph. Aggregate targets are outside the fragment and are rejected.
pub fn retract_block(
    block: &Block,
    bindings: &Bindings,
    out: &mut Graph,
    table: &mut SkolemTable,
    stats: &mut ConstructStats,
) -> Result<()> {
    if block.creates.is_empty() && block.links.is_empty() && block.collects.is_empty() {
        return Ok(());
    }
    if bindings.is_empty() {
        return Ok(());
    }

    let create_plans: Vec<SkPlan<'_>> = block
        .creates
        .iter()
        .map(|sk| SkPlan::of(bindings, sk))
        .collect::<Result<_>>()?;
    let link_plans: Vec<LinkPlan<'_>> = block
        .links
        .iter()
        .map(|link| {
            Ok(LinkPlan {
                from: SkPlan::of(bindings, &link.from)?,
                label: match &link.label {
                    LabelTerm::Lit(s) => LabelPlan::Lit(out.sym(s)),
                    LabelTerm::Var(v) => LabelPlan::Col(
                        bindings.col(v).ok_or_else(|| {
                            StruqlError::eval(format!("link label variable `{v}` unbound"))
                        })?,
                        v,
                    ),
                },
                to: TargetPlan::of(bindings, &link.to, "link target")?,
            })
        })
        .collect::<Result<_>>()?;
    let collect_syms: Vec<Sym> = block
        .collects
        .iter()
        .map(|c| out.ensure_collection(&c.name))
        .collect();
    let coll_plans: Vec<TargetPlan<'_>> = block
        .collects
        .iter()
        .map(|c| TargetPlan::of(bindings, &c.arg, "collect argument"))
        .collect::<Result<_>>()?;
    if link_plans
        .iter()
        .any(|lp| matches!(lp.to, TargetPlan::Agg(_)))
        || coll_plans.iter().any(|cp| matches!(cp, TargetPlan::Agg(_)))
    {
        return Err(StruqlError::eval(
            "aggregate constructions cannot be retracted incrementally",
        ));
    }

    let mut args: Vec<Value> = Vec::new();
    for row_idx in 0..bindings.len() {
        let row = bindings.row(row_idx);

        for lp in &link_plans {
            let from = lp.from.resolve_existing(table, row, &mut args)?;
            let label = match &lp.label {
                LabelPlan::Lit(sym) => *sym,
                LabelPlan::Col(c, v) => {
                    let value = &row[*c];
                    match value.text() {
                        Some(t) => out.sym(&t),
                        None => {
                            return Err(StruqlError::eval(format!(
                                "link label variable `{v}` is bound to non-label value {value}"
                            )))
                        }
                    }
                }
            };
            let to_skolem = match &lp.to {
                TargetPlan::Skolem(p) => Some(p.resolve_existing(table, row, &mut args)?),
                _ => None,
            };
            let to: Value = match &lp.to {
                TargetPlan::Skolem(_) => Value::Node(to_skolem.expect("just resolved")),
                TargetPlan::Col(c) => row[*c].clone(),
                TargetPlan::Lit(v) => v.clone(),
                TargetPlan::Agg(_) => unreachable!("rejected above"),
            };
            if table.retract_edge(out, from, label, &to)? {
                stats.edges_removed += 1;
            }
            // Mirror the Skolem resolution reference the apply path took for
            // the target, then the one it took for the source.
            if let Some(t) = to_skolem {
                if table.release_node(out, t)? {
                    stats.nodes_removed += 1;
                }
            }
            if table.release_node(out, from)? {
                stats.nodes_removed += 1;
            }
        }

        for (coll_idx, cp) in coll_plans.iter().enumerate() {
            let skolem = match cp {
                TargetPlan::Skolem(p) => Some(p.resolve_existing(table, row, &mut args)?),
                _ => None,
            };
            let value: Value = match cp {
                TargetPlan::Skolem(_) => Value::Node(skolem.expect("just resolved")),
                TargetPlan::Col(c) => row[*c].clone(),
                TargetPlan::Lit(v) => v.clone(),
                TargetPlan::Agg(_) => unreachable!("rejected above"),
            };
            if table.retract_collect(out, collect_syms[coll_idx], &value)? {
                stats.collect_removed += 1;
            }
            if let Some(s) = skolem {
                if table.release_node(out, s)? {
                    stats.nodes_removed += 1;
                }
            }
        }

        for plan in &create_plans {
            let oid = plan.resolve_existing(table, row, &mut args)?;
            if table.release_node(out, oid)? {
                stats.nodes_removed += 1;
            }
        }
    }
    Ok(())
}

/// Computes an aggregate over a group's distinct values. `SUM`/`AVG` fold
/// the numeric members (integers and floats) and ignore the rest; `MIN`/
/// `MAX` use dynamic-coercion ordering, keeping the incumbent on
/// incomparable pairs. Returns `None` when the aggregate is undefined
/// (e.g. `AVG` of a group with no numeric values). Public so click-time
/// evaluation can aggregate with identical semantics.
pub fn aggregate(func: AggFunc, values: &FxHashSet<Value>) -> Option<Value> {
    match func {
        AggFunc::Count => Some(Value::Int(values.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            let mut count = 0usize;
            for v in values {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        count += 1;
                    }
                    Value::Float(f) => {
                        float_sum += f;
                        any_float = true;
                        count += 1;
                    }
                    _ => {}
                }
            }
            if func == AggFunc::Avg {
                if count == 0 {
                    return None;
                }
                return Some(Value::Float((int_sum as f64 + float_sum) / count as f64));
            }
            Some(if any_float {
                Value::Float(int_sum as f64 + float_sum)
            } else {
                Value::Int(int_sum)
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.coerced_cmp(b) {
                        Some(std::cmp::Ordering::Less) if func == AggFunc::Min => v,
                        Some(std::cmp::Ordering::Greater) if func == AggFunc::Max => v,
                        _ => b,
                    },
                });
            }
            best.cloned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use strudel_graph::graph::Universe;

    #[test]
    fn skolem_is_functional() {
        let mut g = Graph::standalone();
        let mut t = SkolemTable::new();
        let a1 = t.instantiate(&mut g, "Page", &[Value::Int(1)]);
        let a2 = t.instantiate(&mut g, "Page", &[Value::Int(1)]);
        let b = t.instantiate(&mut g, "Page", &[Value::Int(2)]);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(t.len(), 2);
        assert_eq!(g.node_name(a1).as_deref(), Some("Page(1)"));
    }

    #[test]
    fn distinct_functions_do_not_collide() {
        let mut g = Graph::standalone();
        let mut t = SkolemTable::new();
        let a = t.instantiate(&mut g, "YearPage", &[Value::Int(1997)]);
        let b = t.instantiate(&mut g, "CategoryPage", &[Value::Int(1997)]);
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_does_not_create() {
        let mut g = Graph::standalone();
        let mut t = SkolemTable::new();
        assert!(t.lookup("P", &[Value::Int(1)]).is_none());
        let oid = t.instantiate(&mut g, "P", &[Value::Int(1)]);
        assert_eq!(t.lookup("P", &[Value::Int(1)]), Some(oid));
    }

    #[test]
    fn edges_have_set_semantics() {
        let mut g = Graph::standalone();
        let mut t = SkolemTable::new();
        let a = t.instantiate(&mut g, "A", &[]);
        let l = g.sym("x");
        assert!(t.emit_edge(&mut g, a, l, Value::Int(1)).unwrap());
        assert!(!t.emit_edge(&mut g, a, l, Value::Int(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn linking_to_data_node_adopts_it() {
        let uni = Universe::new();
        let mut data = Graph::new(Arc::clone(&uni));
        let d = data.new_node(Some("article"));
        data.add_edge_str(d, "headline", "hi").unwrap();
        let mut site = Graph::new(Arc::clone(&uni));
        let mut t = SkolemTable::new();
        let page = t.instantiate(&mut site, "Page", &[]);
        let story = site.sym("Story");
        t.emit_edge(&mut site, page, story, Value::Node(d)).unwrap();
        assert!(site.contains_node(d));
        let headline = uni.interner().get("headline").unwrap();
        assert_eq!(site.reader().attr(d, headline), Some(&Value::str("hi")));
    }

    #[test]
    fn skolem_table_persists_across_graphs() {
        // Two "queries" (simulated by two apply passes) referencing the
        // same Skolem term share the node.
        let mut g = Graph::standalone();
        let mut t = SkolemTable::new();
        let first = t.instantiate(&mut g, "Root", &[]);
        let second = t.instantiate(&mut g, "Root", &[]);
        assert_eq!(first, second);
    }
}
