//! Built-in and external predicates.
//!
//! StruQL conditions may apply predicates to nodes or edges (§3):
//! `isPostScript(q)` tests the type of a value, and edge predicates such as
//! `isName` appear inside regular path expressions (`isName*` denotes "any
//! sequence of labels such that each satisfies the `isName` predicate").
//! The distinction between collection names and external predicates is made
//! at a *semantic* level: the analyzer consults this registry.

use std::fmt;
use std::sync::Arc;
use strudel_graph::fxhash::FxHashMap;
use strudel_graph::{FileKind, Value};

/// A predicate over values. Edge predicates receive the label as a
/// [`Value::Str`].
pub type PredicateFn = Arc<dyn Fn(&[&Value]) -> bool + Send + Sync>;

/// A registry of named predicates. [`PredicateRegistry::with_builtins`]
/// provides the type tests used throughout the paper; applications register
/// external predicates with [`PredicateRegistry::register`].
#[derive(Clone, Default)]
pub struct PredicateRegistry {
    preds: FxHashMap<String, (PredicateFn, usize)>,
}

impl PredicateRegistry {
    /// An empty registry (no names resolve; all bare identifiers in queries
    /// are treated as collections or arc variables).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with the standard built-ins:
    ///
    /// | name | arity | meaning |
    /// |---|---|---|
    /// | `isPostScript` | 1 | value is a PostScript file |
    /// | `isImageFile` | 1 | value is an image file |
    /// | `isTextFile` | 1 | value is a text file |
    /// | `isHtmlFile` | 1 | value is an HTML file |
    /// | `isFile` | 1 | value is any file |
    /// | `isInt` / `isFloat` / `isBool` / `isString` / `isUrl` | 1 | type tests |
    /// | `isNode` / `isAtomic` | 1 | internal node / atomic value |
    /// | `startsWith` | 2 | text of arg0 starts with text of arg1 |
    /// | `endsWith` | 2 | text of arg0 ends with text of arg1 |
    /// | `contains` | 2 | text of arg0 contains text of arg1 |
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        fn file_test(kind: FileKind) -> impl Fn(&[&Value]) -> bool {
            move |args| matches!(args[0], Value::File(k, _) if *k == kind)
        }
        r.register("isPostScript", 1, file_test(FileKind::PostScript));
        r.register("isImageFile", 1, file_test(FileKind::Image));
        r.register("isTextFile", 1, file_test(FileKind::Text));
        r.register("isHtmlFile", 1, file_test(FileKind::Html));
        r.register("isFile", 1, |args| matches!(args[0], Value::File(..)));
        r.register("isInt", 1, |args| matches!(args[0], Value::Int(_)));
        r.register("isFloat", 1, |args| matches!(args[0], Value::Float(_)));
        r.register("isBool", 1, |args| matches!(args[0], Value::Bool(_)));
        r.register("isString", 1, |args| matches!(args[0], Value::Str(_)));
        r.register("isUrl", 1, |args| matches!(args[0], Value::Url(_)));
        r.register("isNode", 1, |args| args[0].is_node());
        r.register("isAtomic", 1, |args| args[0].is_atomic());
        fn text_pair(args: &[&Value]) -> Option<(Arc<str>, Arc<str>)> {
            Some((args[0].text()?, args[1].text()?))
        }
        r.register("startsWith", 2, |args| {
            text_pair(args).is_some_and(|(a, b)| a.starts_with(&*b))
        });
        r.register("endsWith", 2, |args| {
            text_pair(args).is_some_and(|(a, b)| a.ends_with(&*b))
        });
        r.register("contains", 2, |args| {
            text_pair(args).is_some_and(|(a, b)| a.contains(&*b))
        });
        r
    }

    /// Registers (or replaces) a predicate under `name` with the given arity.
    pub fn register(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&[&Value]) -> bool + Send + Sync + 'static,
    ) {
        self.preds.insert(name.to_string(), (Arc::new(f), arity));
    }

    /// Whether `name` is a registered predicate.
    pub fn contains(&self, name: &str) -> bool {
        self.preds.contains_key(name)
    }

    /// The declared arity of `name`.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.preds.get(name).map(|(_, a)| *a)
    }

    /// Applies the predicate `name` to `args`. Returns `None` for an
    /// unknown name.
    pub fn apply(&self, name: &str, args: &[&Value]) -> Option<bool> {
        let (f, _) = self.preds.get(name)?;
        Some(f(args))
    }
}

impl fmt::Debug for PredicateRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<_> = self.preds.keys().collect();
        names.sort();
        f.debug_struct("PredicateRegistry")
            .field("names", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_test_file_kinds() {
        let r = PredicateRegistry::with_builtins();
        let ps = Value::file(FileKind::PostScript, "p.ps");
        let img = Value::file(FileKind::Image, "i.gif");
        assert_eq!(r.apply("isPostScript", &[&ps]), Some(true));
        assert_eq!(r.apply("isPostScript", &[&img]), Some(false));
        assert_eq!(r.apply("isImageFile", &[&img]), Some(true));
        assert_eq!(r.apply("isFile", &[&ps]), Some(true));
        assert_eq!(r.apply("isFile", &[&Value::Int(1)]), Some(false));
    }

    #[test]
    fn type_tests() {
        let r = PredicateRegistry::with_builtins();
        assert_eq!(r.apply("isInt", &[&Value::Int(3)]), Some(true));
        assert_eq!(r.apply("isString", &[&Value::str("x")]), Some(true));
        assert_eq!(r.apply("isNode", &[&Value::str("x")]), Some(false));
        assert_eq!(r.apply("isAtomic", &[&Value::str("x")]), Some(true));
    }

    #[test]
    fn string_predicates() {
        let r = PredicateRegistry::with_builtins();
        let hay = Value::str("semistructured");
        assert_eq!(
            r.apply("startsWith", &[&hay, &Value::str("semi")]),
            Some(true)
        );
        assert_eq!(
            r.apply("endsWith", &[&hay, &Value::str("ured")]),
            Some(true)
        );
        assert_eq!(
            r.apply("contains", &[&hay, &Value::str("struct")]),
            Some(true)
        );
        assert_eq!(r.apply("contains", &[&hay, &Value::Int(1)]), Some(false));
    }

    #[test]
    fn external_registration_overrides() {
        let mut r = PredicateRegistry::with_builtins();
        assert!(!r.contains("isSports"));
        r.register("isSports", 1, |args| {
            args[0].text().is_some_and(|t| t.contains("sports"))
        });
        assert!(r.contains("isSports"));
        assert_eq!(r.arity("isSports"), Some(1));
        assert_eq!(
            r.apply("isSports", &[&Value::str("sports news")]),
            Some(true)
        );
    }

    #[test]
    fn unknown_predicate_is_none() {
        let r = PredicateRegistry::with_builtins();
        assert_eq!(r.apply("nonexistent", &[&Value::Int(1)]), None);
        assert_eq!(r.arity("nonexistent"), None);
    }
}
