//! Compiled physical plans: the logical→physical layer between the
//! optimizer's condition ordering ([`crate::optimize`]) and the evaluator's
//! operators ([`crate::eval`]).
//!
//! The paper's cost-based optimizer "can enumerate plans that exploit
//! indexes on the data and the schema" (§2.4, \[FLO 97\]). Through PR 5 this
//! repository ordered conditions at plan time but re-made every *physical*
//! decision — semijoin vs hash probe vs scan vs reverse-index vs RPE
//! variant — inside `eval.rs` on every evaluation of every block. This
//! module compiles each conjunction once into an explicit [`PhysicalPlan`]
//! whose nodes name the concrete operator ([`PhysOp`], one variant per tag
//! of the PR 5 strategy catalog) and carry cardinality estimates from the
//! index statistics; the evaluator then executes the plan directly.
//!
//! Why the operator choice can be made statically: every dispatch decision
//! in the evaluator depends only on (a) which variables are bound when the
//! condition runs, (b) the shape of the condition's terms, and (c) whether
//! the graph is indexed. Boundness at each plan position is fully determined
//! by the start bindings and the conditions applied before it
//! ([`crate::optimize::vars_of`] is exactly the bound-after set), the term
//! shapes are static, and indexedness is part of the plan-cache stamp. So a
//! plan compiled once is valid for every evaluation of the same conjunction
//! from the same starting schema against the same graph state.
//!
//! [`PlanCache`] memoizes compiled plans keyed by a query fingerprint and
//! validated by [`CacheStamp::same_graph`] — graph identity and graph
//! revision, deliberately ignoring the universe revision: constructing
//! output nodes bumps the shared universe on every build, but plan validity
//! only depends on the *input* graph's edges, collections and indexedness,
//! all covered by the graph revision. Dynamic page expansion, incremental
//! delta rules and multi-block builds therefore stop re-planning the same
//! conjunctions.
//!
//! Adaptivity: when an executed node's observed rows-out diverges from its
//! estimate by more than a configurable factor, the evaluator calls
//! [`replan_suffix`] with multipliers *measured* on a sample of the live
//! bindings (see `eval.rs`). Re-planning with the same static cost model
//! would reproduce the same order — the point of the runtime feedback loop
//! is that sampled multipliers replace the estimates that were wrong.

use crate::ast::{CmpOp, Condition, PathStep, Rpe, Term};
use crate::optimize::{multiplier, pick_next, plan, vars_of, GraphStats, Optimizer};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use strudel_graph::fxhash::{FxHashMap, FxHashSet};
use strudel_graph::graph::CacheStamp;
use strudel_graph::Graph;

/// The concrete physical operator a plan node executes. One variant per
/// strategy tag of the PR 5 catalog — [`PhysOp::tag`] returns exactly the
/// string the profiler records, so plans, profiles and `/metrics` all speak
/// the same operator vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhysOp {
    /// Membership filter of a bound variable against a collection extent.
    CollectionSemijoin,
    /// Cross-join with a collection extent (or its complement, negated).
    CollectionScan,
    /// Constant membership test of a literal: keeps or empties the input.
    CollectionConst,
    /// `v = <bound>`: binds the unbound side, one row out per row in.
    CompareBind,
    /// Comparison filter (expanding any still-unbound variables first).
    CompareFilter,
    /// `v IN {…}` membership filter of a bound (or expanded) variable.
    InSemijoin,
    /// `v IN {…}` enumeration: binds `v` to each set element.
    InExpand,
    /// Built-in predicate filter (expanding unbound arguments first).
    PredicateFilter,
    /// Negated single-edge condition as an anti-semijoin.
    NegEdgeSemijoin,
    /// Arc-variable edge from a bound source: out-adjacency expansion.
    ArcForward,
    /// Arc-variable edge onto a bound target via the reverse index.
    ArcReverseIndex,
    /// Arc-variable edge onto a bound target via a one-shot probe table.
    ArcHashJoin,
    /// Arc-variable edge with both ends unbound: full edge scan.
    ArcScan,
    /// Negated single-label path as an anti-semijoin.
    NegLabelSemijoin,
    /// Single-label path from a bound source binding a fresh target.
    LabelForward,
    /// Single-label path between bound endpoints: adjacency semijoin.
    LabelSemijoin,
    /// Single-label path onto a bound target via the reverse index.
    LabelReverseIndex,
    /// Single-label path onto a bound target via the materialized
    /// reverse-adjacency map (unindexed graphs).
    LabelHashJoin,
    /// Single-label path with both ends unbound: label-pair scan.
    LabelScan,
    /// Negated regular path as an anti-semijoin over reachability sets.
    NegRpeSemijoin,
    /// Regular path from a bound source: memoized forward BFS.
    RpeForward,
    /// Regular path onto a bound target: reversed automaton backward BFS.
    RpeReverse,
    /// Regular path with both ends unbound: per-node reachability scan.
    RpeScan,
    /// Unresolved bare path step — only reachable on unanalyzed queries;
    /// executing it reports the analysis error.
    BareEdge,
}

impl PhysOp {
    /// The strategy tag the profiler records for this operator.
    pub fn tag(self) -> &'static str {
        match self {
            PhysOp::CollectionSemijoin => "collection-semijoin",
            PhysOp::CollectionScan => "collection-scan",
            PhysOp::CollectionConst => "collection-const",
            PhysOp::CompareBind => "compare-bind",
            PhysOp::CompareFilter => "compare-filter",
            PhysOp::InSemijoin => "in-semijoin",
            PhysOp::InExpand => "in-expand",
            PhysOp::PredicateFilter => "predicate-filter",
            PhysOp::NegEdgeSemijoin => "neg-edge-semijoin",
            PhysOp::ArcForward => "arc-forward",
            PhysOp::ArcReverseIndex => "arc-reverse-index",
            PhysOp::ArcHashJoin => "arc-hash-join",
            PhysOp::ArcScan => "arc-scan",
            PhysOp::NegLabelSemijoin => "neg-label-semijoin",
            PhysOp::LabelForward => "label-forward",
            PhysOp::LabelSemijoin => "label-semijoin",
            PhysOp::LabelReverseIndex => "label-reverse-index",
            PhysOp::LabelHashJoin => "label-hash-join",
            PhysOp::LabelScan => "label-scan",
            PhysOp::NegRpeSemijoin => "neg-rpe-semijoin",
            PhysOp::RpeForward => "rpe-forward",
            PhysOp::RpeReverse => "rpe-reverse",
            PhysOp::RpeScan => "rpe-scan",
            PhysOp::BareEdge => "bare-edge",
        }
    }
}

/// Chooses the physical operator for `cond` given which variables are bound
/// and whether the graph is indexed. This is THE operator-selection function:
/// the evaluator's `apply` calls it with runtime boundness, the compiler
/// calls it with statically tracked boundness, and the two agree because
/// static tracking mirrors the runtime schema exactly (see module docs).
pub fn choose_op(cond: &Condition, bound: &dyn Fn(&str) -> bool, indexed: bool) -> PhysOp {
    // Non-variable terms count as "bound": literals are constants, and
    // Skolem/aggregate terms fail inside the operator with a typed error —
    // the same branch the interpreted dispatch took.
    let term_bound = |t: &Term| match t {
        Term::Var(v) => bound(v),
        _ => true,
    };
    match cond {
        Condition::Collection { arg, .. } => match arg {
            Term::Var(v) if bound(v) => PhysOp::CollectionSemijoin,
            Term::Var(_) => PhysOp::CollectionScan,
            _ => PhysOp::CollectionConst,
        },
        Condition::Compare { lhs, op, rhs } => {
            if *op == CmpOp::Eq && (term_bound(lhs) ^ term_bound(rhs)) {
                PhysOp::CompareBind
            } else {
                PhysOp::CompareFilter
            }
        }
        Condition::In { var, negated, .. } => {
            // A negated `IN` over an unbound variable expands the active
            // domain and then filters — the semijoin with a built-in expand.
            if bound(var) || *negated {
                PhysOp::InSemijoin
            } else {
                PhysOp::InExpand
            }
        }
        Condition::Predicate { .. } => PhysOp::PredicateFilter,
        Condition::Edge {
            from,
            step,
            to,
            negated,
        } => match step {
            PathStep::ArcVar(_) => {
                if *negated {
                    PhysOp::NegEdgeSemijoin
                } else if term_bound(from) {
                    PhysOp::ArcForward
                } else if term_bound(to) && indexed {
                    PhysOp::ArcReverseIndex
                } else if matches!(to, Term::Var(v) if bound(v)) {
                    PhysOp::ArcHashJoin
                } else {
                    PhysOp::ArcScan
                }
            }
            PathStep::Rpe(Rpe::Label(_)) => {
                if *negated {
                    PhysOp::NegLabelSemijoin
                } else if term_bound(from) {
                    match to {
                        Term::Var(v) if !bound(v) => PhysOp::LabelForward,
                        _ => PhysOp::LabelSemijoin,
                    }
                } else if term_bound(to) {
                    if indexed {
                        PhysOp::LabelReverseIndex
                    } else {
                        PhysOp::LabelHashJoin
                    }
                } else {
                    PhysOp::LabelScan
                }
            }
            PathStep::Rpe(_) => {
                if *negated {
                    PhysOp::NegRpeSemijoin
                } else if term_bound(from) {
                    PhysOp::RpeForward
                } else if term_bound(to) {
                    PhysOp::RpeReverse
                } else {
                    PhysOp::RpeScan
                }
            }
            PathStep::Bare(_) => PhysOp::BareEdge,
        },
    }
}

/// One node of a compiled plan: which condition to run, with which physical
/// operator, and what the cost model expects it to produce.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// Index into the governing condition slice.
    pub cond: usize,
    /// The physical operator chosen at compile time.
    pub op: PhysOp,
    /// Estimated result multiplier (rows out per row in).
    pub est_mult: f64,
    /// Estimated cumulative rows after this node, from a one-row start.
    pub est_rows: f64,
}

/// A compiled physical plan for one conjunction of conditions.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// Nodes in execution order.
    pub nodes: Vec<PlanNode>,
    /// Estimated total intermediate rows.
    pub est_cost: f64,
    /// The optimizer that ordered the conditions.
    pub optimizer: Optimizer,
    /// Whether the cost-based planner fell back to the greedy heuristic
    /// (block exceeded `DP_LIMIT` conditions).
    pub dp_fallback: bool,
}

impl PhysicalPlan {
    /// Compiles `conds` into a physical plan: orders them with the chosen
    /// optimizer, then fixes each node's operator from the statically
    /// tracked bound-variable set and annotates it with the cost model's
    /// cardinality estimates.
    pub fn compile(
        conds: &[Condition],
        bound: &FxHashSet<&str>,
        graph: &Graph,
        optimizer: Optimizer,
    ) -> PhysicalPlan {
        let p = plan(conds, bound, graph, optimizer);
        let indexed = graph.is_indexed();
        let mut b: FxHashSet<&str> = bound.clone();
        let mut rows = 1.0f64;
        let mut nodes = Vec::with_capacity(p.order.len());
        for (k, &i) in p.order.iter().enumerate() {
            let op = choose_op(&conds[i], &|v| b.contains(v), indexed);
            rows *= p.mults[k];
            nodes.push(PlanNode {
                cond: i,
                op,
                est_mult: p.mults[k],
                est_rows: rows,
            });
            for v in vars_of(&conds[i]) {
                b.insert(v);
            }
        }
        PhysicalPlan {
            nodes,
            est_cost: p.est_cost,
            optimizer,
            dp_fallback: p.dp_fallback,
        }
    }

    /// Renders the plan tree, one node per line with its physical operator
    /// and estimated rows.
    pub fn describe(&self, conds: &[Condition]) -> String {
        self.render(conds, &[])
    }

    /// Like [`PhysicalPlan::describe`], additionally printing observed rows
    /// for the nodes `observed` covers (parallel to `nodes`; the evaluator
    /// records them when profiling).
    pub fn render(&self, conds: &[Condition], observed: &[Option<u64>]) -> String {
        let mut s = String::new();
        for (rank, node) in self.nodes.iter().enumerate() {
            let _ = write!(
                s,
                "  {rank}. [{}] {}  est {:.1} rows",
                node.op.tag(),
                conds[node.cond],
                node.est_rows
            );
            if let Some(o) = observed.get(rank).copied().flatten() {
                let _ = write!(s, ", obs {o} rows");
            }
            s.push('\n');
        }
        let _ = writeln!(
            s,
            "  est. cost: {:.1} ({}{})",
            self.est_cost,
            self.optimizer.name(),
            if self.dp_fallback {
                ", dp-fallback to greedy"
            } else {
                ""
            }
        );
        s
    }
}

/// Re-plans the remaining suffix of a running plan using *measured* result
/// multipliers where available (`measured` maps condition index → observed
/// multiplier from sampling) and static estimates elsewhere. The greedy
/// reorder respects the same active-domain eligibility rules as the
/// planners, so any order it emits is result-equivalent.
pub(crate) fn replan_suffix(
    conds: &[Condition],
    remaining: &[usize],
    bound: &FxHashSet<&str>,
    graph: &Graph,
    rows_now: f64,
    measured: &FxHashMap<usize, f64>,
) -> Vec<PlanNode> {
    let stats = GraphStats::of(graph);
    let indexed = graph.is_indexed();
    let mut bound: FxHashSet<&str> = bound.clone();
    let mut remaining: Vec<usize> = remaining.to_vec();
    let mut nodes = Vec::with_capacity(remaining.len());
    let mut rows = rows_now.max(1.0);
    while !remaining.is_empty() {
        let est = |i: usize, bound: &FxHashSet<&str>| {
            measured
                .get(&i)
                .copied()
                .unwrap_or_else(|| multiplier(&conds[i], bound, graph, &stats).0)
        };
        let i = pick_next(conds, &remaining, &bound, |i| est(i, &bound));
        remaining.retain(|&j| j != i);
        let m = est(i, &bound);
        let op = choose_op(&conds[i], &|v| bound.contains(v), indexed);
        rows *= m;
        nodes.push(PlanNode {
            cond: i,
            op,
            est_mult: m,
            est_rows: rows,
        });
        for v in vars_of(&conds[i]) {
            bound.insert(v);
        }
    }
    nodes
}

/// A snapshot of [`PlanCache`] counters.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Evaluations that reused a cached plan.
    pub hits: u64,
    /// Fingerprints planned for the first time.
    pub misses: u64,
    /// Cached plans discarded because the graph changed (stamp mismatch).
    pub invalidations: u64,
}

/// A memo of compiled plans keyed by query fingerprint and validated against
/// the graph's cache stamp. Shared through `EvalOptions` (cloning the
/// options shares the cache), so dynamic page expansion, incremental delta
/// rules, and repeated multi-block builds stop re-planning identical
/// conjunctions. Thread-safe; the map lock is never held while compiling.
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<FxHashMap<String, CachedPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

struct CachedPlan {
    stamp: CacheStamp,
    plan: Arc<PhysicalPlan>,
}

impl PlanCache {
    fn lock(&self) -> MutexGuard<'_, FxHashMap<String, CachedPlan>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Hit/miss/invalidation counters over the cache's lifetime.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Drops all cached plans (counters are kept — they describe lifetime
    /// behaviour, like the path cache's).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Number of currently cached plans.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache currently holds no plans.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The cache key for a conjunction: optimizer, start schema (sorted, so
    /// hash-set iteration order cannot split identical queries), and the
    /// conditions in written order. Graph state is *not* part of the key —
    /// it is the validation stamp, so a mutated graph replaces the entry
    /// instead of growing the map.
    pub fn fingerprint(
        conds: &[Condition],
        bound: &FxHashSet<&str>,
        optimizer: Optimizer,
    ) -> String {
        let mut key = String::from(optimizer.name());
        let mut bv: Vec<&str> = bound.iter().copied().collect();
        bv.sort_unstable();
        for v in bv {
            key.push('\u{1}');
            key.push_str(v);
        }
        key.push('\u{2}');
        for c in conds {
            let _ = write!(key, "\u{1}{c}");
        }
        key
    }

    /// The compiled plan for this conjunction against this graph state:
    /// from the cache when the stored stamp still matches
    /// ([`CacheStamp::same_graph`] — graph id and graph revision; universe
    /// churn from constructing output does not invalidate plans), compiled
    /// and inserted otherwise.
    pub fn get_or_compile(
        &self,
        conds: &[Condition],
        bound: &FxHashSet<&str>,
        graph: &Graph,
        optimizer: Optimizer,
    ) -> Arc<PhysicalPlan> {
        let key = Self::fingerprint(conds, bound, optimizer);
        let stamp = graph.cache_stamp();
        let stale = {
            let map = self.lock();
            match map.get(&key) {
                Some(c) if c.stamp.same_graph(&stamp) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&c.plan);
                }
                Some(_) => true,
                None => false,
            }
        };
        if stale {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let plan = Arc::new(PhysicalPlan::compile(conds, bound, graph, optimizer));
        self.lock().insert(
            key,
            CachedPlan {
                stamp,
                plan: Arc::clone(&plan),
            },
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use strudel_graph::Value;

    fn graph() -> Graph {
        let mut g = Graph::standalone();
        for i in 0..20 {
            let n = g.new_node(None);
            g.add_to_collection_str("Big", Value::Node(n));
            g.add_edge_str(n, "k", i as i64).unwrap();
            if i < 2 {
                g.add_to_collection_str("Small", Value::Node(n));
            }
        }
        g
    }

    fn conds(src: &str) -> Vec<Condition> {
        let q = parse_query(src).unwrap();
        let a =
            crate::analyze::analyze(&q, &crate::pred::PredicateRegistry::with_builtins()).unwrap();
        a.query.root.where_.clone()
    }

    #[test]
    fn compile_fixes_operators_and_estimates() {
        let g = graph();
        let cs = conds(r#"WHERE Small(x), x -> "k" -> v COLLECT Out(x)"#);
        let p = PhysicalPlan::compile(&cs, &FxHashSet::default(), &g, Optimizer::CostBased);
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.nodes[0].op, PhysOp::CollectionScan);
        assert_eq!(p.nodes[1].op, PhysOp::LabelForward);
        assert!(p.nodes[0].est_rows > 0.0);
        assert!((p.nodes[1].est_rows - p.nodes[0].est_rows * p.nodes[1].est_mult).abs() < 1e-9);
        let desc = p.describe(&cs);
        assert!(desc.contains("collection-scan"), "{desc}");
        assert!(desc.contains("est. cost"), "{desc}");
    }

    #[test]
    fn choose_op_tracks_boundness_and_indexing() {
        let cs = conds(r#"WHERE x -> "k" -> v COLLECT Out(x)"#);
        let unbound = |_: &str| false;
        let all_bound = |_: &str| true;
        assert_eq!(choose_op(&cs[0], &unbound, true), PhysOp::LabelScan);
        assert_eq!(choose_op(&cs[0], &all_bound, true), PhysOp::LabelSemijoin);
        let only_v = |s: &str| s == "v";
        assert_eq!(choose_op(&cs[0], &only_v, true), PhysOp::LabelReverseIndex);
        assert_eq!(choose_op(&cs[0], &only_v, false), PhysOp::LabelHashJoin);
        let only_x = |s: &str| s == "x";
        assert_eq!(choose_op(&cs[0], &only_x, true), PhysOp::LabelForward);
    }

    #[test]
    fn plan_cache_hits_then_invalidates_on_mutation() {
        let mut g = graph();
        let cs = conds(r#"WHERE Big(x) COLLECT Out(x)"#);
        let cache = PlanCache::default();
        let bound = FxHashSet::default();
        let p1 = cache.get_or_compile(&cs, &bound, &g, Optimizer::CostBased);
        let p2 = cache.get_or_compile(&cs, &bound, &g, Optimizer::CostBased);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0
            }
        );
        let n = g.nodes()[0];
        g.add_edge_str(n, "extra", 1i64).unwrap();
        let _ = cache.get_or_compile(&cs, &bound, &g, Optimizer::CostBased);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.len(), 1, "stale entry replaced, not duplicated");
    }

    #[test]
    fn fingerprint_separates_optimizer_bound_set_and_conditions() {
        let cs = conds(r#"WHERE Big(x) COLLECT Out(x)"#);
        let empty = FxHashSet::default();
        let mut with_x = FxHashSet::default();
        with_x.insert("x");
        let a = PlanCache::fingerprint(&cs, &empty, Optimizer::CostBased);
        let b = PlanCache::fingerprint(&cs, &with_x, Optimizer::CostBased);
        let c = PlanCache::fingerprint(&cs, &empty, Optimizer::Naive);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, PlanCache::fingerprint(&cs, &empty, Optimizer::CostBased));
    }
}
