//! # strudel-struql
//!
//! **StruQL** (*Site TRansformation Und Query Language*, §3 of the STRUDEL
//! paper) — the declarative language used both at the mediation level (to
//! integrate source graphs into a data graph) and at the site-definition
//! level (to construct site graphs from a data graph).
//!
//! A query of the core fragment has the form
//!
//! ```text
//! INPUT G
//!   WHERE   C1, …, Ck
//!   CREATE  N1, …, Nn
//!   LINK    L1, …, Lp
//!   COLLECT G1, …, Gq
//!   { nested block } { nested block }
//! OUTPUT R
//! ```
//!
//! and its semantics is described in two stages: the **query stage** depends
//! only on the `WHERE` clauses and produces all bindings of node and arc
//! variables that satisfy every condition (a relation with one attribute per
//! variable); the **construction stage** builds a new graph from that
//! relation using Skolem functions (`CREATE`), edge additions (`LINK`), and
//! collections (`COLLECT`). Nested blocks conjoin their `WHERE` clause with
//! every ancestor's.
//!
//! Conditions are collection-membership tests (`Publications(x)`), regular
//! path expressions (`x -> "Paper" -> y`, `p -> * -> q`), arc variables
//! (`x -> l -> v`), comparisons (`l = "year"`), label-set membership
//! (`l in {"Paper","TechReport"}`), and built-in or external predicates
//! (`isPostScript(q)`) — distinguished from collections *semantically*, not
//! syntactically, exactly as in the paper.
//!
//! The crate contains a full pipeline: [`lex`]/[`parse`] → [`analyze`]
//! (safety and range-restriction checks) → [`optimize`] (naive, heuristic,
//! and cost-based condition orderings over the repository's indexes, per
//! §2.4 and \[FLO 97\]) → [`eval`] (the query stage) → [`construct`] (the
//! construction stage).
//!
//! ```
//! use strudel_graph::ddl;
//! use strudel_struql::{parse_query, EvalOptions};
//!
//! let data = ddl::parse(r#"
//!     object p1 in Publications { title "UnQL" year 1996 }
//!     object p2 in Publications { title "Lorel" year 1996 }
//! "#).unwrap();
//! let q = parse_query(r#"
//!     WHERE Publications(x), x -> "title" -> t
//!     CREATE Page(x)
//!     LINK   Page(x) -> "Title" -> t
//!     COLLECT Pages(Page(x))
//! "#).unwrap();
//! let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
//! assert_eq!(out.graph.collection_str("Pages").unwrap().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod binding;
pub mod construct;
pub mod error;
pub mod eval;
pub mod lex;
pub mod optimize;
pub mod parse;
pub mod plan;
pub mod pred;
pub mod rpe;

pub use ast::{Block, BlockId, Condition, LabelTerm, Query, Rpe, SkolemTerm, Term};
pub use binding::Bindings;
pub use construct::SkolemTable;
pub use error::{Result, StruqlError};
pub use eval::{
    evaluate_conditions, run_on_database, EvalOptions, EvalOutput, EvalStats, PathCache,
    PathCacheStats,
};
pub use optimize::{planner_dp_fallbacks, Optimizer};
pub use parse::parse_query;
pub use plan::{PhysOp, PhysicalPlan, PlanCache, PlanCacheStats};
pub use pred::PredicateRegistry;
