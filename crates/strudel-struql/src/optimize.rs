//! Condition ordering: StruQL's query optimizer.
//!
//! The paper describes two generations of optimizer (§2.4): "In STRUDEL's
//! first implementation, we built a simple heuristic-based optimizer. Later,
//! we developed a more comprehensive cost-based optimization algorithm
//! \[FLO 97\]. The new optimizer can enumerate plans that exploit indexes on
//! the data and the schema in order to choose the best plan."
//!
//! We implement all three strategies, selectable per evaluation:
//!
//! * [`Optimizer::Naive`] — evaluate conditions in the order written.
//! * [`Optimizer::Heuristic`] — greedy: all-bound filters first, then the
//!   binder with the smallest estimated fan-out.
//! * [`Optimizer::CostBased`] — exhaustive dynamic programming over
//!   condition subsets (up to [`DP_LIMIT`] conditions, falling back to the
//!   heuristic beyond that), minimizing the estimated sum of intermediate
//!   result sizes.
//!
//! Cardinality estimates come from the repository's indexes when present
//! (collection extents, per-label edge counts); without indexes the model
//! degrades to coarse whole-graph statistics — which is exactly the
//! index-ablation experiment `A-OPT` measures.

use crate::ast::{CmpOp, Condition, PathStep, Rpe, Term};
use std::fmt::Write as _;
use strudel_graph::fxhash::FxHashSet;
use strudel_graph::Graph;
use strudel_obs::Counter;

/// How many times the cost-based planner has fallen back to the greedy
/// heuristic because a block had more than [`DP_LIMIT`] conditions. The
/// fallback used to be silent; it is surfaced in `/stats`, `/metrics` and
/// `explain` so oversized blocks are visible in production.
static PLANNER_DP_FALLBACKS: Counter = Counter::new();

/// Process-lifetime count of silent DP→greedy planner fallbacks.
pub fn planner_dp_fallbacks() -> u64 {
    PLANNER_DP_FALLBACKS.get()
}

/// Which plan-selection strategy to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Optimizer {
    /// Conditions evaluated in the order written.
    Naive,
    /// Greedy bound-first / smallest-fan-out ordering (STRUDEL's first
    /// implementation).
    Heuristic,
    /// Subset dynamic programming minimizing estimated intermediate sizes
    /// (the \[FLO 97\] cost-based optimizer).
    #[default]
    CostBased,
}

impl Optimizer {
    /// Short name, used in plan renderings and plan-cache fingerprints.
    pub fn name(self) -> &'static str {
        match self {
            Optimizer::Naive => "naive",
            Optimizer::Heuristic => "heuristic",
            Optimizer::CostBased => "cost-based",
        }
    }
}

/// Beyond this many conditions the cost-based optimizer falls back to the
/// heuristic (the DP is exponential in the number of conditions).
pub const DP_LIMIT: usize = 12;

/// Summary statistics the cost model reads from a graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphStats {
    /// Number of member nodes.
    pub nodes: f64,
    /// Number of edges.
    pub edges: f64,
    /// Number of distinct labels (0 when unknown).
    pub labels: f64,
    /// Whether indexes are available.
    pub indexed: bool,
}

impl GraphStats {
    /// Reads statistics from a graph.
    pub fn of(graph: &Graph) -> GraphStats {
        GraphStats {
            nodes: graph.node_count() as f64,
            edges: graph.edge_count() as f64,
            labels: graph.index().map(|i| i.label_count() as f64).unwrap_or(0.0),
            indexed: graph.is_indexed(),
        }
    }

    fn avg_degree(&self) -> f64 {
        if self.nodes > 0.0 {
            self.edges / self.nodes
        } else {
            0.0
        }
    }

    /// Per-label degree statistics from the index, when available. These
    /// replace the uniform [`GraphStats::avg_degree`] assumption for
    /// single-label path steps: fan-out is averaged over the nodes that
    /// actually carry the label, and fan-in over the values the label
    /// actually reaches — so a probe into a low-cardinality hub target
    /// (five `section` values shared by hundreds of articles) is costed at
    /// its real fan-in instead of an optimistic whole-graph average.
    pub fn label_degrees(graph: &Graph, label: &str) -> Option<LabelDegrees> {
        let sym = graph.universe().interner().get(label)?;
        let idx = graph.index()?;
        let card = idx.label_cardinality(sym) as f64;
        let src = idx.label_distinct_sources(sym) as f64;
        let tgt = idx.label_distinct_targets(sym) as f64;
        if src <= 0.0 || tgt <= 0.0 {
            return None;
        }
        Some(LabelDegrees {
            cardinality: card,
            out_degree: card / src,
            fan_in: card / tgt,
        })
    }
}

/// Degree statistics of one label (see [`GraphStats::label_degrees`]).
#[derive(Clone, Copy, Debug)]
pub struct LabelDegrees {
    /// Number of edges carrying the label.
    pub cardinality: f64,
    /// Average out-degree among distinct sources of the label (under the
    /// containment assumption: a bound source is assumed to come from the
    /// label's source set, the usual case in join chains).
    pub out_degree: f64,
    /// Average fan-in among distinct targets of the label (the expected
    /// rows a reverse probe on a bound target returns).
    pub fan_in: f64,
}

/// Cardinality of a label's extension, if the index can tell us.
fn label_card(graph: &Graph, label: &str) -> Option<f64> {
    let sym = graph.universe().interner().get(label)?;
    graph.index().map(|i| i.label_cardinality(sym) as f64)
}

fn collection_card(graph: &Graph, name: &str) -> Option<f64> {
    graph.collection_str(name).map(|c| c.len() as f64)
}

/// The variables a condition can *bind* (positive occurrences). For every
/// condition kind these are exactly the variables bound in the relation
/// after the condition is applied (filters on bound variables add nothing;
/// negated and filter conditions bind their unbound variables too, via
/// active-domain expansion) — which is why static bound-set tracking during
/// plan compilation agrees with the evaluator's runtime `is_bound`.
pub(crate) fn vars_of(cond: &Condition) -> Vec<&str> {
    let mut out = Vec::new();
    match cond {
        Condition::Collection { arg, .. } => {
            if let Term::Var(v) = arg {
                out.push(v.as_str());
            }
        }
        Condition::Edge { from, step, to, .. } => {
            if let Term::Var(v) = from {
                out.push(v.as_str());
            }
            if let PathStep::ArcVar(v) = step {
                out.push(v.as_str());
            }
            if let Term::Var(v) = to {
                out.push(v.as_str());
            }
        }
        Condition::Predicate { args, .. } => {
            for a in args {
                if let Term::Var(v) = a {
                    out.push(v.as_str());
                }
            }
        }
        Condition::Compare { lhs, rhs, .. } => {
            for t in [lhs, rhs] {
                if let Term::Var(v) = t {
                    out.push(v.as_str());
                }
            }
        }
        Condition::In { var, .. } => out.push(var.as_str()),
    }
    out
}

fn rpe_has_star(rpe: &Rpe) -> bool {
    match rpe {
        Rpe::Star(_) | Rpe::Plus(_) => true,
        Rpe::Seq(a, b) | Rpe::Alt(a, b) => rpe_has_star(a) || rpe_has_star(b),
        Rpe::Opt(r) => rpe_has_star(r),
        _ => false,
    }
}

/// Estimated *result multiplier* of applying `cond` when `bound` variables
/// are already bound: < 1 for filters, the fan-out for binders. Also returns
/// a short access-method tag for plan explanations.
pub(crate) fn multiplier(
    cond: &Condition,
    bound: &FxHashSet<&str>,
    graph: &Graph,
    stats: &GraphStats,
) -> (f64, &'static str) {
    let is_bound = |t: &Term| match t {
        Term::Var(v) => bound.contains(v.as_str()),
        Term::Lit(_) => true,
        Term::Skolem(_) | Term::Agg(..) => false,
    };
    match cond {
        Condition::Collection { name, arg, negated } => {
            if is_bound(arg) {
                (if *negated { 0.9 } else { 0.5 }, "member-filter")
            } else if *negated {
                (stats.nodes.max(1.0), "active-domain")
            } else {
                (
                    collection_card(graph, name).unwrap_or(stats.nodes).max(1.0),
                    "coll-scan",
                )
            }
        }
        Condition::Edge {
            from,
            step,
            to,
            negated,
        } => {
            if *negated {
                let unbound = [is_bound(from), is_bound(to)]
                    .iter()
                    .filter(|b| !**b)
                    .count()
                    + usize::from(
                        matches!(step, PathStep::ArcVar(v) if !bound.contains(v.as_str())),
                    );
                return if unbound == 0 {
                    (0.9, "neg-edge-filter")
                } else {
                    (
                        stats.nodes.max(1.0).powi(unbound as i32),
                        "neg-active-domain",
                    )
                };
            }
            let fb = is_bound(from);
            let tb = is_bound(to);
            match step {
                PathStep::ArcVar(l) => {
                    let lb = bound.contains(l.as_str());
                    match (fb, tb) {
                        (true, true) => (if lb { 0.3 } else { 1.2 }, "edge-probe"),
                        (true, false) => (stats.avg_degree().max(1.0), "out-scan"),
                        (false, true) => {
                            if stats.indexed {
                                (stats.avg_degree().max(1.0), "rev-index")
                            } else {
                                // Probe table over edge targets, built once.
                                (stats.avg_degree().max(1.0), "hash-join")
                            }
                        }
                        (false, false) => (stats.edges.max(1.0), "cross-emit"),
                    }
                }
                PathStep::Rpe(Rpe::Label(l)) => {
                    let card = label_card(graph, l).unwrap_or(stats.edges);
                    let degrees = GraphStats::label_degrees(graph, l);
                    // Whole-graph fallback when the index can't supply
                    // per-label degree statistics.
                    let uniform = (card / stats.nodes.max(1.0)).max(0.5);
                    match (fb, tb) {
                        (true, true) => (0.3, "edge-probe"),
                        (true, false) => {
                            // Containment assumption: a bound source comes
                            // from the label's source set, so fan-out is the
                            // average out-degree among labeled sources.
                            let m = degrees.map(|d| d.out_degree).unwrap_or(uniform);
                            (m.max(0.5), "out-scan")
                        }
                        (false, true) => {
                            // Reverse probe: expected rows per bound target is
                            // the label's fan-in — card / distinct targets. A
                            // hub target (400 edges onto 5 section values)
                            // returns 80 rows per probe, not card/nodes ≈ 1.
                            let m = degrees.map(|d| d.fan_in).unwrap_or(uniform);
                            if stats.indexed {
                                (m.max(0.5), "rev-index")
                            } else {
                                // Cached materialized reverse adjacency.
                                (m.max(0.5), "hash-join")
                            }
                        }
                        (false, false) => {
                            if stats.indexed {
                                (card.max(1.0), "label-index")
                            } else {
                                (card.max(1.0), "cross-emit")
                            }
                        }
                    }
                }
                PathStep::Rpe(rpe) => {
                    let reach = if rpe_has_star(rpe) {
                        stats.nodes.max(1.0)
                    } else {
                        stats
                            .avg_degree()
                            .max(1.0)
                            .powi(3)
                            .min(stats.nodes.max(1.0))
                    };
                    match (fb, tb) {
                        (true, true) => (0.5, "path-probe"),
                        (true, false) => (reach, "path-traverse"),
                        (false, true) => {
                            if stats.indexed {
                                (reach, "rev-path-traverse")
                            } else {
                                // Memoized backward traversal over the cached
                                // materialized reverse adjacency.
                                (reach * 1.5, "rev-path-hash")
                            }
                        }
                        (false, false) => (stats.nodes.max(1.0) * reach, "path-scan"),
                    }
                }
                PathStep::Bare(_) => (stats.edges.max(1.0), "edge-scan"),
            }
        }
        Condition::Predicate { args, negated, .. } if args.iter().all(is_bound) => {
            (if *negated { 0.7 } else { 0.5 }, "pred-filter")
        }
        Condition::Predicate { args, .. } => {
            let unbound = args.iter().filter(|a| !is_bound(a)).count();
            (stats.nodes.max(1.0).powi(unbound as i32), "active-domain")
        }
        Condition::Compare { lhs, op, rhs } => {
            let (lb, rb) = (is_bound(lhs), is_bound(rhs));
            match (lb, rb) {
                (true, true) => (if *op == CmpOp::Eq { 0.1 } else { 0.4 }, "cmp-filter"),
                // `v = <bound>` is an assignment: one row out per row in.
                (false, true) | (true, false) if *op == CmpOp::Eq => (1.0, "assign"),
                _ => (stats.nodes.max(1.0), "active-domain"),
            }
        }
        Condition::In { var, set, negated } => {
            if bound.contains(var.as_str()) {
                (
                    if *negated {
                        0.8
                    } else {
                        (set.len() as f64 / stats.labels.max(set.len() as f64)).min(0.8)
                    },
                    "in-filter",
                )
            } else if *negated {
                (stats.labels.max(stats.nodes).max(1.0), "active-domain")
            } else {
                (set.len() as f64, "in-enum")
            }
        }
    }
}

/// Variables `cond` would have to enumerate over the *active domain* if it
/// were applied while they are unbound. Active-domain enumeration is only
/// correct when no other condition can bind the variable exactly (the
/// conjunction is order-independent otherwise), so the planners refuse to
/// schedule such a condition while a positive binder for the variable
/// remains — see [`eligible`].
fn expansion_vars<'c>(cond: &'c Condition, bound: &FxHashSet<&str>) -> Vec<&'c str> {
    let unbound = |t: &'c Term| match t {
        Term::Var(v) if !bound.contains(v.as_str()) => Some(v.as_str()),
        _ => None,
    };
    match cond {
        Condition::Collection {
            arg, negated: true, ..
        } => unbound(arg).into_iter().collect(),
        Condition::Collection { .. } => vec![],
        Condition::Edge {
            from,
            step,
            to,
            negated: true,
        } => {
            let mut out: Vec<&str> = [unbound(from), unbound(to)].into_iter().flatten().collect();
            if let PathStep::ArcVar(v) = step {
                if !bound.contains(v.as_str()) {
                    out.push(v);
                }
            }
            out
        }
        Condition::Edge {
            from,
            step,
            to,
            negated: false,
        } => {
            // A positive edge enumerates sources over member nodes only when
            // both ends are unbound. That is exact unless the path can be
            // empty (a nullable RPE admits atomic sources), in which case a
            // remaining binder for `from` must run first.
            let both_unbound = unbound(from).is_some()
                && match to {
                    Term::Var(v) => !bound.contains(v.as_str()),
                    _ => false,
                };
            match step {
                PathStep::Rpe(rpe) if both_unbound && rpe.nullable() => {
                    unbound(from).into_iter().collect()
                }
                _ => vec![],
            }
        }
        Condition::Predicate { args, .. } => args.iter().filter_map(unbound).collect(),
        Condition::Compare { lhs, op, rhs } => {
            let l = unbound(lhs);
            let r = unbound(rhs);
            match (l, r) {
                (None, None) => vec![],
                // `v = <bound>` is an exact assignment.
                (Some(_), None) | (None, Some(_)) if *op == CmpOp::Eq => vec![],
                _ => [l, r].into_iter().flatten().collect(),
            }
        }
        Condition::In { var, negated, .. } => {
            if *negated && !bound.contains(var.as_str()) {
                vec![var.as_str()]
            } else {
                vec![]
            }
        }
    }
}

/// Variables a condition binds *exactly* when applied (positive binders).
fn binder_vars(cond: &Condition) -> Vec<&str> {
    match cond {
        Condition::Collection {
            arg,
            negated: false,
            ..
        } => arg.as_var().into_iter().collect(),
        Condition::Edge {
            from,
            step,
            to,
            negated: false,
        } => {
            let mut out: Vec<&str> = Vec::new();
            if let Term::Var(v) = from {
                out.push(v);
            }
            if let PathStep::ArcVar(v) = step {
                out.push(v);
            }
            if let Term::Var(v) = to {
                out.push(v);
            }
            out
        }
        Condition::In {
            var,
            negated: false,
            ..
        } => vec![var.as_str()],
        Condition::Compare {
            lhs,
            op: CmpOp::Eq,
            rhs,
        } => [lhs, rhs].into_iter().filter_map(Term::as_var).collect(),
        _ => vec![],
    }
}

/// Whether `cond` may be scheduled now: none of the variables it would
/// enumerate over the active domain can still be bound exactly by a
/// remaining condition.
pub(crate) fn eligible(
    cond: &Condition,
    bound: &FxHashSet<&str>,
    remaining: &[&Condition],
) -> bool {
    let exp = expansion_vars(cond, bound);
    if exp.is_empty() {
        return true;
    }
    !remaining.iter().any(|other| {
        !std::ptr::eq(*other, cond) && binder_vars(other).iter().any(|v| exp.contains(v))
    })
}

/// An ordered plan: conditions in execution order plus a human-readable
/// description (shown by `explain`).
#[derive(Clone, Debug)]
pub struct Plan {
    /// Indices into the original condition slice, in execution order.
    pub order: Vec<usize>,
    /// Access-method tags, parallel to `order`.
    pub methods: Vec<&'static str>,
    /// Estimated per-step result multipliers, parallel to `order` (the
    /// physical-plan compiler turns these into per-node row estimates).
    pub mults: Vec<f64>,
    /// Estimated total intermediate rows.
    pub est_cost: f64,
    /// Whether the cost-based planner fell back to the greedy heuristic
    /// because the block exceeded [`DP_LIMIT`] conditions.
    pub dp_fallback: bool,
}

impl Plan {
    /// Renders the plan as one line per condition.
    pub fn describe(&self, conditions: &[Condition]) -> String {
        let mut s = String::new();
        for (rank, (&i, method)) in self.order.iter().zip(&self.methods).enumerate() {
            let _ = writeln!(s, "  {rank}. [{method}] {}", conditions[i]);
        }
        let _ = writeln!(s, "  est. cost: {:.1}", self.est_cost);
        s
    }
}

/// Orders `conditions` for evaluation starting from the `bound` variables.
pub fn plan(
    conditions: &[Condition],
    bound: &FxHashSet<&str>,
    graph: &Graph,
    optimizer: Optimizer,
) -> Plan {
    match optimizer {
        Optimizer::Naive => plan_naive(conditions, bound, graph),
        Optimizer::Heuristic => plan_greedy(conditions, bound, graph),
        Optimizer::CostBased => {
            if conditions.len() <= DP_LIMIT {
                plan_dp(conditions, bound, graph)
            } else {
                PLANNER_DP_FALLBACKS.inc();
                let mut p = plan_greedy(conditions, bound, graph);
                p.dp_fallback = true;
                p
            }
        }
    }
}

/// Selects the next condition from `remaining` (indices into `conditions`):
/// the best according to `score` among eligible candidates, falling back to
/// the best overall if mutual waiting leaves none eligible.
pub(crate) fn pick_next(
    conditions: &[Condition],
    remaining: &[usize],
    bound: &FxHashSet<&str>,
    score: impl Fn(usize) -> f64,
) -> usize {
    let rem_refs: Vec<&Condition> = remaining.iter().map(|&i| &conditions[i]).collect();
    let candidates: Vec<usize> = remaining
        .iter()
        .copied()
        .filter(|&i| eligible(&conditions[i], bound, &rem_refs))
        .collect();
    let pool = if candidates.is_empty() {
        remaining
    } else {
        &candidates
    };
    *pool
        .iter()
        .min_by(|&&a, &&b| score(a).total_cmp(&score(b)))
        .expect("non-empty pool")
}

fn plan_naive(conditions: &[Condition], bound: &FxHashSet<&str>, graph: &Graph) -> Plan {
    let stats = GraphStats::of(graph);
    let mut bound: FxHashSet<&str> = bound.clone();
    let mut remaining: Vec<usize> = (0..conditions.len()).collect();
    let mut order = Vec::with_capacity(conditions.len());
    let mut methods = Vec::with_capacity(conditions.len());
    let mut mults = Vec::with_capacity(conditions.len());
    let mut rows = 1.0f64;
    let mut cost = 0.0f64;
    while !remaining.is_empty() {
        // Written order, but never schedule an active-domain expansion
        // before its binders (semantics, not optimization).
        let i = pick_next(conditions, &remaining, &bound, |i| i as f64);
        remaining.retain(|&j| j != i);
        let (m, method) = multiplier(&conditions[i], &bound, graph, &stats);
        rows *= m;
        cost += rows;
        for v in vars_of(&conditions[i]) {
            bound.insert(v);
        }
        order.push(i);
        methods.push(method);
        mults.push(m);
    }
    Plan {
        order,
        methods,
        mults,
        est_cost: cost,
        dp_fallback: false,
    }
}

fn plan_greedy(conditions: &[Condition], bound: &FxHashSet<&str>, graph: &Graph) -> Plan {
    let stats = GraphStats::of(graph);
    let mut bound: FxHashSet<&str> = bound.clone();
    let mut remaining: Vec<usize> = (0..conditions.len()).collect();
    let mut order = Vec::with_capacity(conditions.len());
    let mut methods = Vec::with_capacity(conditions.len());
    let mut mults = Vec::with_capacity(conditions.len());
    let mut rows = 1.0f64;
    let mut cost = 0.0f64;
    while !remaining.is_empty() {
        let i = pick_next(conditions, &remaining, &bound, |i| {
            multiplier(&conditions[i], &bound, graph, &stats).0
        });
        remaining.retain(|&j| j != i);
        let (m, method) = multiplier(&conditions[i], &bound, graph, &stats);
        rows *= m;
        cost += rows;
        for v in vars_of(&conditions[i]) {
            bound.insert(v);
        }
        order.push(i);
        methods.push(method);
        mults.push(m);
    }
    Plan {
        order,
        methods,
        mults,
        est_cost: cost,
        dp_fallback: false,
    }
}

fn plan_dp(conditions: &[Condition], initial_bound: &FxHashSet<&str>, graph: &Graph) -> Plan {
    let stats = GraphStats::of(graph);
    let n = conditions.len();
    if n == 0 {
        return Plan {
            order: vec![],
            methods: vec![],
            mults: vec![],
            est_cost: 0.0,
            dp_fallback: false,
        };
    }

    // Variable universe: map names to bits for fast bound-set tracking.
    let mut var_names: Vec<&str> = Vec::new();
    for c in conditions {
        for v in vars_of(c) {
            if !var_names.contains(&v) {
                var_names.push(v);
            }
        }
    }
    let var_bit = |v: &str| var_names.iter().position(|w| *w == v);
    let mut init_vars: u64 = 0;
    for v in initial_bound {
        if let Some(b) = var_bit(v) {
            init_vars |= 1 << b;
        }
    }
    let cond_vars: Vec<u64> = conditions
        .iter()
        .map(|c| {
            let mut m = 0u64;
            for v in vars_of(c) {
                if let Some(b) = var_bit(v) {
                    m |= 1 << b;
                }
            }
            m
        })
        .collect();

    // dp[mask] = (rows, total_cost, predecessor mask, last condition).
    let size = 1usize << n;
    let mut dp: Vec<Option<(f64, f64, usize, usize)>> = vec![None; size];
    dp[0] = Some((1.0, 0.0, 0, usize::MAX));

    // Bound-var set for a mask is derivable: init ∪ vars of chosen conds.
    let mask_vars = |mask: usize| -> u64 {
        let mut v = init_vars;
        for (i, cv) in cond_vars.iter().enumerate() {
            if mask & (1 << i) != 0 {
                v |= cv;
            }
        }
        v
    };

    for mask in 0..size {
        let Some((rows, cost, _, _)) = dp[mask] else {
            continue;
        };
        let bound_bits = mask_vars(mask);
        let bound: FxHashSet<&str> = var_names
            .iter()
            .enumerate()
            .filter(|(b, _)| bound_bits & (1 << b) != 0)
            .map(|(_, v)| *v)
            .collect();
        let remaining: Vec<&Condition> = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| &conditions[i])
            .collect();
        let eligible_next: Vec<usize> = (0..n)
            .filter(|&i| mask & (1 << i) == 0 && eligible(&conditions[i], &bound, &remaining))
            .collect();
        // If mutual waiting leaves nothing eligible, fall back to all.
        let next_pool: Vec<usize> = if eligible_next.is_empty() {
            (0..n).filter(|&i| mask & (1 << i) == 0).collect()
        } else {
            eligible_next
        };
        for i in next_pool {
            let (m, _) = multiplier(&conditions[i], &bound, graph, &stats);
            let new_rows = rows * m;
            let new_cost = cost + new_rows;
            let next = mask | (1 << i);
            if dp[next].is_none_or(|(_, c, _, _)| new_cost < c) {
                dp[next] = Some((new_rows, new_cost, mask, i));
            }
        }
    }

    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut mask = size - 1;
    let final_cost = dp[mask].expect("full mask reachable").1;
    while mask != 0 {
        let (_, _, prev, last) = dp[mask].expect("on path");
        order.push(last);
        mask = prev;
    }
    order.reverse();

    // Recompute method tags and multipliers along the chosen order.
    let mut bound: FxHashSet<&str> = initial_bound.clone();
    let mut methods = Vec::with_capacity(n);
    let mut mults = Vec::with_capacity(n);
    for &i in &order {
        let (m, method) = multiplier(&conditions[i], &bound, graph, &stats);
        methods.push(method);
        mults.push(m);
        for v in vars_of(&conditions[i]) {
            bound.insert(v);
        }
    }
    Plan {
        order,
        methods,
        mults,
        est_cost: final_cost,
        dp_fallback: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use strudel_graph::Value;

    /// A graph where `Small` has 2 members and `Big` has 100, with `k`
    /// edges out of Big members.
    fn skewed_graph() -> Graph {
        let mut g = Graph::standalone();
        for i in 0..100 {
            let n = g.new_node(None);
            g.add_to_collection_str("Big", Value::Node(n));
            g.add_edge_str(n, "k", i as i64).unwrap();
            if i < 2 {
                g.add_to_collection_str("Small", Value::Node(n));
            }
        }
        g
    }

    fn conds(src: &str) -> Vec<Condition> {
        let q = parse_query(src).unwrap();
        let a =
            crate::analyze::analyze(&q, &crate::pred::PredicateRegistry::with_builtins()).unwrap();
        a.query.root.where_.clone()
    }

    #[test]
    fn heuristic_starts_from_small_collection() {
        let g = skewed_graph();
        // Written big-first; the optimizer should flip the order.
        let cs = conds(r#"WHERE Big(x), Small(x) COLLECT Out(x)"#);
        let p = plan(&cs, &FxHashSet::default(), &g, Optimizer::Heuristic);
        assert_eq!(p.order, vec![1, 0], "plan: {}", p.describe(&cs));
        let naive = plan(&cs, &FxHashSet::default(), &g, Optimizer::Naive);
        assert_eq!(naive.order, vec![0, 1]);
        assert!(p.est_cost < naive.est_cost);
    }

    #[test]
    fn filters_run_after_their_binders() {
        let g = skewed_graph();
        let cs = conds(r#"WHERE v = 3, Small(x), x -> "k" -> v COLLECT Out(x)"#);
        let p = plan(&cs, &FxHashSet::default(), &g, Optimizer::CostBased);
        // Whatever join order wins, the chosen plan must avoid active-domain
        // expansion (every condition runs with its inputs bound) and must
        // not cost more than naive left-to-right evaluation.
        assert!(
            !p.methods.iter().any(|m| m.contains("active-domain")),
            "plan: {}",
            p.describe(&cs)
        );
        let naive = plan(&cs, &FxHashSet::default(), &g, Optimizer::Naive);
        assert!(p.est_cost <= naive.est_cost, "plan: {}", p.describe(&cs));
    }

    #[test]
    fn cost_based_never_worse_than_naive() {
        let g = skewed_graph();
        for src in [
            r#"WHERE Big(x), Small(x), x -> "k" -> v, v = 3 COLLECT Out(x)"#,
            r#"WHERE x -> "k" -> v, Big(x) COLLECT Out(x)"#,
            r#"WHERE Big(x), x -> * -> y, Small(x) COLLECT Out(y)"#,
        ] {
            let cs = conds(src);
            let dp = plan(&cs, &FxHashSet::default(), &g, Optimizer::CostBased);
            let naive = plan(&cs, &FxHashSet::default(), &g, Optimizer::Naive);
            assert!(
                dp.est_cost <= naive.est_cost + 1e-9,
                "{src}: {} vs {}",
                dp.est_cost,
                naive.est_cost
            );
        }
    }

    #[test]
    fn unindexed_graph_changes_estimates() {
        let mut g = skewed_graph();
        let cs = conds(r#"WHERE x -> "k" -> v, v = 3 COLLECT Out(x)"#);
        let with = plan(&cs, &FxHashSet::default(), &g, Optimizer::CostBased);
        g.set_indexing(false);
        let without = plan(&cs, &FxHashSet::default(), &g, Optimizer::CostBased);
        // Both valid plans; the cost model must register the index loss.
        assert!(
            without.est_cost >= with.est_cost,
            "{} vs {}",
            without.est_cost,
            with.est_cost
        );
    }

    #[test]
    fn dp_handles_empty_and_unit() {
        let g = skewed_graph();
        let p = plan(&[], &FxHashSet::default(), &g, Optimizer::CostBased);
        assert!(p.order.is_empty());
        let cs = conds("WHERE Small(x) COLLECT Out(x)");
        let p = plan(&cs, &FxHashSet::default(), &g, Optimizer::CostBased);
        assert_eq!(p.order, vec![0]);
    }

    #[test]
    fn already_bound_vars_make_conditions_filters() {
        let g = skewed_graph();
        let cs = conds("WHERE Big(x) COLLECT Out(x)");
        let mut bound = FxHashSet::default();
        bound.insert("x");
        let p = plan(&cs, &bound, &g, Optimizer::CostBased);
        assert_eq!(p.methods, vec!["member-filter"]);
    }

    #[test]
    fn describe_mentions_methods() {
        let g = skewed_graph();
        let cs = conds(r#"WHERE Small(x), x -> "k" -> v COLLECT Out(x)"#);
        let p = plan(&cs, &FxHashSet::default(), &g, Optimizer::Heuristic);
        let desc = p.describe(&cs);
        assert!(desc.contains("coll-scan"), "{desc}");
        assert!(desc.contains("out-scan"), "{desc}");
    }
}
