//! StruQL error types.

use std::fmt;

/// Errors from parsing, analyzing, or evaluating StruQL.
#[derive(Debug, Clone, PartialEq)]
pub enum StruqlError {
    /// Lexical or syntactic error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A static semantic error (safety / range-restriction violation).
    Semantic(String),
    /// A runtime evaluation error.
    Eval(String),
    /// An error from the underlying graph repository.
    Graph(strudel_graph::GraphError),
}

impl StruqlError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        StruqlError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn semantic(message: impl Into<String>) -> Self {
        StruqlError::Semantic(message.into())
    }

    pub(crate) fn eval(message: impl Into<String>) -> Self {
        StruqlError::Eval(message.into())
    }
}

impl fmt::Display for StruqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StruqlError::Parse { line, message } => {
                write!(f, "StruQL parse error at line {line}: {message}")
            }
            StruqlError::Semantic(m) => write!(f, "StruQL semantic error: {m}"),
            StruqlError::Eval(m) => write!(f, "StruQL evaluation error: {m}"),
            StruqlError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for StruqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StruqlError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<strudel_graph::GraphError> for StruqlError {
    fn from(e: strudel_graph::GraphError) -> Self {
        StruqlError::Graph(e)
    }
}

/// Result alias for StruQL operations.
pub type Result<T> = std::result::Result<T, StruqlError>;
