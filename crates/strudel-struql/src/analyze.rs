//! Static semantic analysis.
//!
//! Three jobs, all mandated by §3 of the paper:
//!
//! 1. **Semantic name resolution.** "The distinction between collection
//!    names and external predicates is done at a semantic, not syntactic,
//!    level": a bare identifier in path position (`x -> l -> v`) is an arc
//!    variable unless it names a registered predicate; a one-argument
//!    application (`isPostScript(q)`) is a collection test unless it names a
//!    registered predicate.
//! 2. **Construction safety.** "Each node mentioned in `link` or `collect`
//!    is either mentioned in `create` or is a node in the data graph" and
//!    "edges can only be added from new nodes" (the parser already enforces
//!    the Skolem-source restriction syntactically; here we check that every
//!    Skolem term used anywhere is created somewhere and that its arguments
//!    are variables in scope).
//! 3. **Range-restriction diagnostics.** Variables that no positive
//!    condition binds fall back to active-domain enumeration at evaluation
//!    time (legal — "under the active-domain semantics, every StruQL query
//!    has a well-defined meaning" — but worth a warning, since the paper
//!    notes the semantics is sensitive to the choice of domain).

use crate::ast::*;
use crate::error::{Result, StruqlError};
use crate::pred::PredicateRegistry;
use strudel_graph::fxhash::FxHashSet;

/// The result of analysis: a resolved copy of the query plus diagnostics.
#[derive(Clone, Debug)]
pub struct Analyzed {
    /// The query with every [`PathStep::Bare`] and misclassified collection
    /// resolved.
    pub query: Query,
    /// Non-fatal diagnostics (active-domain fallbacks, shadowed names, …).
    pub warnings: Vec<String>,
}

/// Analyzes `query` against `preds`. Returns the resolved query or the
/// first semantic error.
pub fn analyze(query: &Query, preds: &PredicateRegistry) -> Result<Analyzed> {
    let mut resolved = query.clone();
    let mut warnings = Vec::new();

    // Pass 1: resolve names in every block.
    resolve_block(&mut resolved.root, preds)?;

    // Pass 2: gather all created Skolem functions (name → arity).
    let mut created: FxHashSet<(String, usize)> = FxHashSet::default();
    for block in resolved.blocks() {
        for sk in &block.creates {
            created.insert((sk.name.clone(), sk.args.len()));
        }
    }

    // Pass 3: per block, check scope and construction safety.
    check_block(
        &resolved.root,
        &mut Vec::new(),
        &created,
        preds,
        &mut warnings,
    )?;

    Ok(Analyzed {
        query: resolved,
        warnings,
    })
}

fn resolve_block(block: &mut Block, preds: &PredicateRegistry) -> Result<()> {
    for cond in &mut block.where_ {
        match cond {
            Condition::Collection { name, arg, negated } if preds.contains(name) => {
                let arity = preds.arity(name).expect("registered");
                if arity != 1 {
                    return Err(StruqlError::semantic(format!(
                        "predicate {name} has arity {arity}, applied to 1 argument"
                    )));
                }
                *cond = Condition::Predicate {
                    name: name.clone(),
                    args: vec![arg.clone()],
                    negated: *negated,
                };
            }
            Condition::Predicate { name, args, .. } => {
                if !preds.contains(name) {
                    return Err(StruqlError::semantic(format!(
                        "{name}({} arguments) is not a registered predicate (collections take one argument)",
                        args.len()
                    )));
                }
                let arity = preds.arity(name).expect("registered");
                if arity != args.len() {
                    return Err(StruqlError::semantic(format!(
                        "predicate {name} has arity {arity}, applied to {} arguments",
                        args.len()
                    )));
                }
            }
            Condition::Edge { step, .. } => {
                if let PathStep::Bare(name) = step {
                    *step = if preds.contains(name) {
                        PathStep::Rpe(Rpe::Pred(name.clone()))
                    } else {
                        PathStep::ArcVar(name.clone())
                    };
                }
                if let PathStep::Rpe(rpe) = step {
                    check_rpe_preds(rpe, preds)?;
                }
            }
            _ => {}
        }
    }
    for child in &mut block.children {
        resolve_block(child, preds)?;
    }
    Ok(())
}

fn check_rpe_preds(rpe: &Rpe, preds: &PredicateRegistry) -> Result<()> {
    match rpe {
        Rpe::Pred(p) => {
            if !preds.contains(p) {
                return Err(StruqlError::semantic(format!(
                    "unknown edge predicate {p:?} in regular path expression (arc variables cannot carry RPE operators)"
                )));
            }
            if preds.arity(p) != Some(1) {
                return Err(StruqlError::semantic(format!(
                    "edge predicate {p:?} must be unary"
                )));
            }
            Ok(())
        }
        Rpe::Seq(a, b) | Rpe::Alt(a, b) => {
            check_rpe_preds(a, preds)?;
            check_rpe_preds(b, preds)
        }
        Rpe::Star(r) | Rpe::Plus(r) | Rpe::Opt(r) => check_rpe_preds(r, preds),
        Rpe::Label(_) | Rpe::AnyLabel => Ok(()),
    }
}

/// Variables mentioned by the conditions of one block (any position).
fn block_vars(block: &Block, into: &mut FxHashSet<String>) {
    for cond in &block.where_ {
        match cond {
            Condition::Collection { arg, .. } => collect_term(arg, into),
            Condition::Edge { from, step, to, .. } => {
                collect_term(from, into);
                collect_term(to, into);
                if let PathStep::ArcVar(v) = step {
                    into.insert(v.clone());
                }
            }
            Condition::Predicate { args, .. } => {
                for a in args {
                    collect_term(a, into);
                }
            }
            Condition::Compare { lhs, rhs, .. } => {
                collect_term(lhs, into);
                collect_term(rhs, into);
            }
            Condition::In { var, .. } => {
                into.insert(var.clone());
            }
        }
    }
}

/// Variables *positively bound* by the conditions of one block: bound by a
/// collection test, a positive edge, an `in`-set, or an `=` with a literal.
fn positively_bound(block: &Block, into: &mut FxHashSet<String>) {
    for cond in &block.where_ {
        match cond {
            Condition::Collection {
                arg,
                negated: false,
                ..
            } => collect_term(arg, into),
            Condition::Edge {
                from,
                step,
                to,
                negated: false,
            } => {
                collect_term(from, into);
                collect_term(to, into);
                if let PathStep::ArcVar(v) = step {
                    into.insert(v.clone());
                }
            }
            Condition::In {
                var,
                negated: false,
                ..
            } => {
                into.insert(var.clone());
            }
            Condition::Compare {
                lhs,
                op: CmpOp::Eq,
                rhs,
            } => {
                if let (Term::Var(v), Term::Lit(_)) = (lhs, rhs) {
                    into.insert(v.clone());
                }
                if let (Term::Lit(_), Term::Var(v)) = (lhs, rhs) {
                    into.insert(v.clone());
                }
            }
            _ => {}
        }
    }
}

fn collect_term(t: &Term, into: &mut FxHashSet<String>) {
    if let Term::Var(v) = t {
        into.insert(v.clone());
    }
}

/// Rejects aggregate terms in WHERE positions (they are construction-only).
fn reject_agg_in_where(block: &Block) -> Result<()> {
    let check = |t: &Term| -> Result<()> {
        if let Term::Agg(f, v) = t {
            return Err(StruqlError::semantic(format!(
                "aggregate `{f}({v})` cannot appear in a WHERE clause"
            )));
        }
        Ok(())
    };
    for cond in &block.where_ {
        match cond {
            Condition::Collection { arg, .. } => check(arg)?,
            Condition::Edge { from, to, .. } => {
                check(from)?;
                check(to)?;
            }
            Condition::Predicate { args, .. } => {
                for a in args {
                    check(a)?;
                }
            }
            Condition::Compare { lhs, rhs, .. } => {
                check(lhs)?;
                check(rhs)?;
            }
            Condition::In { .. } => {}
        }
    }
    Ok(())
}

fn check_block(
    block: &Block,
    scope_stack: &mut Vec<(FxHashSet<String>, FxHashSet<String>)>,
    created: &FxHashSet<(String, usize)>,
    preds: &PredicateRegistry,
    warnings: &mut Vec<String>,
) -> Result<()> {
    reject_agg_in_where(block)?;
    let mut mentioned = FxHashSet::default();
    let mut positive = FxHashSet::default();
    for (m, p) in scope_stack.iter() {
        mentioned.extend(m.iter().cloned());
        positive.extend(p.iter().cloned());
    }
    block_vars(block, &mut mentioned);
    positively_bound(block, &mut positive);

    // Planner diagnostics: a block this wide forces the cost-based planner
    // off the exhaustive DP join-order search and onto the greedy ordering.
    if block.where_.len() > crate::optimize::DP_LIMIT {
        warnings.push(format!(
            "{}: WHERE has {} conditions (> {}); the cost-based planner will fall back to greedy join ordering",
            block.id,
            block.where_.len(),
            crate::optimize::DP_LIMIT
        ));
    }

    // Active-domain diagnostics.
    for v in mentioned.iter() {
        if !positive.contains(v) {
            warnings.push(format!(
                "{}: variable `{v}` is not bound by any positive condition; active-domain enumeration will apply",
                block.id
            ));
        }
    }

    let check_skolem = |sk: &SkolemTerm, clause: &str| -> Result<()> {
        if !created.contains(&(sk.name.clone(), sk.args.len())) {
            return Err(StruqlError::semantic(format!(
                "{}: Skolem term `{sk}` used in {clause} but `{}/{}` never appears in a CREATE clause",
                block.id,
                sk.name,
                sk.args.len()
            )));
        }
        for arg in &sk.args {
            if !mentioned.contains(arg) {
                return Err(StruqlError::semantic(format!(
                    "{}: Skolem argument `{arg}` of `{sk}` is not a variable of the governing WHERE conjunction",
                    block.id
                )));
            }
        }
        Ok(())
    };

    for sk in &block.creates {
        if preds.contains(&sk.name) {
            warnings.push(format!(
                "{}: Skolem function `{}` shadows a predicate name",
                block.id, sk.name
            ));
        }
        check_skolem(sk, "CREATE")?;
    }
    for link in &block.links {
        check_skolem(&link.from, "LINK")?;
        match &link.to {
            Term::Skolem(sk) => check_skolem(sk, "LINK")?,
            Term::Var(v) => {
                if !mentioned.contains(v) {
                    return Err(StruqlError::semantic(format!(
                        "{}: LINK target variable `{v}` is not bound by the governing WHERE conjunction",
                        block.id
                    )));
                }
            }
            Term::Agg(f, v) => {
                if !mentioned.contains(v) {
                    return Err(StruqlError::semantic(format!(
                        "{}: aggregate variable `{v}` of `{f}({v})` is not bound by the governing WHERE conjunction",
                        block.id
                    )));
                }
            }
            Term::Lit(_) => {}
        }
        if let LabelTerm::Var(v) = &link.label {
            if !mentioned.contains(v) {
                return Err(StruqlError::semantic(format!(
                    "{}: LINK label variable `{v}` is not bound by the governing WHERE conjunction",
                    block.id
                )));
            }
        }
    }
    for coll in &block.collects {
        match &coll.arg {
            Term::Skolem(sk) => check_skolem(sk, "COLLECT")?,
            Term::Var(v) => {
                if !mentioned.contains(v) {
                    return Err(StruqlError::semantic(format!(
                        "{}: COLLECT argument `{v}` is not bound by the governing WHERE conjunction",
                        block.id
                    )));
                }
            }
            Term::Agg(f, v) => {
                if !mentioned.contains(v) {
                    return Err(StruqlError::semantic(format!(
                        "{}: aggregate variable `{v}` of `{f}({v})` is not bound by the governing WHERE conjunction",
                        block.id
                    )));
                }
            }
            Term::Lit(_) => {}
        }
    }

    // Recurse with this block's scope pushed.
    let mut own_mentioned = FxHashSet::default();
    let mut own_positive = FxHashSet::default();
    block_vars(block, &mut own_mentioned);
    positively_bound(block, &mut own_positive);
    scope_stack.push((own_mentioned, own_positive));
    for child in &block.children {
        check_block(child, scope_stack, created, preds, warnings)?;
    }
    scope_stack.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn builtin() -> PredicateRegistry {
        PredicateRegistry::with_builtins()
    }

    #[test]
    fn predicate_reclassified_from_collection() {
        let q =
            parse_query(r#"WHERE HomePages(p), p -> "Paper" -> q, isPostScript(q) COLLECT Out(q)"#)
                .unwrap();
        let a = analyze(&q, &builtin()).unwrap();
        assert!(matches!(
            &a.query.root.where_[0],
            Condition::Collection { .. }
        ));
        assert!(
            matches!(&a.query.root.where_[2], Condition::Predicate { name, .. } if name == "isPostScript")
        );
    }

    #[test]
    fn bare_step_resolves_to_arc_var_or_pred() {
        let mut preds = builtin();
        preds.register("isName", 1, |_| true);
        let q = parse_query("WHERE C(x), x -> l -> v, x -> isName -> w COLLECT Out(v)").unwrap();
        let a = analyze(&q, &preds).unwrap();
        assert!(
            matches!(&a.query.root.where_[1], Condition::Edge { step: PathStep::ArcVar(v), .. } if v == "l")
        );
        assert!(matches!(
            &a.query.root.where_[2],
            Condition::Edge { step: PathStep::Rpe(Rpe::Pred(p)), .. } if p == "isName"
        ));
    }

    #[test]
    fn unknown_rpe_predicate_is_error() {
        let q = parse_query("WHERE C(x), x -> mystery* -> v COLLECT Out(v)").unwrap();
        let err = analyze(&q, &builtin()).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn skolem_must_be_created_somewhere() {
        let q = parse_query(r#"WHERE C(x) LINK Page(x) -> "A" -> x"#).unwrap();
        let err = analyze(&q, &builtin()).unwrap_err();
        assert!(err.to_string().contains("CREATE"), "{err}");
    }

    #[test]
    fn skolem_created_in_sibling_block_is_visible() {
        // Fig 3 links YearPage(v) -> PaperPresentation(x) where
        // PaperPresentation is created in the parent block.
        let q = parse_query(
            r#"WHERE C(x) CREATE P(x)
               { WHERE x -> "year" -> v CREATE Y(v) LINK Y(v) -> "Paper" -> P(x) }"#,
        )
        .unwrap();
        assert!(analyze(&q, &builtin()).is_ok());
    }

    #[test]
    fn skolem_arg_must_be_in_scope() {
        let q = parse_query("WHERE C(x) CREATE Page(zz)").unwrap();
        let err = analyze(&q, &builtin()).unwrap_err();
        assert!(err.to_string().contains("zz"), "{err}");
    }

    #[test]
    fn link_target_var_must_be_in_scope() {
        let q = parse_query(r#"WHERE C(x) CREATE P(x) LINK P(x) -> "A" -> nowhere"#).unwrap();
        let err = analyze(&q, &builtin()).unwrap_err();
        assert!(err.to_string().contains("nowhere"), "{err}");
    }

    #[test]
    fn unbound_negated_vars_warn_active_domain() {
        let q = parse_query(r#"WHERE not(p -> l -> q) CREATE f(p), f(q) LINK f(p) -> l -> f(q)"#)
            .unwrap();
        let a = analyze(&q, &builtin()).unwrap();
        assert!(
            a.warnings.iter().any(|w| w.contains("active-domain")),
            "{:?}",
            a.warnings
        );
    }

    #[test]
    fn wide_where_warns_about_dp_fallback() {
        // One condition over the DP join-order limit triggers the warning.
        let conds: Vec<String> = (0..=crate::optimize::DP_LIMIT)
            .map(|i| format!("x -> \"l{i}\" -> v{i}"))
            .collect();
        let q = parse_query(&format!("WHERE C(x), {} COLLECT Out(x)", conds.join(", "))).unwrap();
        let a = analyze(&q, &builtin()).unwrap();
        assert!(
            a.warnings.iter().any(|w| w.contains("greedy")),
            "{:?}",
            a.warnings
        );
    }

    #[test]
    fn arity_mismatch_is_error() {
        let q = parse_query("WHERE startsWith(x) COLLECT Out(x)").unwrap();
        let err = analyze(&q, &builtin()).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn multi_arg_unknown_predicate_is_error() {
        let q = parse_query("WHERE foo(x, y) COLLECT Out(x)").unwrap();
        assert!(analyze(&q, &builtin()).is_err());
    }

    #[test]
    fn fig3_analyzes_clean() {
        let q = parse_query(crate::parse::tests::FIG3).unwrap();
        let a = analyze(&q, &builtin()).unwrap();
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
    }
}
