//! The StruQL parser.
//!
//! Grammar (the relaxed form with nested blocks from §3 of the paper;
//! clauses may repeat and intermix inside a block, which "is nothing more
//! than syntactic convenience, since the meaning is the same as that of the
//! query in which all clauses are joint together"):
//!
//! ```text
//! Query    ::= [INPUT ident] Body [OUTPUT ident]
//! Body     ::= ( WHERE Cond (',' Cond)*
//!              | CREATE Skolem (',' Skolem)*
//!              | LINK LinkItem (',' LinkItem)*
//!              | COLLECT CollectItem (',' CollectItem)*
//!              | '{' Body '}' )*
//! Cond     ::= NOT '(' Cond ')'
//!            | ident '(' Term (',' Term)* ')'          -- collection or predicate
//!            | ident IN '{' Literal (',' Literal)* '}'
//!            | Term ('->' Step '->' Term)+             -- chains desugar to hops
//!            | Term CmpOp Term
//! Step     ::= Rpe                                      -- a bare ident is an
//!                                                       -- arc var or predicate,
//!                                                       -- resolved semantically
//! Rpe      ::= Seq ('|' Seq)* ; Seq ::= Post ('.' Post)* ;
//! Post     ::= Atom ('*'|'+'|'?')*
//! Atom     ::= STRING | '_' | true | '*' | '(' Rpe ')' | ident
//! Skolem   ::= ident '(' [ident (',' ident)*] ')'
//! LinkItem ::= Skolem '->' (STRING | ident) '->' (Skolem | ident | Literal)
//! CollectItem ::= ident '(' (Skolem | ident | Literal) ')'
//! ```

use crate::ast::*;
use crate::error::{Result, StruqlError};
use crate::lex::{lex, Spanned, Tok};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    next_block: u32,
    /// Extra hops produced while desugaring multi-hop chains
    /// (`x -> * -> y -> l -> z`); drained into the current block's WHERE
    /// clause right after the comma-list is parsed.
    pending: Vec<Condition>,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn err(&self, msg: impl Into<String>) -> StruqlError {
        StruqlError::parse(self.line(), msg.into())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---- query / block ----

    fn parse_query(&mut self) -> Result<Query> {
        let mut q = Query::default();
        if self.eat(&Tok::Input) {
            q.input = Some(self.expect_ident("input graph name")?);
        }
        q.root = self.parse_body()?;
        if self.eat(&Tok::Output) {
            q.output = Some(self.expect_ident("output graph name")?);
        }
        if let Some(t) = self.peek() {
            return Err(self.err(format!("unexpected trailing token {t:?}")));
        }
        Ok(q)
    }

    fn parse_body(&mut self) -> Result<Block> {
        let mut block = Block {
            id: BlockId(self.next_block),
            ..Block::default()
        };
        self.next_block += 1;
        loop {
            match self.peek() {
                Some(Tok::Where) => {
                    self.bump();
                    block.where_.extend(self.parse_list(Self::parse_condition)?);
                    // Splice in extra hops from multi-hop chains; order
                    // within a conjunctive clause is irrelevant.
                    block.where_.append(&mut self.pending);
                }
                Some(Tok::Create) => {
                    self.bump();
                    block.creates.extend(self.parse_list(Self::parse_skolem)?);
                }
                Some(Tok::Link) => {
                    self.bump();
                    block.links.extend(self.parse_list(Self::parse_link)?);
                }
                Some(Tok::Collect) => {
                    self.bump();
                    block.collects.extend(self.parse_list(Self::parse_collect)?);
                }
                Some(Tok::LBrace) => {
                    self.bump();
                    let child = self.parse_body()?;
                    self.expect(Tok::RBrace, "`}`")?;
                    block.children.push(child);
                }
                _ => break,
            }
        }
        Ok(block)
    }

    /// Parses a comma-separated list of items, stopping (without consuming)
    /// at any clause keyword, brace, `OUTPUT`, or end of input.
    fn parse_list<T>(&mut self, item: fn(&mut Self) -> Result<T>) -> Result<Vec<T>> {
        let mut out = vec![item(self)?];
        while self.eat(&Tok::Comma) {
            out.push(item(self)?);
        }
        Ok(out)
    }

    // ---- conditions ----

    fn parse_condition(&mut self) -> Result<Condition> {
        if self.eat(&Tok::Not) {
            self.expect(Tok::LParen, "`(` after not")?;
            let inner = self.parse_condition()?;
            self.expect(Tok::RParen, "`)`")?;
            return negate(inner).map_err(|m| self.err(m));
        }

        // `ident (` → collection/predicate; `ident in {` → set membership.
        if let Some(Tok::Ident(_)) = self.peek() {
            match self.peek2() {
                Some(Tok::LParen) => {
                    let name = self.expect_ident("name")?;
                    self.bump(); // `(`
                    let mut args = vec![self.parse_term()?];
                    while self.eat(&Tok::Comma) {
                        args.push(self.parse_term()?);
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    return Ok(if args.len() == 1 {
                        // Single argument: collection test by default; the
                        // analyzer reclassifies it as a predicate when the
                        // name is registered (semantic distinction, §3).
                        Condition::Collection {
                            name,
                            arg: args.pop().expect("one arg"),
                            negated: false,
                        }
                    } else {
                        Condition::Predicate {
                            name,
                            args,
                            negated: false,
                        }
                    });
                }
                Some(Tok::In) => {
                    let var = self.expect_ident("variable")?;
                    self.bump(); // `in`
                    self.expect(Tok::LBrace, "`{`")?;
                    let mut set = vec![self.parse_literal()?];
                    while self.eat(&Tok::Comma) {
                        set.push(self.parse_literal()?);
                    }
                    self.expect(Tok::RBrace, "`}`")?;
                    return Ok(Condition::In {
                        var,
                        set,
                        negated: false,
                    });
                }
                _ => {}
            }
        }

        // A term followed by a chain of arrows or a comparison.
        let first = self.parse_term()?;
        match self.peek() {
            Some(Tok::Arrow) => self.parse_chain(first),
            Some(Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge) => {
                let op = match self.bump() {
                    Some(Tok::Eq) => CmpOp::Eq,
                    Some(Tok::Ne) => CmpOp::Ne,
                    Some(Tok::Lt) => CmpOp::Lt,
                    Some(Tok::Le) => CmpOp::Le,
                    Some(Tok::Gt) => CmpOp::Gt,
                    Some(Tok::Ge) => CmpOp::Ge,
                    _ => unreachable!("peeked"),
                };
                let rhs = self.parse_term()?;
                Ok(Condition::Compare {
                    lhs: first,
                    op,
                    rhs,
                })
            }
            other => Err(self.err(format!(
                "expected `->` or a comparison after term, found {other:?}"
            ))),
        }
    }

    /// Parses `first -> step -> t2 [-> step -> t3 …]`. Multi-hop chains
    /// (`x -> * -> y -> l -> z`) desugar into one [`Condition::Edge`] per
    /// hop; the condition returned is the first hop and the rest are queued.
    fn parse_chain(&mut self, first: Term) -> Result<Condition> {
        // Parse the full chain, then fold into nested conditions. Since a
        // condition list is flat, we stash extra hops in `pending`.
        let mut hops = Vec::new();
        let mut from = first;
        while self.eat(&Tok::Arrow) {
            let step = self.parse_step()?;
            self.expect(Tok::Arrow, "`->` after path step")?;
            let to = self.parse_term()?;
            hops.push(Condition::Edge {
                from: from.clone(),
                step,
                to: to.clone(),
                negated: false,
            });
            from = to;
        }
        debug_assert!(!hops.is_empty(), "parse_chain called at an arrow");
        let mut iter = hops.into_iter();
        let head = iter.next().expect("non-empty");
        self.pending.extend(iter);
        Ok(head)
    }

    fn parse_step(&mut self) -> Result<PathStep> {
        // Bare identifier not followed by an RPE operator → arc var or
        // predicate (resolved by analysis).
        if let Some(Tok::Ident(_)) = self.peek() {
            if self.peek2() == Some(&Tok::Arrow) {
                let name = self.expect_ident("step")?;
                return Ok(PathStep::Bare(name));
            }
        }
        let rpe = self.parse_rpe_alt()?;
        Ok(PathStep::Rpe(rpe))
    }

    // ---- regular path expressions ----

    fn parse_rpe_alt(&mut self) -> Result<Rpe> {
        let mut lhs = self.parse_rpe_seq()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.parse_rpe_seq()?;
            lhs = Rpe::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_rpe_seq(&mut self) -> Result<Rpe> {
        let mut lhs = self.parse_rpe_post()?;
        while self.eat(&Tok::Dot) {
            let rhs = self.parse_rpe_post()?;
            lhs = Rpe::Seq(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_rpe_post(&mut self) -> Result<Rpe> {
        let mut atom = self.parse_rpe_atom()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    atom = Rpe::Star(Box::new(atom));
                }
                Some(Tok::Plus) => {
                    self.bump();
                    atom = Rpe::Plus(Box::new(atom));
                }
                Some(Tok::Question) => {
                    self.bump();
                    atom = Rpe::Opt(Box::new(atom));
                }
                _ => return Ok(atom),
            }
        }
    }

    fn parse_rpe_atom(&mut self) -> Result<Rpe> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Rpe::Label(s)),
            Some(Tok::Underscore) | Some(Tok::True) => Ok(Rpe::AnyLabel),
            Some(Tok::Star) => Ok(Rpe::any_path()),
            Some(Tok::LParen) => {
                let inner = self.parse_rpe_alt()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => Ok(Rpe::Pred(name)),
            other => Err(self.err(format!("expected a path expression, found {other:?}"))),
        }
    }

    // ---- terms & literals ----

    fn parse_term(&mut self) -> Result<Term> {
        // A Skolem application in construction position: `F(x, y)` — or an
        // aggregate `COUNT(v)` (the names COUNT/SUM/MIN/MAX/AVG are
        // reserved, case-insensitively, in term position).
        if let (Some(Tok::Ident(name)), Some(Tok::LParen)) = (self.peek(), self.peek2()) {
            if let Some(func) = AggFunc::from_name(name) {
                self.bump(); // name
                self.bump(); // `(`
                let var = self.expect_ident("aggregate variable")?;
                self.expect(Tok::RParen, "`)`")?;
                return Ok(Term::Agg(func, var));
            }
            return Ok(Term::Skolem(self.parse_skolem()?));
        }
        match self.bump() {
            Some(Tok::Ident(v)) => Ok(Term::Var(v)),
            Some(Tok::Str(s)) => Ok(Term::Lit(Literal::Str(s))),
            Some(Tok::Int(i)) => Ok(Term::Lit(Literal::Int(i))),
            Some(Tok::Float(f)) => Ok(Term::Lit(Literal::Float(f))),
            Some(Tok::True) => Ok(Term::Lit(Literal::Bool(true))),
            Some(Tok::False) => Ok(Term::Lit(Literal::Bool(false))),
            other => Err(self.err(format!("expected a term, found {other:?}"))),
        }
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Literal::Str(s)),
            Some(Tok::Int(i)) => Ok(Literal::Int(i)),
            Some(Tok::Float(f)) => Ok(Literal::Float(f)),
            Some(Tok::True) => Ok(Literal::Bool(true)),
            Some(Tok::False) => Ok(Literal::Bool(false)),
            other => Err(self.err(format!("expected a literal, found {other:?}"))),
        }
    }

    // ---- construction clauses ----

    fn parse_skolem(&mut self) -> Result<SkolemTerm> {
        let name = self.expect_ident("Skolem function name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            args.push(self.expect_ident("Skolem argument variable")?);
            while self.eat(&Tok::Comma) {
                args.push(self.expect_ident("Skolem argument variable")?);
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        Ok(SkolemTerm { name, args })
    }

    fn parse_link(&mut self) -> Result<LinkClause> {
        let from = match self.parse_term()? {
            Term::Skolem(s) => s,
            other => {
                return Err(self.err(format!(
                    "LINK source must be a Skolem term (new node), found `{other}`: existing nodes are immutable"
                )))
            }
        };
        self.expect(Tok::Arrow, "`->` in LINK")?;
        let label = match self.bump() {
            Some(Tok::Str(s)) => LabelTerm::Lit(s),
            Some(Tok::Ident(v)) => LabelTerm::Var(v),
            other => return Err(self.err(format!("expected a link label, found {other:?}"))),
        };
        self.expect(Tok::Arrow, "`->` in LINK")?;
        let to = self.parse_term()?;
        Ok(LinkClause { from, label, to })
    }

    fn parse_collect(&mut self) -> Result<CollectClause> {
        let name = self.expect_ident("collection name")?;
        self.expect(Tok::LParen, "`(`")?;
        let arg = self.parse_term()?;
        self.expect(Tok::RParen, "`)`")?;
        Ok(CollectClause { name, arg })
    }
}

fn negate(cond: Condition) -> std::result::Result<Condition, String> {
    Ok(match cond {
        Condition::Collection { name, arg, negated } => Condition::Collection {
            name,
            arg,
            negated: !negated,
        },
        Condition::Edge {
            from,
            step,
            to,
            negated,
        } => Condition::Edge {
            from,
            step,
            to,
            negated: !negated,
        },
        Condition::Predicate {
            name,
            args,
            negated,
        } => Condition::Predicate {
            name,
            args,
            negated: !negated,
        },
        Condition::Compare { lhs, op, rhs } => Condition::Compare {
            lhs,
            op: op.negate(),
            rhs,
        },
        Condition::In { var, set, negated } => Condition::In {
            var,
            set,
            negated: !negated,
        },
    })
}

/// Parses a complete StruQL query from source text.
pub fn parse_query(src: &str) -> Result<Query> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        next_block: 0,
        pending: Vec::new(),
    };
    let q = p.parse_query()?;
    debug_assert!(p.pending.is_empty(), "pending hops drained during parse");
    Ok(q)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[test]
    fn parses_postscript_example() {
        // §3: all PostScript papers directly accessible from home pages.
        let q = parse_query(
            r#"WHERE HomePages(p), p -> "Paper" -> q, isPostScript(q)
               COLLECT PostscriptPages(q)"#,
        )
        .unwrap();
        assert_eq!(q.root.where_.len(), 3);
        assert_eq!(q.root.collects.len(), 1);
        assert!(
            matches!(&q.root.where_[0], Condition::Collection { name, .. } if name == "HomePages")
        );
        assert!(matches!(&q.root.where_[1], Condition::Edge { .. }));
        // `isPostScript(q)` parses as a 1-arg collection test; the analyzer
        // reclassifies it against the predicate registry.
        assert!(
            matches!(&q.root.where_[2], Condition::Collection { name, .. } if name == "isPostScript")
        );
    }

    #[test]
    fn parses_multi_hop_chain() {
        // §3 TextOnly: Root(p), p -> * -> q, q -> l -> q0, not(isImageFile(q0))
        let q = parse_query(
            r#"WHERE Root(p), p -> * -> q -> l -> q0, not(isImageFile(q0))
               CREATE New(p), New(q), New(q0)
               LINK New(q) -> l -> New(q0)
               COLLECT TextOnlyRoot(New(p))"#,
        )
        .unwrap();
        // chain desugars: p->*->q and q->l->q0
        let edges: Vec<_> = q
            .root
            .where_
            .iter()
            .filter(|c| matches!(c, Condition::Edge { .. }))
            .collect();
        assert_eq!(edges.len(), 2);
        // Desugared hops are appended after the written conditions.
        assert!(
            matches!(&q.root.where_[2], Condition::Collection { name, negated: true, .. } if name == "isImageFile")
        );
        assert!(
            matches!(&q.root.where_[3], Condition::Edge { step: PathStep::Bare(l), .. } if l == "l")
        );
        assert_eq!(q.root.creates.len(), 3);
        assert!(matches!(&q.root.links[0].label, LabelTerm::Var(v) if v == "l"));
        assert!(
            matches!(&q.root.links[0].to, Term::Skolem(s) if s.name == "New" && s.args == vec!["q0".to_string()])
        );
    }

    #[test]
    fn parses_fig3_homepage_query() {
        let q = parse_query(FIG3).unwrap();
        assert_eq!(q.input.as_deref(), Some("BIBTEX"));
        assert_eq!(q.output.as_deref(), Some("HomePage"));
        assert_eq!(q.root.creates.len(), 2); // RootPage(), AbstractsPage()
        assert_eq!(q.root.children.len(), 1); // the Q1 block
        let q1 = &q.root.children[0];
        assert_eq!(q1.children.len(), 2); // year + category blocks
        assert_eq!(q1.creates.len(), 2);
        assert_eq!(q1.links.len(), 4);
        let q2 = &q1.children[0];
        assert!(matches!(
            &q2.where_[0],
            Condition::Compare { op: CmpOp::Eq, .. }
        ));
        assert_eq!(q2.creates[0].name, "YearPage");
    }

    /// Fig. 3 of the paper, verbatim modulo whitespace.
    pub const FIG3: &str = r#"
INPUT BIBTEX
// Create Root & Abstracts page and link them
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
{
  // Create a presentation for every publication x
  WHERE Publications(x), x -> l -> v
  CREATE PaperPresentation(x), AbstractPage(x)
  LINK AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v,
       PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
       AbstractsPage() -> "Abstract" -> AbstractPage(x)
  {
    // Create a page for every year
    WHERE l = "year"
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "YearPage" -> YearPage(v)
  }
  {
    // Create a page for every category
    WHERE l = "category"
    CREATE CategoryPage(v)
    LINK CategoryPage(v) -> "Name" -> v,
         CategoryPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "CategoryPage" -> CategoryPage(v)
  }
}
OUTPUT HomePage
"#;

    #[test]
    fn block_ids_in_document_order() {
        let q = parse_query(FIG3).unwrap();
        let ids: Vec<u32> = q.blocks().iter().map(|b| b.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn in_set_condition() {
        let q = parse_query(
            r#"WHERE Publications(x), x -> * -> y -> l -> z,
                     l in {"Paper", "TechReport", "Title"}
               CREATE Page(y)"#,
        )
        .unwrap();
        let in_cond = q
            .root
            .where_
            .iter()
            .find(|c| matches!(c, Condition::In { .. }))
            .unwrap();
        match in_cond {
            Condition::In { var, set, negated } => {
                assert_eq!(var, "l");
                assert_eq!(set.len(), 3);
                assert!(!negated);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn complement_query_parses() {
        // §3: the complement of a graph.
        let q = parse_query(
            r#"WHERE not(p -> l -> q)
               CREATE f(p), f(q)
               LINK f(p) -> l -> f(q)"#,
        )
        .unwrap();
        assert!(matches!(
            &q.root.where_[0],
            Condition::Edge { negated: true, .. }
        ));
    }

    #[test]
    fn rpe_operators_parse() {
        let q = parse_query(r#"WHERE x -> ("a" . "b")* | "c"+ . _? -> y COLLECT Out(y)"#).unwrap();
        match &q.root.where_[0] {
            Condition::Edge {
                step: PathStep::Rpe(r),
                ..
            } => {
                let s = r.to_string();
                assert!(
                    s.contains('*') && s.contains('+') && s.contains('?'),
                    "got {s}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_ident_step_is_unresolved() {
        let q = parse_query("WHERE x -> l -> y COLLECT C(y)").unwrap();
        assert!(
            matches!(&q.root.where_[0], Condition::Edge { step: PathStep::Bare(v), .. } if v == "l")
        );
    }

    #[test]
    fn link_from_var_is_rejected() {
        // §3: `link x -> "A" -> f(y)` is illegal — old nodes are immutable.
        let err = parse_query(r#"WHERE C(x) CREATE f(x) LINK x -> "A" -> f(x)"#).unwrap_err();
        assert!(err.to_string().contains("immutable"), "{err}");
    }

    #[test]
    fn comparison_operators() {
        for (src, op) in [
            ("x = 1", CmpOp::Eq),
            ("x != 1", CmpOp::Ne),
            ("x < 1", CmpOp::Lt),
            ("x <= 1", CmpOp::Le),
            ("x > 1", CmpOp::Gt),
            ("x >= 1", CmpOp::Ge),
        ] {
            let q = parse_query(&format!("WHERE C(x), {src} COLLECT Out(x)")).unwrap();
            assert!(
                matches!(&q.root.where_[1], Condition::Compare { op: o, .. } if *o == op),
                "{src}"
            );
        }
    }

    #[test]
    fn not_comparison_negates_operator() {
        let q = parse_query("WHERE C(x), not(x = 1) COLLECT Out(x)").unwrap();
        assert!(matches!(
            &q.root.where_[1],
            Condition::Compare { op: CmpOp::Ne, .. }
        ));
    }

    #[test]
    fn display_parse_roundtrip() {
        let q = parse_query(FIG3).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(q, q2);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_query("WHERE C(x) COLLECT D(x) bogus bogus").is_err());
    }

    #[test]
    fn empty_query_is_valid() {
        // A create-only query with no WHERE: one empty binding.
        let q = parse_query("CREATE HomePage()").unwrap();
        assert!(q.root.where_.is_empty());
        assert_eq!(q.root.creates.len(), 1);
        assert!(q.root.creates[0].args.is_empty());
    }

    #[test]
    fn error_reports_line() {
        let err = parse_query("WHERE C(x)\nCREATE ???").unwrap_err();
        match err {
            StruqlError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
