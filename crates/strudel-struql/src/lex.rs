//! The StruQL lexer.
//!
//! Keywords (`INPUT`, `WHERE`, `CREATE`, `LINK`, `COLLECT`, `OUTPUT`, `in`,
//! `not`) are case-insensitive, matching the paper's mixed usage (`where` in
//! the text, `WHERE` in Fig. 3). Comments run from `//` or `#` to end of
//! line.

use crate::error::{Result, StruqlError};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// An identifier (variable, Skolem function, collection, or predicate).
    Ident(String),
    /// A string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `INPUT`
    Input,
    /// `WHERE`
    Where,
    /// `CREATE`
    Create,
    /// `LINK`
    Link,
    /// `COLLECT`
    Collect,
    /// `OUTPUT`
    Output,
    /// `in`
    In,
    /// `not`
    Not,
    /// `true`
    True,
    /// `false`
    False,
    /// `->`
    Arrow,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `|`
    Pipe,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `?`
    Question,
    /// `_`
    Underscore,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token plus its 1-based source line.
pub type Spanned = (Tok, usize);

/// Tokenizes StruQL source text.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut out = Vec::new();

    macro_rules! err {
        ($($arg:tt)*) => { return Err(StruqlError::parse(line, format!($($arg)*))) };
    }

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            _ if b.is_ascii_whitespace() => pos += 1,
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'-' if bytes.get(pos + 1) == Some(&b'>') => {
                out.push((Tok::Arrow, line));
                pos += 2;
            }
            b'{' => {
                out.push((Tok::LBrace, line));
                pos += 1;
            }
            b'}' => {
                out.push((Tok::RBrace, line));
                pos += 1;
            }
            b'(' => {
                out.push((Tok::LParen, line));
                pos += 1;
            }
            b')' => {
                out.push((Tok::RParen, line));
                pos += 1;
            }
            b',' => {
                out.push((Tok::Comma, line));
                pos += 1;
            }
            b'.' => {
                out.push((Tok::Dot, line));
                pos += 1;
            }
            b'|' => {
                out.push((Tok::Pipe, line));
                pos += 1;
            }
            b'*' => {
                out.push((Tok::Star, line));
                pos += 1;
            }
            b'+' => {
                out.push((Tok::Plus, line));
                pos += 1;
            }
            b'?' => {
                out.push((Tok::Question, line));
                pos += 1;
            }
            b'=' => {
                out.push((Tok::Eq, line));
                pos += 1;
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push((Tok::Ne, line));
                pos += 2;
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push((Tok::Le, line));
                    pos += 2;
                } else {
                    out.push((Tok::Lt, line));
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push((Tok::Ge, line));
                    pos += 2;
                } else {
                    out.push((Tok::Gt, line));
                    pos += 1;
                }
            }
            b'"' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        err!("unterminated string literal");
                    }
                    match bytes[pos] {
                        b'"' => {
                            pos += 1;
                            break;
                        }
                        b'\\' => {
                            pos += 1;
                            match bytes.get(pos) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                other => err!("bad escape \\{:?}", other.map(|c| *c as char)),
                            }
                            pos += 1;
                        }
                        b'\n' => err!("newline in string literal"),
                        _ => {
                            // Consume one UTF-8 scalar.
                            let start = pos;
                            pos += 1;
                            while pos < bytes.len() && (bytes[pos] & 0xC0) == 0x80 {
                                pos += 1;
                            }
                            s.push_str(&src[start..pos]);
                        }
                    }
                }
                out.push((Tok::Str(s), line));
            }
            b'-' | b'0'..=b'9' => {
                let start = pos;
                pos += 1;
                let mut is_float = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'0'..=b'9' => pos += 1,
                        // A dot is part of the number only when followed by
                        // a digit: `1.2` is a float, but in `R.R` path
                        // syntax the dot is an operator.
                        b'.' if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                            is_float = true;
                            pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = &src[start..pos];
                if is_float {
                    match text.parse() {
                        Ok(f) => out.push((Tok::Float(f), line)),
                        Err(_) => err!("bad float literal {text:?}"),
                    }
                } else {
                    match text.parse() {
                        Ok(i) => out.push((Tok::Int(i), line)),
                        Err(_) => err!("bad integer literal {text:?}"),
                    }
                }
            }
            b'_' if !bytes
                .get(pos + 1)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') =>
            {
                out.push((Tok::Underscore, line));
                pos += 1;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-')
                {
                    // `-` is allowed inside identifiers (`pub-type`), but
                    // `->` always terminates one.
                    if bytes[pos] == b'-' {
                        if bytes.get(pos + 1) == Some(&b'>') {
                            break;
                        }
                        if !bytes
                            .get(pos + 1)
                            .is_some_and(|c| c.is_ascii_alphanumeric())
                        {
                            break;
                        }
                    }
                    pos += 1;
                }
                let word = &src[start..pos];
                let tok = match word.to_ascii_lowercase().as_str() {
                    "input" => Tok::Input,
                    "where" => Tok::Where,
                    "create" => Tok::Create,
                    "link" => Tok::Link,
                    "collect" => Tok::Collect,
                    "output" => Tok::Output,
                    "in" => Tok::In,
                    "not" => Tok::Not,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push((tok, line));
            }
            other => err!("unexpected character {:?}", other as char),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("WHERE where Where"),
            vec![Tok::Where, Tok::Where, Tok::Where]
        );
    }

    #[test]
    fn arrows_and_operators() {
        assert_eq!(
            toks("x -> l -> v, l != 3 <= >="),
            vec![
                Tok::Ident("x".into()),
                Tok::Arrow,
                Tok::Ident("l".into()),
                Tok::Arrow,
                Tok::Ident("v".into()),
                Tok::Comma,
                Tok::Ident("l".into()),
                Tok::Ne,
                Tok::Int(3),
                Tok::Le,
                Tok::Ge,
            ]
        );
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(toks("pub-type"), vec![Tok::Ident("pub-type".into())]);
        // ...but an arrow still splits.
        assert_eq!(
            toks("x->y"),
            vec![Tok::Ident("x".into()), Tok::Arrow, Tok::Ident("y".into())]
        );
    }

    #[test]
    fn numbers_vs_path_dots() {
        assert_eq!(toks("1997"), vec![Tok::Int(1997)]);
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5)]);
        // "a" . "b" concatenation: dot stays an operator.
        assert_eq!(
            toks(r#""a"."b""#),
            vec![Tok::Str("a".into()), Tok::Dot, Tok::Str("b".into())]
        );
        assert_eq!(toks("-3"), vec![Tok::Int(-3)]);
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(toks(r#""a\"b\n""#), vec![Tok::Str("a\"b\n".into())]);
        assert_eq!(toks("\"élan\""), vec![Tok::Str("élan".into())]);
    }

    #[test]
    fn underscore_is_wildcard_but_not_in_idents() {
        assert_eq!(toks("_"), vec![Tok::Underscore]);
        assert_eq!(toks("_x"), vec![Tok::Ident("_x".into())]);
        assert_eq!(toks("a_b"), vec![Tok::Ident("a_b".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x // comment\n# more\ny"),
            vec![Tok::Ident("x".into()), Tok::Ident("y".into())]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let spanned = lex("x\n\ny").unwrap();
        assert_eq!(spanned[0].1, 1);
        assert_eq!(spanned[1].1, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
        assert!(lex("\"new\nline\"").is_err());
    }

    #[test]
    fn rpe_tokens() {
        assert_eq!(
            toks(r#"("a" | _)* +"#),
            vec![
                Tok::LParen,
                Tok::Str("a".into()),
                Tok::Pipe,
                Tok::Underscore,
                Tok::RParen,
                Tok::Star,
                Tok::Plus
            ]
        );
    }
}
