//! `strudel-cli` — the command-line interface to the STRUDEL web-site
//! management system.
//!
//! ```text
//! strudel-cli build   <site.spec> [--jobs N] [--timings] [--data FILE]
//!                     [--page-cache N]            generate the browsable site
//! strudel-cli schema  <site.spec>                 print the site schema (DOT)
//! strudel-cli explain <site.spec> [--profile [--json]]  optimizer plans per block
//! strudel-cli verify  <site.spec> <constraint>    check a structural constraint
//! strudel-cli query   <data.(ddl|bin|pdb)> <q.struql> [--profile [--json]]
//!                                                 run an ad-hoc query, print DDL
//! strudel-cli serve   <site.spec> [addr]          click-time evaluation over HTTP
//!     [--threads N] [--cache-entries N] [--cache-bytes N] [--threaded] [--data FILE]
//!     [--page-cache N] [--group-commit-window MS]
//!     [--trace-sample-rate F] [--trace-slow-ms N]
//! strudel-cli trace   <http://host:port/page/...>  fetch a page from a traced
//!                     | <site.spec> [page-path]    server (or serve one in
//!                                                  process) and print its span
//!                                                  tree with per-layer self-times
//! strudel-cli loadtest <site.spec>                zipfian load against the server
//!     [--conns A,B] [--duration-ms N] [--zipf S] [--threads N] [--max-urls N]
//!     [--pipeline-depth N] [--seed N] [--out FILE] [--threaded]
//! strudel-cli store   import <data.(ddl|bin)> <store.pdb>   seed a paged store
//! strudel-cli store   info <store.pdb>            revision, pages, WAL, contents
//! strudel-cli store   compact <store.pdb>         checkpoint + rewrite minimal
//! strudel-cli demo    <dir>                       write a ready-to-build demo site
//! ```
//!
//! `--data FILE` registers a paged graph store (crash-recovered on open) as
//! an extra data source named `store` alongside the spec's sources.
//! `--page-cache N` caps that store's page cache at N pages and
//! `--group-commit-window MS` sets how long a group-commit leader waits for
//! followers before flushing the batch (0 = flush immediately).
//!
//! Observability flags:
//!
//! * `--profile` records one line per applied condition (rows in/out, the
//!   physical strategy, path-cache hits/misses, per-worker chunk timings).
//!   `query` prints the table to stderr so stdout stays pipeable DDL;
//!   `explain` appends it to the plans. With `--json` the profile is
//!   printed to stdout as a JSON document instead.
//! * `--timings` makes `build` print a phase-breakdown JSON object
//!   (refresh → evaluate → render → write, microseconds) with the slowest
//!   pages, instead of the human summary line.
//!
//! Constraint syntax for `verify`:
//!
//! ```text
//! reachable-from Root
//! every MemberPage -Department-> DeptPage
//! none-reachable Root SecretPage
//! ```

mod loadtest;
mod spec;

use std::path::Path;
use std::process::ExitCode;
use strudel::site::Constraint;
use strudel::{Strudel, StrudelError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") if args.len() >= 2 => cmd_build(Path::new(&args[1]), &args[2..]),
        Some("schema") if args.len() == 2 => cmd_schema(Path::new(&args[1])),
        Some("explain") if args.len() >= 2 => cmd_explain(Path::new(&args[1]), &args[2..]),
        Some("verify") if args.len() >= 3 => cmd_verify(Path::new(&args[1]), &args[2..].join(" ")),
        Some("query") if args.len() >= 3 => {
            cmd_query(Path::new(&args[1]), Path::new(&args[2]), &args[3..])
        }
        Some("serve") if args.len() >= 2 => cmd_serve(Path::new(&args[1]), &args[2..]),
        Some("trace") if args.len() >= 2 => cmd_trace(&args[1], &args[2..]),
        Some("loadtest") if args.len() >= 2 => loadtest::run(Path::new(&args[1]), &args[2..]),
        Some("store") if args.len() >= 2 => cmd_store(&args[1], &args[2..]),
        Some("demo") if args.len() == 2 => cmd_demo(Path::new(&args[1])),
        _ => {
            eprintln!("usage:\n  strudel-cli build   <site.spec> [--jobs N] [--timings] [--data FILE] [--page-cache N]\n  strudel-cli schema  <site.spec>\n  strudel-cli explain <site.spec> [--profile [--json]]\n  strudel-cli verify  <site.spec> <constraint>\n  strudel-cli query   <data.(ddl|bin|pdb)> <query.struql> [--profile [--json]]\n  strudel-cli serve   <site.spec> [addr] [--threads N] [--cache-entries N] [--cache-bytes N] [--threaded]\n                       [--data FILE] [--page-cache N] [--group-commit-window MS]\n                       [--trace-sample-rate F] [--trace-slow-ms N]\n  strudel-cli trace   <http://host:port/page/...> | <site.spec> [page-path]\n  strudel-cli loadtest <site.spec> [--conns A,B] [--duration-ms N] [--zipf S] [--threads N]\n                       [--max-urls N] [--pipeline-depth N] [--seed N] [--out FILE] [--threaded]\n  strudel-cli store   import <data.(ddl|bin)> <store.pdb> | info <store.pdb> | compact <store.pdb>\n  strudel-cli demo    <dir>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

/// How `--profile [--json]` asks for the per-condition execution profile.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileMode {
    Off,
    Table,
    Json,
}

fn parse_profile_flags(rest: &[String]) -> Result<ProfileMode, AnyError> {
    let (mut profile, mut json) = (false, false);
    for arg in rest {
        match arg.as_str() {
            "--profile" => profile = true,
            "--json" => json = true,
            s => return Err(format!("unknown argument {s}").into()),
        }
    }
    match (profile, json) {
        (false, false) => Ok(ProfileMode::Off),
        (true, false) => Ok(ProfileMode::Table),
        (true, true) => Ok(ProfileMode::Json),
        (false, true) => Err("--json requires --profile".into()),
    }
}

fn read(path: &Path) -> Result<String, AnyError> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()).into())
}

/// Wires a [`Strudel`] system from a spec file.
fn load_system(spec_path: &Path) -> Result<(Strudel, spec::Spec), AnyError> {
    let base = spec_path.parent().unwrap_or(Path::new("."));
    let sp = spec::parse(&read(spec_path)?, base)?;
    let mut s = Strudel::new();

    for (kind, name, path) in &sp.sources {
        match kind.as_str() {
            "bibtex" => s.add_bibtex_source(name, &read(path)?),
            "ddl" => s.add_ddl_source(name, &read(path)?),
            "csv" => {
                let table = strudel::wrappers::relational::Table::from_csv(name, &read(path)?)
                    .map_err(StrudelError::Graph)?;
                let fks = sp
                    .fks
                    .iter()
                    .map(|(t, c, tt, tk)| strudel::wrappers::relational::ForeignKey {
                        table: t.clone(),
                        column: c.clone(),
                        target_table: tt.clone(),
                        target_key: tk.clone(),
                    })
                    .collect();
                s.add_csv_source(name, vec![table], fks);
            }
            "html" => {
                let html = read(path)?;
                s.add_html_source(name, vec![(path.display().to_string(), html)]);
            }
            "xml" => s.add_xml_source(name, &read(path)?),
            "store" => s.add_store_source(name, path),
            _ => unreachable!("validated by spec parser"),
        }
    }
    for (source, path) in &sp.mappings {
        s.add_mapping(source, &read(path)?)?;
    }
    for q in &sp.queries {
        s.add_site_query(&read(q)?)?;
    }
    for (name, path) in &sp.templates {
        s.templates_mut()
            .set_collection_template(name, &read(path)?)
            .map_err(StrudelError::Template)?;
    }
    for (name, path) in &sp.named_templates {
        s.templates_mut()
            .set_named(name, &read(path)?)
            .map_err(StrudelError::Template)?;
    }
    if let Some(path) = &sp.default_template {
        s.templates_mut()
            .set_default(&read(path)?)
            .map_err(StrudelError::Template)?;
    }
    Ok((s, sp))
}

/// `rest` holds everything after the spec path: an optional `--jobs N`
/// flag (worker threads for evaluation, construction and rendering;
/// defaults to the machine's available parallelism), `--timings`
/// (print a phase-breakdown JSON object instead of the summary line),
/// `--data FILE` (mount a paged graph store as an extra source) and
/// `--page-cache N` (cap that store's page cache at N pages).
fn cmd_build(spec_path: &Path, rest: &[String]) -> Result<(), AnyError> {
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut timings = false;
    let mut data: Option<String> = None;
    let mut tune = strudel::StoreTuning::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs {v}: {e}"))?
                    .max(1);
            }
            "--timings" => timings = true,
            "--data" => data = Some(it.next().ok_or("--data needs a file")?.clone()),
            "--page-cache" => {
                let v = it.next().ok_or("--page-cache needs a value")?;
                tune.page_cache = Some(v.parse().map_err(|e| format!("--page-cache {v}: {e}"))?);
            }
            s => return Err(format!("unknown argument {s}").into()),
        }
    }
    let (mut s, sp) = load_system(spec_path)?;
    if let Some(store_path) = &data {
        s.add_store_source_with("store", Path::new(store_path), tune);
    }
    s.set_jobs(jobs);
    let roots: Vec<&str> = sp.roots.iter().map(String::as_str).collect();
    let out = sp
        .output
        .clone()
        .unwrap_or_else(|| Path::new("site-out").to_path_buf());
    if timings {
        let (site, phases) = s.publish_timed(&roots, &out)?;
        let mut slow: Vec<(String, u64)> = site.render_us.clone();
        slow.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        slow.truncate(5);
        let slow_json = slow
            .iter()
            .map(|(f, us)| {
                format!(
                    "{{\"file\":\"{}\",\"us\":{us}}}",
                    strudel::obs::json::escape(f)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"phases\":{},\"total_us\":{},\"jobs\":{jobs},\"pages\":{},\"bytes\":{},\"slowest_pages\":[{slow_json}]}}",
            phases.to_json(),
            phases.total_us(),
            site.pages.len(),
            site.total_bytes(),
        );
        for w in &site.warnings {
            eprintln!("warning: {w}");
        }
        return Ok(());
    }
    let t = std::time::Instant::now();
    let site = s.publish(&roots, &out)?;
    println!(
        "built {} pages ({} bytes) in {:?} with {} jobs -> {}",
        site.pages.len(),
        site.total_bytes(),
        t.elapsed(),
        jobs,
        out.display()
    );
    for w in &site.warnings {
        eprintln!("warning: {w}");
    }
    Ok(())
}

fn cmd_schema(spec_path: &Path) -> Result<(), AnyError> {
    let (s, _) = load_system(spec_path)?;
    print!("{}", s.site_schema().to_dot());
    Ok(())
}

fn cmd_explain(spec_path: &Path, rest: &[String]) -> Result<(), AnyError> {
    let mode = parse_profile_flags(rest)?;
    let (mut s, _) = load_system(spec_path)?;
    let merged = s.merged_query();
    let mut opts = s.options_mut().clone();
    let data = s.data_graph()?;
    let plans = merged.explain(data, &opts).map_err(StrudelError::Struql)?;
    if mode == ProfileMode::Off {
        println!("{plans}");
        return Ok(());
    }
    // The static plans say what the optimizer *chose*; executing with
    // explain + profile shows the plan as run (observed rows per node,
    // adaptive re-optimizations included) plus the operator-level profile.
    opts.profile = true;
    opts.explain = true;
    let out = merged.evaluate(data, &opts).map_err(StrudelError::Struql)?;
    match mode {
        ProfileMode::Table => {
            for plan in &out.stats.plans {
                println!("{plan}");
            }
            if out.stats.plan_replans > 0 {
                println!("adaptive re-optimizations: {}", out.stats.plan_replans);
            }
            print!("{}", strudel::obs::render_profile_table(&out.stats.profile));
        }
        _ => println!(
            "{{\"profile\":{}}}",
            strudel::obs::render_profile_json(&out.stats.profile)
        ),
    }
    Ok(())
}

fn parse_constraint(text: &str) -> Result<Constraint, AnyError> {
    let words: Vec<&str> = text.split_whitespace().collect();
    match words.as_slice() {
        ["reachable-from", root] => Ok(Constraint::AllReachableFrom {
            root: root.to_string(),
        }),
        ["none-reachable", from, forbidden] => Ok(Constraint::NoneReachable {
            from: from.to_string(),
            forbidden: forbidden.to_string(),
        }),
        ["every", from, edge, to] => {
            let label = edge
                .strip_prefix('-')
                .and_then(|e| e.strip_suffix("->"))
                .ok_or("edge must look like -Label->")?;
            Ok(Constraint::EveryHasEdge {
                from: from.to_string(),
                label: label.to_string(),
                to: to.to_string(),
            })
        }
        _ => Err(format!("cannot parse constraint `{text}`").into()),
    }
}

fn cmd_verify(spec_path: &Path, constraint_text: &str) -> Result<(), AnyError> {
    let (mut s, _) = load_system(spec_path)?;
    let constraint = parse_constraint(constraint_text)?;
    let (schema_verdict, exact) = s.verify(&constraint)?;
    println!("schema check: {schema_verdict:?}");
    if let Some(exact) = exact {
        println!("exact check:  {exact:?}");
        if matches!(exact, strudel::site::Verdict::Violated(_)) {
            return Err("constraint violated".into());
        }
    } else if matches!(schema_verdict, strudel::site::Verdict::Violated(_)) {
        return Err("constraint violated".into());
    }
    Ok(())
}

fn cmd_query(data_path: &Path, query_path: &Path, rest: &[String]) -> Result<(), AnyError> {
    let mode = parse_profile_flags(rest)?;
    let data = if data_path.extension().is_some_and(|e| e == "bin") {
        strudel::graph::store::load_from_file(data_path)?
    } else if data_path.extension().is_some_and(|e| e == "pdb") {
        // A paged store: open (running crash recovery if the last writer
        // died) and query its current revision.
        let mut store = strudel::graph::store::PagedStore::open(data_path)?;
        let bytes = store.serialize()?;
        strudel::graph::store::load_slice(&bytes)?
    } else {
        strudel::graph::ddl::parse(&read(data_path)?)?
    };
    let q = strudel::struql::parse_query(&read(query_path)?)?;
    let opts = strudel::struql::EvalOptions {
        profile: mode != ProfileMode::Off,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let out = q.evaluate(&data, &opts)?;
    eprintln!(
        "evaluated in {:?}: {} nodes, {} edges, {} rows examined",
        t.elapsed(),
        out.graph.node_count(),
        out.graph.edge_count(),
        out.stats.intermediate_rows
    );
    match mode {
        // Stdout stays pipeable DDL; the table rides the diagnostics stream.
        ProfileMode::Off => print!("{}", strudel::graph::ddl::print(&out.graph)),
        ProfileMode::Table => {
            print!("{}", strudel::graph::ddl::print(&out.graph));
            eprint!("{}", strudel::obs::render_profile_table(&out.stats.profile));
        }
        ProfileMode::Json => println!(
            "{{\"profile\":{}}}",
            strudel::obs::render_profile_json(&out.stats.profile)
        ),
    }
    Ok(())
}

/// Writes a small ready-to-run demo site (spec + sources + query +
/// templates) into `dir`, so `strudel-cli build <dir>/demo.site` works.
/// Serves the site with click-time evaluation: nothing is materialized up
/// front; each page runs its governing StruQL sub-queries on request.
///
/// `rest` holds everything after the spec path: an optional bind address
/// plus `--threads N`, `--cache-entries N` and `--cache-bytes N` flags.
fn cmd_serve(spec_path: &Path, rest: &[String]) -> Result<(), AnyError> {
    let mut addr = "127.0.0.1:8017".to_string();
    let mut config = strudel::serve::ServerConfig::default();
    let mut cache = strudel::site::CacheConfig::default();
    let mut data: Option<String> = None;
    let mut tune = strudel::StoreTuning::default();
    let mut trace_cfg = strudel::obs::trace::TraceConfig::default();

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<usize, AnyError> {
            let v = it.next().ok_or_else(|| format!("{name} needs a value"))?;
            v.parse().map_err(|e| format!("{name} {v}: {e}").into())
        };
        match arg.as_str() {
            "--threads" => config.threads = flag_value("--threads")?.max(1),
            "--cache-entries" => cache.max_entries = flag_value("--cache-entries")?,
            "--cache-bytes" => cache.max_bytes = flag_value("--cache-bytes")?,
            "--threaded" => config.mode = strudel::serve::ServeMode::Threaded,
            "--data" => data = Some(it.next().ok_or("--data needs a file")?.clone()),
            "--page-cache" => tune.page_cache = Some(flag_value("--page-cache")?),
            "--group-commit-window" => {
                let ms = flag_value("--group-commit-window")?;
                tune.group_commit_window = Some(std::time::Duration::from_millis(ms as u64));
            }
            "--trace-sample-rate" => {
                let v = it.next().ok_or("--trace-sample-rate needs a value")?;
                trace_cfg.sample_rate = v
                    .parse()
                    .map_err(|e| format!("--trace-sample-rate {v}: {e}"))?;
            }
            "--trace-slow-ms" => trace_cfg.slow_ms = flag_value("--trace-slow-ms")? as u64,
            s if s.starts_with("--") => return Err(format!("unknown flag {s}").into()),
            s => addr = s.to_string(),
        }
    }

    let (mut s, _) = load_system(spec_path)?;
    if let Some(store_path) = &data {
        s.add_store_source_with("store", Path::new(store_path), tune);
    }
    strudel::obs::trace::enable(trace_cfg);
    let dynamic = s.dynamic_site_with(cache)?;
    let server = strudel::serve::Server::bind_with(dynamic, &addr, config)?;
    println!(
        "serving dynamically evaluated site on http://{}/ with {} worker threads (GET /quit to stop, GET /stats for metrics, GET /debug/traces for the flight recorder)",
        server.addr()?,
        server.config().threads,
    );
    server.serve(None)?;
    print_trace_summary();
    Ok(())
}

/// The serve-shutdown trace summary: recorder totals plus the worst
/// promoted traces with their per-layer self-time breakdowns.
fn print_trace_summary() {
    use strudel::obs::trace;
    let t = trace::stats();
    if t.traces_started == 0 {
        return;
    }
    eprintln!(
        "traces: {} started, {} sampled, {} slow-promoted; ring {}/{} spans ({} overwritten)",
        t.traces_started,
        t.traces_sampled,
        t.traces_slow_promoted,
        t.ring_live,
        t.ring_capacity,
        t.spans_dropped,
    );
    let worst = trace::worst_traces();
    if worst.is_empty() {
        return;
    }
    eprintln!("slowest requests:");
    for w in &worst {
        let breakdown = trace::LAYER_NAMES
            .iter()
            .zip(w.layer_self_ns.iter())
            .filter(|(_, ns)| **ns > 0)
            .map(|(name, ns)| format!("{name} {}us", ns / 1_000))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "  {:>8}us  {} ({} spans; {breakdown})",
            w.dur_ns / 1_000,
            if w.path.is_empty() { "?" } else { &w.path },
            w.spans,
        );
    }
}

/// `strudel-cli trace` — fetch one page through the traced click path and
/// print its span tree with per-layer self-times.
///
/// * `trace http://host:port/page/...` — remote: fetch the page from a
///   running server (started with tracing on), then pull its trace from
///   `/debug/traces`.
/// * `trace <site.spec> [page-path]` — in-process: bind an ephemeral
///   traced server over the spec, fetch the page (default: the first
///   `/page/…` link off `/`), and print its trace. Exercises the real
///   click path end to end.
fn cmd_trace(target: &str, rest: &[String]) -> Result<(), AnyError> {
    if let Some(stripped) = target.strip_prefix("http://") {
        let (host, path) = match stripped.split_once('/') {
            Some((h, p)) => (h.to_string(), format!("/{p}")),
            None => (stripped.to_string(), "/".to_string()),
        };
        return trace_via_server(&host, &path);
    }
    // In-process: serve the spec on an ephemeral port with tracing fully
    // on, then run the same remote flow against it.
    let (mut s, _) = load_system(Path::new(target))?;
    strudel::obs::trace::enable(strudel::obs::trace::TraceConfig {
        sample_rate: 1.0,
        ..Default::default()
    });
    let dynamic = s.dynamic_site_with(strudel::site::CacheConfig::default())?;
    let server = strudel::serve::Server::bind(dynamic, "127.0.0.1:0")?;
    let host = server.addr()?.to_string();
    let mut result = Err("trace did not run".into());
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(None));
        result = (|| -> Result<(), AnyError> {
            let path = match rest.first() {
                Some(p) => p.clone(),
                None => {
                    // Follow the first page link off the roots listing.
                    let roots = http_get(&host, "/")?;
                    roots
                        .split("href=\"")
                        .nth(1)
                        .and_then(|part| part.find('"').map(|end| part[..end].to_string()))
                        .ok_or("no page links under /")?
                }
            };
            trace_via_server(&host, &path)
        })();
        let _ = http_get(&host, "/quit");
        let _ = serving.join().expect("server thread");
    });
    result
}

/// Fetches `path` from a traced server at `host`, then prints the span
/// tree `/debug/traces` recorded for that request.
fn trace_via_server(host: &str, path: &str) -> Result<(), AnyError> {
    let page = http_get(host, path)?;
    let status = page
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .unwrap_or("???");
    if !status.starts_with('2') {
        return Err(format!("GET {path} answered {status}").into());
    }
    let resp = http_get(host, "/debug/traces")?;
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or("unframed /debug/traces response")?;
    let doc = strudel::obs::json::parse(body).map_err(|e| format!("/debug/traces: {e}"))?;
    let traces = doc
        .get("traces")
        .and_then(|t| t.as_array())
        .ok_or("no traces array (is tracing enabled on the server?)")?;
    // Newest first; ours is the most recent trace for this path.
    let trace = traces
        .iter()
        .find(|t| t.get("path").and_then(|p| p.as_str()) == Some(path))
        .ok_or_else(|| {
            format!("no trace for {path} (sampled out, or evicted from the recent ring?)")
        })?;
    print_trace(trace);
    Ok(())
}

/// Renders one `/debug/traces` entry as an indented span tree plus the
/// per-layer self-time breakdown.
fn print_trace(trace: &strudel::obs::json::Value) {
    let num = |v: &strudel::obs::json::Value, key: &str| -> u64 {
        v.get(key).and_then(|n| n.as_f64()).unwrap_or(0.0) as u64
    };
    println!(
        "trace {} {} — {}us total, {} spans",
        num(trace, "trace_id"),
        trace.get("path").and_then(|p| p.as_str()).unwrap_or("?"),
        num(trace, "duration_us"),
        num(trace, "span_count"),
    );
    let spans = trace.get("spans").and_then(|s| s.as_array()).unwrap_or(&[]);
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| num(s, "span_id")).collect();
    // Roots: spans whose parent is outside this trace (the request root,
    // plus any orphans whose parent was overwritten by ring wrap-around).
    let mut roots: Vec<&strudel::obs::json::Value> = spans
        .iter()
        .filter(|s| !ids.contains(&num(s, "parent_id")))
        .collect();
    roots.sort_by_key(|s| num(s, "start_us"));
    for root in roots {
        print_span_subtree(root, spans, 1, &num);
    }
    if let Some(strudel::obs::json::Value::Object(fields)) = trace.get("layers_self_us") {
        let breakdown = fields
            .iter()
            .filter(|(_, v)| v.as_f64().unwrap_or(0.0) > 0.0)
            .map(|(k, v)| format!("{k} {}us", v.as_f64().unwrap_or(0.0) as u64))
            .collect::<Vec<_>>()
            .join(", ");
        println!("per-layer self-time: {breakdown}");
    }
}

/// Prints one span and, recursively, its children (by start time).
fn print_span_subtree(
    span: &strudel::obs::json::Value,
    all: &[strudel::obs::json::Value],
    depth: usize,
    num: &dyn Fn(&strudel::obs::json::Value, &str) -> u64,
) {
    let id = num(span, "span_id");
    let mut children: Vec<&strudel::obs::json::Value> =
        all.iter().filter(|s| num(s, "parent_id") == id).collect();
    children.sort_by_key(|s| num(s, "start_us"));
    let dur = num(span, "dur_us");
    let child_us: u64 = children.iter().map(|c| num(c, "dur_us")).sum();
    let mut attrs = String::new();
    if let Some(strudel::obs::json::Value::Object(fields)) = span.get("attrs") {
        for (k, v) in fields {
            let rendered = match v {
                strudel::obs::json::Value::String(s) => s.clone(),
                other => format!("{}", other.as_f64().unwrap_or(0.0) as u64),
            };
            attrs.push_str(&format!(" {k}={rendered}"));
        }
    }
    println!(
        "{:indent$}{} [{}] {dur}us (self {}us){attrs}",
        "",
        span.get("name").and_then(|n| n.as_str()).unwrap_or("?"),
        span.get("cat").and_then(|c| c.as_str()).unwrap_or("?"),
        dur.saturating_sub(child_us),
        indent = depth * 2,
    );
    for child in children {
        print_span_subtree(child, all, depth + 1, num);
    }
}

/// A one-shot `Connection: close` GET against `host` (`ip:port`).
fn http_get(host: &str, path: &str) -> Result<String, AnyError> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(host)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    Ok(buf)
}

/// `strudel-cli store import|info|compact` — manage paged graph stores.
fn cmd_store(verb: &str, rest: &[String]) -> Result<(), AnyError> {
    use strudel::graph::store::PagedStore;
    match (verb, rest) {
        ("import", [data, dest]) => {
            let data_path = Path::new(data);
            let graph = if data_path.extension().is_some_and(|e| e == "bin") {
                strudel::graph::store::load_from_file(data_path)?
            } else {
                strudel::graph::ddl::parse(&read(data_path)?)?
            };
            let store = PagedStore::import(Path::new(dest), &graph)?;
            println!(
                "imported {} nodes / {} edges into {} (revision {}, {} pages)",
                graph.node_count(),
                graph.edge_count(),
                dest,
                store.revision(),
                store.page_count(),
            );
            Ok(())
        }
        ("info", [path]) => {
            let mut store = PagedStore::open(Path::new(path))?;
            let (nodes, edges, collections) = {
                let g = store.graph()?;
                (g.node_count(), g.edge_count(), g.collection_names().len())
            };
            println!(
                "revision {}: {} nodes, {} edges, {} collections",
                store.revision(),
                nodes,
                edges,
                collections,
            );
            println!(
                "pages {} ({} bytes), {} free, {} leaked; dirty since checkpoint: {} pages in {} segments",
                store.page_count(),
                store.page_count() as u64 * 4096,
                store.freelist_len(),
                store.leaked_pages(),
                store.dirty_pages(),
                store.dirty_segments(),
            );
            println!(
                "wal {} bytes, age {}s; group-commit window {:?}",
                store.wal_size(),
                store.wal_age_seconds(),
                store.group_commit_window(),
            );
            Ok(())
        }
        ("compact", [path]) => {
            let mut store = PagedStore::open(Path::new(path))?;
            let report = store.compact()?;
            println!(
                "compacted {}: {} -> {} pages",
                path, report.pages_before, report.pages_after
            );
            Ok(())
        }
        _ => Err("usage: strudel-cli store import <data.(ddl|bin)> <store.pdb> | info <store.pdb> | compact <store.pdb>".into()),
    }
}

fn cmd_demo(dir: &Path) -> Result<(), AnyError> {
    std::fs::create_dir_all(dir)?;
    // Atomic per-file publication (same helper the site generator uses):
    // an interrupted demo write never leaves a torn file behind.
    let write = |name: &str, contents: &str| {
        strudel::graph::fsio::atomic_write_in(dir, name, contents.as_bytes())
    };
    write(
        "papers.bib",
        r#"@article{toplas97,
  title = {Specifying Representations of Machine Instructions},
  author = {Norman Ramsey and Mary Fernandez},
  year = 1997,
  journal = {TOPLAS},
  postscript = {papers/toplas97.ps.gz}
}
@inproceedings{icde98,
  title = {Optimizing Regular Path Expressions},
  author = {Mary Fernandez and Dan Suciu},
  year = 1998,
  booktitle = {Proc. of ICDE},
  postscript = {papers/icde98.ps.gz}
}
"#,
    )?;
    write(
        "site.struql",
        r#"CREATE HomePage()
COLLECT Roots(HomePage())
{
  WHERE Publications(x), x -> l -> v
  CREATE Paper(x)
  LINK Paper(x) -> l -> v,
       HomePage() -> "Paper" -> Paper(x)
}
"#,
    )?;
    write(
        "home.tmpl",
        r#"<html><body><h1>Publications</h1>
<SFOR p IN @Paper ORDER=descend KEY=@year LIST=ul><SFMT @p LINK=@p.title></SFOR>
</body></html>"#,
    )?;
    write(
        "paper.tmpl",
        r#"<html><body><h1><SFMT @title></h1>
<p>By <SFMT @author ALL DELIM=", "> (<SFMT @year>).</p>
<p><SFMT @postscript LINK="PostScript"></p>
</body></html>"#,
    )?;
    write(
        "demo.site",
        "source bibtex bibliography papers.bib\nquery site.struql\ntemplate HomePage home.tmpl\ntemplate Paper paper.tmpl\nroot HomePage\noutput out/\n",
    )?;
    strudel::graph::fsio::fsync_dir(dir)?;
    println!(
        "demo written; try: strudel-cli build {}",
        dir.join("demo.site").display()
    );
    Ok(())
}
