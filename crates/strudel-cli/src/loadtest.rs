//! `strudel-cli loadtest` — replay zipfian page popularity against the
//! click-time server and record latency percentiles and throughput.
//!
//! The harness binds an in-process [`Server`] on an ephemeral port, crawls
//! the served site to discover the page universe, validates pipelining
//! (one connection, a burst of requests, responses must come back in order
//! and byte-identical to serial fetches), then runs one timed phase per
//! requested connection count. Each phase drives keep-alive connections
//! whose page choices follow a zipfian popularity distribution — a few hot
//! pages, a long cold tail — which is how real site traffic exercises the
//! expansion cache.
//!
//! Results land in a JSON report (default `BENCH_serve.json`): p50/p99/p999
//! and max latency, throughput, error counts, and the server's own
//! keep-alive/admission counters for each phase.
//!
//! [`Server`]: strudel::serve::Server

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

type AnyError = Box<dyn std::error::Error>;

/// Everything one `loadtest` invocation is asked to do.
struct Options {
    conns: Vec<usize>,
    duration: Duration,
    zipf_s: f64,
    threads: usize,
    max_urls: usize,
    pipeline_depth: usize,
    seed: u64,
    out: String,
    threaded: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            conns: vec![4, 16],
            duration: Duration::from_millis(2000),
            zipf_s: 1.1,
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            max_urls: 64,
            pipeline_depth: 8,
            seed: 42,
            out: "BENCH_serve.json".to_string(),
            threaded: false,
        }
    }
}

fn parse_options(rest: &[String]) -> Result<Options, AnyError> {
    let mut o = Options::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = || -> Result<&String, AnyError> {
            it.next()
                .ok_or_else(|| format!("{arg} needs a value").into())
        };
        match arg.as_str() {
            "--conns" => {
                let v = value()?;
                o.conns = v
                    .split(',')
                    .map(|c| c.trim().parse::<usize>().map(|n| n.max(1)))
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--conns {v}: {e}"))?;
                if o.conns.is_empty() {
                    return Err("--conns needs at least one count".into());
                }
            }
            "--duration-ms" => o.duration = Duration::from_millis(value()?.parse()?),
            "--zipf" => o.zipf_s = value()?.parse()?,
            "--threads" => o.threads = value()?.parse::<usize>()?.max(1),
            "--max-urls" => o.max_urls = value()?.parse::<usize>()?.max(1),
            "--pipeline-depth" => o.pipeline_depth = value()?.parse::<usize>()?.max(2),
            "--seed" => o.seed = value()?.parse()?,
            "--out" => o.out = value()?.clone(),
            "--threaded" => o.threaded = true,
            s => return Err(format!("unknown argument {s}").into()),
        }
    }
    Ok(o)
}

/// Entry point for `strudel-cli loadtest <site.spec> [flags]`.
pub fn run(spec_path: &Path, rest: &[String]) -> Result<(), AnyError> {
    let opts = parse_options(rest)?;
    // Sample rate 0: no traces are promoted for export, but every request
    // still feeds the per-layer self-time histograms the report records —
    // this is also the cheapest tracing configuration, so the measured
    // latencies carry the recorder's always-on cost.
    strudel::obs::trace::enable(strudel::obs::trace::TraceConfig {
        sample_rate: 0.0,
        slow_ms: 0,
        ..Default::default()
    });
    let (mut s, _) = crate::load_system(spec_path)?;
    let dynamic = s.dynamic_site_with(strudel::site::CacheConfig::default())?;
    let config = strudel::serve::ServerConfig {
        threads: opts.threads,
        mode: if opts.threaded {
            strudel::serve::ServeMode::Threaded
        } else {
            strudel::serve::ServeMode::Event
        },
        ..Default::default()
    };
    let server = strudel::serve::Server::bind_with(dynamic, "127.0.0.1:0", config)?;
    let addr = server.addr()?;

    let mut report = Err("loadtest did not run".into());
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(None));
        report = drive(addr, &opts);
        let _ = fetch(addr, "/quit");
        serving.join().expect("server thread").expect("serve");
    });
    let report = report?;
    std::fs::write(&opts.out, &report)?;
    println!("wrote {}", opts.out);
    Ok(())
}

/// Runs every phase against the live server and renders the JSON report.
fn drive(addr: SocketAddr, opts: &Options) -> Result<String, AnyError> {
    let urls = crawl(addr, opts.max_urls)?;
    eprintln!("discovered {} urls", urls.len());

    // Pipelining is an event-mode feature: threaded mode answers one
    // request per connection and closes, so the burst check only applies
    // to the event loop.
    let depth = opts.pipeline_depth.min(urls.len().max(2));
    let pipeline = if opts.threaded {
        eprintln!("pipelining: skipped (threaded mode closes per request)");
        "null".to_string()
    } else {
        let garbled = pipeline_check(addr, &urls, depth)?;
        if garbled != 0 {
            return Err(format!("{garbled} pipelined responses dropped or garbled").into());
        }
        eprintln!("pipelining: {depth} requests on one connection, in order, 0 garbled");
        format!("{{\"depth\":{depth},\"garbled\":0}}")
    };

    let cum = zipf_cumulative(urls.len(), opts.zipf_s);
    let mut runs = Vec::new();
    for &conns in &opts.conns {
        let before = server_counters(addr)?;
        let phase = timed_phase(addr, &urls, &cum, conns, opts.duration, opts.seed)?;
        let after = server_counters(addr)?;
        eprintln!(
            "{} conns for {:?}: {} requests, {:.0} req/s, p50 {}us p99 {}us p999 {}us, {} 5xx",
            conns,
            opts.duration,
            phase.requests,
            phase.throughput_rps,
            phase.p50_us,
            phase.p99_us,
            phase.p999_us,
            phase.errors_5xx
        );
        runs.push(format!(
            concat!(
                "{{\"connections\":{},\"requests\":{},\"throughput_rps\":{:.1},",
                "\"latency_us\":{{\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}},",
                "\"errors_5xx\":{},\"errors_other\":{},\"reconnects\":{},",
                "\"keepalive_reuses\":{},\"admission_rejected\":{}}}"
            ),
            conns,
            phase.requests,
            phase.throughput_rps,
            phase.p50_us,
            phase.p99_us,
            phase.p999_us,
            phase.max_us,
            phase.errors_5xx,
            phase.errors_other,
            phase.reconnects,
            after.keepalive_reuses - before.keepalive_reuses,
            after.admission_rejected - before.admission_rejected,
        ));
    }
    // Per-layer self-time medians from the flight recorder: every request
    // the phases above drove fed these histograms (independent of the
    // sampling decision), so this is the per-layer latency breakdown of
    // the whole run.
    let layers = strudel::obs::trace::layer_quantiles()
        .iter()
        .map(|(name, p50, p99)| format!("\"{name}\":{{\"p50_us\":{p50},\"p99_us\":{p99}}}"))
        .collect::<Vec<_>>()
        .join(",");
    eprintln!(
        "per-layer self-time p50: {}",
        strudel::obs::trace::layer_quantiles()
            .iter()
            .map(|(name, p50, _)| format!("{name} {p50}us"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(format!(
        concat!(
            "{{\"benchmark\":\"serve_loadtest\",\"mode\":\"{}\",",
            "\"zipf_s\":{},\"duration_ms\":{},\"urls\":{},",
            "\"pipeline\":{},",
            "\"layer_self_us\":{{{}}},",
            "\"runs\":[{}]}}\n"
        ),
        if opts.threaded { "threaded" } else { "event" },
        opts.zipf_s,
        opts.duration.as_millis(),
        urls.len(),
        pipeline,
        layers,
        runs.join(",")
    ))
}

// ---- site discovery --------------------------------------------------------

/// Breadth-first crawl from `/` over local `href`s, bounded by `max_urls`.
fn crawl(addr: SocketAddr, max_urls: usize) -> Result<Vec<String>, AnyError> {
    let mut urls = vec!["/".to_string()];
    let mut seen: std::collections::BTreeSet<String> = urls.iter().cloned().collect();
    let mut next = 0;
    while next < urls.len() && urls.len() < max_urls {
        let body = fetch(addr, &urls[next])?;
        next += 1;
        for part in body.split("href=\"").skip(1) {
            let Some(end) = part.find('"') else { continue };
            let href = &part[..end];
            if href.starts_with("/page/") && !seen.contains(href) && urls.len() < max_urls {
                seen.insert(href.to_string());
                urls.push(href.to_string());
            }
        }
    }
    Ok(urls)
}

// ---- zipfian sampling ------------------------------------------------------

/// Cumulative zipfian weights: url rank `i` gets weight `1/(i+1)^s`.
fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(s);
        cum.push(total);
    }
    for c in &mut cum {
        *c /= total;
    }
    cum
}

/// Samples a rank from the cumulative distribution.
fn zipf_sample(cum: &[f64], rng: &mut StdRng) -> usize {
    let r = rng.gen_range(0.0..1.0);
    cum.partition_point(|&c| c < r).min(cum.len() - 1)
}

// ---- HTTP client -----------------------------------------------------------

/// One-shot `Connection: close` fetch; returns the whole response text.
fn fetch(addr: SocketAddr, path: &str) -> Result<String, AnyError> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    s.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: lt\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)?;
    Ok(buf)
}

/// One framed response pulled off a keep-alive connection: status, body,
/// and whether the server asked to close. Leftover bytes (pipelined
/// successors) stay in `carry`.
fn read_response(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> std::io::Result<(u16, Vec<u8>, bool)> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(end) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&carry[..end]).into_owned();
            let status: u16 = head
                .strip_prefix("HTTP/1.1 ")
                .and_then(|r| r.get(..3))
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no content length"))?;
            let close = head.contains("Connection: close");
            let need = end + 4 + len;
            while carry.len() < need {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "eof mid body",
                    ));
                }
                carry.extend_from_slice(&chunk[..n]);
            }
            let body = carry[end + 4..need].to_vec();
            carry.drain(..need);
            return Ok((status, body, close));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "eof mid head",
            ));
        }
        carry.extend_from_slice(&chunk[..n]);
    }
}

// ---- pipelining validation -------------------------------------------------

/// Sends `depth` distinct requests in one burst on one connection and
/// checks the responses come back in order, each byte-identical to a
/// serial `Connection: close` fetch of the same path. Returns the number
/// of dropped or mismatched responses.
fn pipeline_check(addr: SocketAddr, urls: &[String], depth: usize) -> Result<usize, AnyError> {
    let picks: Vec<&String> = (0..depth).map(|i| &urls[i % urls.len()]).collect();
    let serial: Vec<String> = picks
        .iter()
        .map(|u| fetch(addr, u).map(|r| body_of(&r)))
        .collect::<Result<_, _>>()?;

    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let burst: String = picks
        .iter()
        .map(|u| format!("GET {u} HTTP/1.1\r\nHost: lt\r\n\r\n"))
        .collect();
    stream.write_all(burst.as_bytes())?;

    let mut carry = Vec::new();
    let mut garbled = 0;
    for expected in &serial {
        match read_response(&mut stream, &mut carry) {
            Ok((200, body, _)) if body == expected.as_bytes() => {}
            _ => garbled += 1,
        }
    }
    Ok(garbled)
}

fn body_of(response: &str) -> String {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

// ---- timed phases ----------------------------------------------------------

struct PhaseResult {
    requests: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
    errors_5xx: u64,
    errors_other: u64,
    reconnects: u64,
}

/// Drives `conns` keep-alive connections for `duration`, each replaying
/// zipfian page picks, and aggregates their latencies.
fn timed_phase(
    addr: SocketAddr,
    urls: &[String],
    cum: &[f64],
    conns: usize,
    duration: Duration,
    seed: u64,
) -> Result<PhaseResult, AnyError> {
    let reconnects = AtomicU64::new(0);
    let started = Instant::now();
    let deadline = started + duration;
    let mut latencies: Vec<u64> = Vec::new();
    let (mut errors_5xx, mut errors_other) = (0u64, 0u64);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..conns {
            let reconnects = &reconnects;
            handles.push(scope.spawn(move || {
                client_loop(
                    addr,
                    urls,
                    cum,
                    deadline,
                    seed ^ (c as u64) << 17,
                    reconnects,
                )
            }));
        }
        for h in handles {
            let r = h.join().expect("client thread");
            latencies.extend(r.latencies_us);
            errors_5xx += r.errors_5xx;
            errors_other += r.errors_other;
        }
    });
    let elapsed = started.elapsed();

    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    Ok(PhaseResult {
        requests: latencies.len() as u64,
        throughput_rps: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        max_us: latencies.last().copied().unwrap_or(0),
        errors_5xx,
        errors_other,
        reconnects: reconnects.load(Ordering::Relaxed),
    })
}

struct ClientResult {
    latencies_us: Vec<u64>,
    errors_5xx: u64,
    errors_other: u64,
}

fn client_loop(
    addr: SocketAddr,
    urls: &[String],
    cum: &[f64],
    deadline: Instant,
    seed: u64,
    reconnects: &AtomicU64,
) -> ClientResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = ClientResult {
        latencies_us: Vec::new(),
        errors_5xx: 0,
        errors_other: 0,
    };
    let mut conn: Option<(TcpStream, Vec<u8>)> = None;
    let mut first_connect = true;
    while Instant::now() < deadline {
        let url = &urls[zipf_sample(cum, &mut rng)];
        if conn.is_none() {
            let Ok(stream) = TcpStream::connect(addr) else {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let _ = stream.set_nodelay(true);
            if !first_connect {
                reconnects.fetch_add(1, Ordering::Relaxed);
            }
            first_connect = false;
            conn = Some((stream, Vec::new()));
        }
        let (stream, carry) = conn.as_mut().unwrap();
        let t0 = Instant::now();
        let answered = stream
            .write_all(format!("GET {url} HTTP/1.1\r\nHost: lt\r\n\r\n").as_bytes())
            .and_then(|()| read_response(stream, carry));
        match answered {
            Ok((status, _, close)) => {
                out.latencies_us
                    .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                match status {
                    200..=399 => {}
                    500..=599 => out.errors_5xx += 1,
                    _ => out.errors_other += 1,
                }
                if close {
                    conn = None;
                }
            }
            Err(_) => {
                // Connection died (admission 503 already counted by the
                // server; a keep-alive cut mid-request is a reconnect).
                conn = None;
            }
        }
    }
    out
}

// ---- server counter snapshots ---------------------------------------------

struct Counters {
    keepalive_reuses: u64,
    admission_rejected: u64,
}

/// Pulls the two connection counters the report diffs out of `/stats`.
fn server_counters(addr: SocketAddr) -> Result<Counters, AnyError> {
    let stats = fetch(addr, "/stats")?;
    let field = |key: &str| -> u64 {
        stats
            .split_once(&format!("\"{key}\":"))
            .map(|(_, rest)| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
            })
            .and_then(|d| d.parse().ok())
            .unwrap_or(0)
    };
    Ok(Counters {
        keepalive_reuses: field("keepalive_reuses"),
        admission_rejected: field("admission_rejected"),
    })
}
