//! The site-specification file: one text file wiring sources, queries,
//! templates, and roots — the way a site builder drives STRUDEL without
//! writing Rust.
//!
//! ```text
//! # homepage.site
//! source bibtex  bibliography  papers.bib
//! source ddl     personal      me.ddl
//! source csv     People        people.csv
//! fk     People.dept -> Departments.code
//! mapping bibliography mappings/pubs.struql     # optional GAV mapping
//! query  site.struql
//! template RootPage   templates/root.tmpl
//! template-named fancy templates/fancy.tmpl
//! template-default    templates/default.tmpl
//! root   RootPage
//! output out/
//! ```
//!
//! Lines are `keyword args…`; `#` starts a comment; paths are resolved
//! relative to the spec file.

use std::path::{Path, PathBuf};

/// A parsed site specification.
#[derive(Debug, Default)]
pub struct Spec {
    /// `(kind, name, path)` — kind ∈ bibtex | ddl | csv | html | xml | store
    /// (`store` opens a paged graph store file, e.g. one written by
    /// `strudel-cli store import`).
    pub sources: Vec<(String, String, PathBuf)>,
    /// Foreign keys for CSV sources: `(table, column, target_table, key)`.
    pub fks: Vec<(String, String, String, String)>,
    /// GAV mappings: `(source name, query path)`.
    pub mappings: Vec<(String, PathBuf)>,
    /// Site-definition query files, in order.
    pub queries: Vec<PathBuf>,
    /// Collection (Skolem function) templates: `(name, path)`.
    pub templates: Vec<(String, PathBuf)>,
    /// Named templates (selected by the `HTML-template` attribute).
    pub named_templates: Vec<(String, PathBuf)>,
    /// Default template path.
    pub default_template: Option<PathBuf>,
    /// Root Skolem functions.
    pub roots: Vec<String>,
    /// Output directory.
    pub output: Option<PathBuf>,
}

/// Parses a specification from text; `base` resolves relative paths.
pub fn parse(text: &str, base: &Path) -> Result<Spec, String> {
    let mut spec = Spec::default();
    let resolve = |p: &str| -> PathBuf {
        let path = Path::new(p);
        if path.is_absolute() {
            path.to_path_buf()
        } else {
            base.join(path)
        }
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        let rest: Vec<&str> = words.collect();
        let err = |msg: &str| format!("line {}: {msg}: `{raw}`", lineno + 1);
        match keyword {
            "source" => {
                let [kind, name, path] = rest[..] else {
                    return Err(err("expected `source <kind> <name> <path>`"));
                };
                if !matches!(kind, "bibtex" | "ddl" | "csv" | "html" | "xml" | "store") {
                    return Err(err("source kind must be bibtex|ddl|csv|html|xml|store"));
                }
                spec.sources
                    .push((kind.to_string(), name.to_string(), resolve(path)));
            }
            "fk" => {
                // `fk People.dept -> Departments.code`
                let [from, arrow, to] = rest[..] else {
                    return Err(err("expected `fk Table.column -> Table.key`"));
                };
                if arrow != "->" {
                    return Err(err("expected `->`"));
                }
                let (t1, c1) = from.split_once('.').ok_or_else(|| err("bad fk source"))?;
                let (t2, c2) = to.split_once('.').ok_or_else(|| err("bad fk target"))?;
                spec.fks.push((t1.into(), c1.into(), t2.into(), c2.into()));
            }
            "mapping" => {
                let [source, path] = rest[..] else {
                    return Err(err("expected `mapping <source> <query path>`"));
                };
                spec.mappings.push((source.to_string(), resolve(path)));
            }
            "query" => {
                let [path] = rest[..] else {
                    return Err(err("expected `query <path>`"));
                };
                spec.queries.push(resolve(path));
            }
            "template" => {
                let [name, path] = rest[..] else {
                    return Err(err("expected `template <SkolemFn> <path>`"));
                };
                spec.templates.push((name.to_string(), resolve(path)));
            }
            "template-named" => {
                let [name, path] = rest[..] else {
                    return Err(err("expected `template-named <name> <path>`"));
                };
                spec.named_templates.push((name.to_string(), resolve(path)));
            }
            "template-default" => {
                let [path] = rest[..] else {
                    return Err(err("expected `template-default <path>`"));
                };
                spec.default_template = Some(resolve(path));
            }
            "root" => {
                if rest.is_empty() {
                    return Err(err("expected `root <SkolemFn>…`"));
                }
                spec.roots.extend(rest.iter().map(|s| s.to_string()));
            }
            "output" => {
                let [path] = rest[..] else {
                    return Err(err("expected `output <dir>`"));
                };
                spec.output = Some(resolve(path));
            }
            other => return Err(err(&format!("unknown keyword `{other}`"))),
        }
    }
    if spec.queries.is_empty() {
        return Err("spec declares no `query`".into());
    }
    if spec.roots.is_empty() {
        return Err("spec declares no `root`".into());
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
source bibtex bibliography papers.bib
source csv People people.csv
fk People.dept -> Departments.code
query site.struql
template RootPage root.tmpl
template-default default.tmpl
root RootPage AbstractsPage
output out/
";

    #[test]
    fn parses_full_spec() {
        let spec = parse(SAMPLE, Path::new("/base")).unwrap();
        assert_eq!(spec.sources.len(), 2);
        assert_eq!(spec.sources[0].0, "bibtex");
        assert_eq!(spec.sources[0].2, Path::new("/base/papers.bib"));
        assert_eq!(
            spec.fks,
            vec![(
                "People".into(),
                "dept".into(),
                "Departments".into(),
                "code".into()
            )]
        );
        assert_eq!(spec.queries, vec![PathBuf::from("/base/site.struql")]);
        assert_eq!(spec.roots, vec!["RootPage", "AbstractsPage"]);
        assert_eq!(spec.output, Some(PathBuf::from("/base/out/")));
    }

    #[test]
    fn store_source_kind_accepted() {
        let spec = parse(
            "source store warehouse data.pdb\nquery q\nroot R",
            Path::new("/base"),
        )
        .unwrap();
        assert_eq!(
            spec.sources,
            vec![(
                "store".to_string(),
                "warehouse".to_string(),
                PathBuf::from("/base/data.pdb")
            )]
        );
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(parse("source weird x y\nquery q\nroot R", Path::new(".")).is_err());
        assert!(parse("fk nope\nquery q\nroot R", Path::new(".")).is_err());
        assert!(parse("frobnicate\nquery q\nroot R", Path::new(".")).is_err());
    }

    #[test]
    fn requires_query_and_root() {
        assert!(parse("root R", Path::new(".")).is_err());
        assert!(parse("query q", Path::new(".")).is_err());
    }

    #[test]
    fn absolute_paths_kept() {
        let spec = parse("query /abs/q.struql\nroot R", Path::new("/base")).unwrap();
        assert_eq!(spec.queries[0], PathBuf::from("/abs/q.struql"));
    }
}
