//! End-to-end tests of the `strudel-cli` binary: demo scaffolding, build,
//! schema, explain, verify, and ad-hoc queries, all through the real
//! executable.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_strudel-cli")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn strudel-cli")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strudel_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn demo_spec(dir: &Path) -> String {
    let out = run(&["demo", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir.join("demo.site").to_str().unwrap().to_string()
}

#[test]
fn demo_then_build_produces_a_browsable_site() {
    let dir = tmpdir("build");
    let spec = demo_spec(&dir);
    let out = run(&["build", &spec]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("built 3 pages"), "{stdout}");
    let home = std::fs::read_to_string(dir.join("out/homepage.html")).unwrap();
    assert!(home.contains("Publications"));
    // Link targets exist on disk.
    for href in home.split("href=\"").skip(1) {
        let target = &href[..href.find('"').unwrap()];
        if target.ends_with(".html") {
            assert!(dir.join("out").join(target).exists(), "missing {target}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn schema_prints_dot() {
    let dir = tmpdir("schema");
    let spec = demo_spec(&dir);
    let out = run(&["schema", &spec]);
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("HomePage"));
    assert!(dot.contains("Paper"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explain_shows_plans() {
    let dir = tmpdir("explain");
    let spec = demo_spec(&dir);
    let out = run(&["explain", &spec]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Plans print the compiled physical operator per node plus estimates.
    assert!(
        text.contains("collection-scan") || text.contains("label-forward"),
        "{text}"
    );
    assert!(text.contains("est"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn verify_passes_and_fails_appropriately() {
    let dir = tmpdir("verify");
    let spec = demo_spec(&dir);
    let ok = run(&["verify", &spec, "reachable-from", "HomePage"]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("Satisfied"));

    let bad = run(&["verify", &spec, "every", "HomePage", "-Missing->", "Paper"]);
    assert!(
        !bad.status.success(),
        "a violated constraint must exit nonzero"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn adhoc_query_roundtrips_ddl() {
    let dir = tmpdir("query");
    std::fs::write(
        dir.join("d.ddl"),
        "object a in C { x 1 }\nobject b in C { x 2 }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("q.struql"),
        "WHERE C(v), v -> \"x\" -> y CREATE P(v) LINK P(v) -> \"X\" -> y COLLECT Out(P(v))\n",
    )
    .unwrap();
    let out = run(&[
        "query",
        dir.join("d.ddl").to_str().unwrap(),
        dir.join("q.struql").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ddl = String::from_utf8_lossy(&out.stdout);
    assert!(ddl.contains("collection Out"), "{ddl}");
    // The printed DDL re-parses through another `query` invocation.
    std::fs::write(dir.join("out.ddl"), ddl.as_bytes()).unwrap();
    std::fs::write(dir.join("q2.struql"), "WHERE Out(x) COLLECT O2(x)\n").unwrap();
    let out2 = run(&[
        "query",
        dir.join("out.ddl").to_str().unwrap(),
        dir.join("q2.struql").to_str().unwrap(),
    ]);
    assert!(
        out2.status.success(),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_usage_exits_with_code_2() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = run(&["frobnicate", "x"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_spec_file_reports_error() {
    let out = run(&["build", "/nonexistent/site.spec"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
