//! Prometheus text exposition format (version 0.0.4).
//!
//! Hand-rolled writer for the subset the `/metrics` endpoint needs:
//! `# HELP` / `# TYPE` comment lines, counter/gauge samples with optional
//! labels, and histogram families (`_bucket{le=…}`, `_sum`, `_count`).
//! Escaping follows the exposition-format spec: help text escapes `\` and
//! newline; label values additionally escape `"`.

use crate::hist::HistogramSnapshot;

/// Escapes a HELP comment: `\` → `\\`, newline → `\n`.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a sample value: integral values print without a fraction
/// (`17`, not `17.0`), everything else in shortest `f64` form.
pub fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A Prometheus text-exposition builder.
#[derive(Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is `counter`, `gauge` or `histogram`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        self
    }

    /// Writes one sample line, with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out
                    .push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
        self
    }

    /// Writes a counter family with a single unlabelled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.family(name, "counter", help)
            .sample(name, &[], value as f64)
    }

    /// Writes a gauge family with a single unlabelled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.family(name, "gauge", help).sample(name, &[], value)
    }

    /// Writes a full histogram family from a snapshot of microsecond
    /// buckets, exposed in **seconds** (the Prometheus base unit):
    /// cumulative `_bucket{le="…"}` lines ending at `le="+Inf"`, then
    /// `_sum` and `_count`.
    pub fn histogram_seconds(
        &mut self,
        name: &str,
        help: &str,
        snap: &HistogramSnapshot,
    ) -> &mut Self {
        self.family(name, "histogram", help);
        let bucket = format!("{name}_bucket");
        for (bound, cum) in snap.cumulative() {
            let le = match bound {
                Some(us) => fmt_value(us as f64 / 1e6),
                None => "+Inf".to_string(),
            };
            self.sample(&bucket, &[("le", &le)], cum as f64);
        }
        self.sample(&format!("{name}_sum"), &[], snap.sum_us as f64 / 1e6);
        self.sample(&format!("{name}_count"), &[], snap.count as f64);
        self
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Whether `name` is a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn escapes_follow_the_exposition_spec() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(
            escape_label_value("say \"hi\"\\now\n"),
            "say \\\"hi\\\"\\\\now\\n"
        );
        // Quotes are legal in help text unescaped.
        assert_eq!(escape_help("\"quoted\""), "\"quoted\"");
    }

    #[test]
    fn value_formatting_drops_integral_fractions() {
        assert_eq!(fmt_value(17.0), "17");
        assert_eq!(fmt_value(0.0001), "0.0001");
        assert_eq!(fmt_value(2.5), "2.5");
        assert_eq!(fmt_value(-3.0), "-3");
    }

    #[test]
    fn counter_and_gauge_families_are_well_formed() {
        let mut p = PromText::new();
        p.counter("strudel_requests_total", "Requests answered.", 42);
        p.gauge("strudel_uptime_seconds", "Seconds since bind.", 7.5);
        let text = p.finish();
        assert_eq!(
            text,
            "# HELP strudel_requests_total Requests answered.\n\
             # TYPE strudel_requests_total counter\n\
             strudel_requests_total 42\n\
             # HELP strudel_uptime_seconds Seconds since bind.\n\
             # TYPE strudel_uptime_seconds gauge\n\
             strudel_uptime_seconds 7.5\n"
        );
    }

    #[test]
    fn labelled_samples_escape_their_values() {
        let mut p = PromText::new();
        p.sample("m", &[("path", "a\"b\\c"), ("code", "200")], 1.0);
        assert_eq!(p.finish(), "m{path=\"a\\\"b\\\\c\",code=\"200\"} 1\n");
    }

    #[test]
    fn histogram_family_has_cumulative_buckets_sum_and_count() {
        let h = Histogram::new();
        h.record(80);
        h.record(80);
        h.record(300);
        let mut p = PromText::new();
        p.histogram_seconds(
            "strudel_request_duration_seconds",
            "Latency.",
            &h.snapshot(),
        );
        let text = p.finish();
        assert!(text.contains("# TYPE strudel_request_duration_seconds histogram"));
        assert!(text.contains("strudel_request_duration_seconds_bucket{le=\"0.0001\"} 2\n"));
        assert!(text.contains("strudel_request_duration_seconds_bucket{le=\"0.0005\"} 3\n"));
        assert!(text.contains("strudel_request_duration_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("strudel_request_duration_seconds_sum 0.00046\n"));
        assert!(text.contains("strudel_request_duration_seconds_count 3\n"));
        // Buckets are cumulative: each le count ≥ the previous.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("strudel_requests_total"));
        assert!(valid_metric_name(":ns:metric"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }
}
