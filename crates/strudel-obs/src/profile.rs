//! Per-condition query execution profiles.
//!
//! When an evaluation runs with profiling enabled, the evaluator records
//! one [`CondProfile`] per applied condition: the relation cardinalities
//! around the physical operator, which strategy the operator chose (hash
//! probe vs. scan vs. in-place semi-join, …), how the regular-path memo
//! cache behaved, and how the row loop was chunked across workers. The CLI
//! renders the list as an aligned table ([`render_profile_table`]) and as
//! JSON ([`render_profile_json`]).

use crate::json;

/// The execution profile of one applied condition.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct CondProfile {
    /// The block the condition belongs to (e.g. `b0.1`); empty for bare
    /// conjunction evaluation.
    pub block: String,
    /// The condition, in query syntax.
    pub condition: String,
    /// The physical strategy the operator chose (see docs/OBSERVABILITY.md
    /// for the catalog).
    pub strategy: &'static str,
    /// Rows in the bindings relation entering the operator.
    pub rows_in: u64,
    /// Rows leaving it.
    pub rows_out: u64,
    /// Wall-clock time applying the condition, microseconds.
    pub elapsed_us: u64,
    /// Path-cache (memo) hits while applying this condition, including
    /// per-worker caches.
    pub cache_hits: u64,
    /// Path-cache misses likewise.
    pub cache_misses: u64,
    /// Per-worker chunk timings `(worker, microseconds)` for row loops the
    /// parallel pool chunked; empty when the operator ran on the calling
    /// thread.
    pub chunks: Vec<(usize, u64)>,
}

/// Renders profiles as an aligned human-readable table.
pub fn render_profile_table(profile: &[CondProfile]) -> String {
    let header = [
        "#",
        "block",
        "condition",
        "strategy",
        "rows in",
        "rows out",
        "us",
        "cache h/m",
        "chunks",
    ];
    let mut rows: Vec<[String; 9]> = Vec::with_capacity(profile.len());
    for (i, p) in profile.iter().enumerate() {
        let chunks = if p.chunks.is_empty() {
            "-".to_string()
        } else {
            p.chunks
                .iter()
                .map(|(w, us)| format!("w{w}:{us}us"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        rows.push([
            i.to_string(),
            p.block.clone(),
            p.condition.clone(),
            p.strategy.to_string(),
            p.rows_in.to_string(),
            p.rows_out.to_string(),
            p.elapsed_us.to_string(),
            format!("{}/{}", p.cache_hits, p.cache_misses),
            chunks,
        ]);
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let mut out = render_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Renders profiles as a JSON array (one object per condition, in
/// application order).
pub fn render_profile_json(profile: &[CondProfile]) -> String {
    let mut out = String::from("[");
    for (i, p) in profile.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chunks = p
            .chunks
            .iter()
            .map(|(w, us)| format!("{{\"worker\":{w},\"us\":{us}}}"))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            concat!(
                "{{\"block\":\"{}\",\"condition\":\"{}\",\"strategy\":\"{}\",",
                "\"rows_in\":{},\"rows_out\":{},\"elapsed_us\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"chunks\":[{}]}}"
            ),
            json::escape(&p.block),
            json::escape(&p.condition),
            json::escape(p.strategy),
            p.rows_in,
            p.rows_out,
            p.elapsed_us,
            p.cache_hits,
            p.cache_misses,
            chunks,
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<CondProfile> {
        vec![
            CondProfile {
                block: "b0".into(),
                condition: "Articles(a)".into(),
                strategy: "collection-scan",
                rows_in: 1,
                rows_out: 800,
                elapsed_us: 42,
                ..Default::default()
            },
            CondProfile {
                block: "b0".into(),
                condition: "a -> l -> v".into(),
                strategy: "arc-forward",
                rows_in: 800,
                rows_out: 4000,
                elapsed_us: 310,
                cache_hits: 2,
                cache_misses: 1,
                chunks: vec![(0, 160), (1, 150)],
            },
        ]
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let t = render_profile_table(&sample());
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with('#'));
        assert!(lines[0].contains("strategy"));
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[2].contains("collection-scan"));
        assert!(lines[3].contains("w0:160us w1:150us"));
        // Alignment: "rows in" column starts at the same offset everywhere.
        let col = lines[0].find("rows in").unwrap();
        assert_eq!(&lines[2][col - 2..col], "  ");
    }

    #[test]
    fn json_round_trips_the_fields() {
        let j = render_profile_json(&sample());
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert!(j.contains("\"strategy\":\"arc-forward\""));
        assert!(j.contains("\"rows_out\":4000"));
        assert!(j.contains("{\"worker\":1,\"us\":150}"));
        assert_eq!(render_profile_json(&[]), "[]");
    }
}
