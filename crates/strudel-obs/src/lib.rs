//! Observability core for the STRUDEL pipeline.
//!
//! The paper's system spans wrappers, a mediator, StruQL evaluation, site
//! construction, HTML generation and click-time serving; this crate is the
//! shared vocabulary those layers use to explain themselves: monotonic
//! [`Counter`]s, lock-free fixed-bucket [`Histogram`]s, per-condition query
//! profiles ([`CondProfile`]), phase timing ([`Timer`], [`Phases`]),
//! Prometheus text exposition ([`PromText`]) and request-scoped tracing
//! spans recorded into a lock-free flight recorder ([`trace`]).
//!
//! Design constraints (DESIGN.md §10):
//!
//! * **No dependencies.** Only `std`, like the rest of the workspace.
//! * **Near-zero cost when disabled.** Profiling is opt-in per evaluation;
//!   the disabled path is a branch on a `bool` per *condition* (not per
//!   row), and [`Timer::start_if`] compiles to `None` without reading the
//!   clock. Always-on counters are single relaxed atomic increments.
//! * **Lock-free recording.** [`Histogram::record`] is a handful of relaxed
//!   atomic operations — no mutex, so concurrent recorders can never tear
//!   each other's samples (the race the old serve-side reservoir had).

mod hist;
mod profile;
mod prom;

pub mod json;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_US};
pub use profile::{render_profile_json, render_profile_table, CondProfile};
pub use prom::{escape_help, escape_label_value, fmt_value, valid_metric_name, PromText};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing counter, safe to bump from any thread.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A span timer whose disabled form never reads the clock.
///
/// ```
/// # use strudel_obs::Timer;
/// let t = Timer::start_if(false);
/// assert_eq!(t.elapsed_us(), 0); // no clock read happened
/// let t = Timer::start();
/// let _us = t.elapsed_us();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Starts a running timer.
    pub fn start() -> Self {
        Timer(Some(Instant::now()))
    }

    /// Starts a timer only when `enabled`; otherwise the timer is inert and
    /// [`Timer::elapsed_us`] reports 0 without touching the clock.
    pub fn start_if(enabled: bool) -> Self {
        Timer(enabled.then(Instant::now))
    }

    /// Whether this timer is actually running.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since the timer started (0 when inert).
    pub fn elapsed_us(&self) -> u64 {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

/// An ordered list of named phase durations — the shape of
/// `build --timings` output.
#[derive(Default, Clone, Debug)]
pub struct Phases {
    entries: Vec<(String, u64)>,
}

impl Phases {
    /// An empty phase list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a phase duration in microseconds. Phases with the same name
    /// accumulate.
    pub fn add(&mut self, name: &str, us: u64) {
        if let Some((_, v)) = self.entries.iter_mut().find(|(n, _)| n == name) {
            *v += us;
        } else {
            self.entries.push((name.to_string(), us));
        }
    }

    /// Times `f`, recording its duration under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t = Timer::start();
        let r = f();
        self.add(name, t.elapsed_us());
        r
    }

    /// The recorded `(name, microseconds)` pairs, in insertion order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// The sum of all recorded phases, microseconds.
    pub fn total_us(&self) -> u64 {
        self.entries.iter().map(|(_, us)| *us).sum()
    }

    /// The phases as a JSON object in insertion order:
    /// `{"refresh_us":12,"eval_us":345,…}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, us)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{us}", json::escape(name)));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn disabled_timer_reports_zero() {
        let t = Timer::start_if(false);
        assert!(!t.enabled());
        assert_eq!(t.elapsed_us(), 0);
        assert!(Timer::start_if(true).enabled());
    }

    #[test]
    fn phases_accumulate_and_serialize() {
        let mut p = Phases::new();
        p.add("eval", 10);
        p.add("render", 5);
        p.add("eval", 7);
        assert_eq!(p.entries(), &[("eval".into(), 17), ("render".into(), 5)]);
        assert_eq!(p.total_us(), 22);
        assert_eq!(p.to_json(), r#"{"eval":17,"render":5}"#);
        let got = p.time("timed", || 42);
        assert_eq!(got, 42);
        assert_eq!(p.entries().len(), 3);
    }
}
