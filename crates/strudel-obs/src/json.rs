//! Minimal JSON string escaping for the hand-rolled JSON the workspace
//! emits (`/stats`, `build --timings`, profile output), plus a small
//! recursive-descent [`parse`]r used by `strudel-cli trace` (to read
//! `/debug/traces` back from a running server) and by the tests that
//! assert the Chrome trace-event export round-trips as valid JSON. No
//! serializer — callers assemble objects themselves and only need string
//! safety.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Returns `Err` with a byte offset and
/// message on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Value::Number),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar: find the next char boundary.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected value at byte {start}"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::{parse, Value};

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(super::escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(super::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(super::escape("\u{1}"), "\\u0001");
        assert_eq!(super::escape("naïve"), "naïve");
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse(r#""a\"b\nA""#).unwrap(),
            Value::String("a\"b\nA".into())
        );
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Object(vec![])));
    }

    #[test]
    fn escape_then_parse_round_trips() {
        let raw = "quote\" slash\\ tab\t ünï";
        let doc = format!("{{\"k\":\"{}\"}}", super::escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
