//! Minimal JSON string escaping for the hand-rolled JSON the workspace
//! emits (`/stats`, `build --timings`, profile output). No serializer —
//! callers assemble objects themselves and only need string safety.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(super::escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(super::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(super::escape("\u{1}"), "\\u0001");
        assert_eq!(super::escape("naïve"), "naïve");
    }
}
