//! A lock-free fixed-bucket latency histogram.
//!
//! Replaces the serve-side "clone + sort a 4096-sample reservoir" quantile
//! estimator: recording is a few relaxed atomic adds (no mutex, no slot
//! index to race on), reading is O(buckets), and memory is constant
//! regardless of traffic. Quantiles become *estimates* — the upper bound of
//! the bucket the requested rank falls in, clamped to the exact observed
//! maximum — which is the standard Prometheus-histogram trade-off and is
//! documented in docs/OBSERVABILITY.md.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive, microseconds) of the finite buckets. Chosen to
/// give ~2–2.5× resolution steps from 5µs to 5s, bracketing everything
/// from an event-mode keep-alive hit (p50 ~25µs) or a per-layer trace
/// self-time up to a pathological cold click; an implicit +Inf bucket
/// catches the rest.
pub const BUCKET_BOUNDS_US: [u64; 19] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000,
];

const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1; // + the +Inf bucket

/// A fixed-bucket histogram of microsecond durations.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration. Lock-free: concurrent recorders only issue
    /// relaxed atomic adds, so no interleaving can lose or overwrite a
    /// sample. A value exactly equal to a bucket bound counts into that
    /// bucket (`le` semantics).
    pub fn record(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and aggregates. The total
    /// count is derived from the bucket counts themselves, so the snapshot's
    /// `count` always equals the sum of its `buckets` even while recorders
    /// are running.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A consistent read of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; index `i` holds samples with
    /// `value <= BUCKET_BOUNDS_US[i]` (and above the previous bound), the
    /// final slot is the +Inf bucket.
    pub buckets: [u64; BUCKETS],
    /// Total samples (always the sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded durations, microseconds.
    pub sum_us: u64,
    /// Largest recorded duration, microseconds (exact, not bucketed).
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Quantile estimate in microseconds. `q` is clamped to `[0, 1]`.
    ///
    /// Returns 0 for an empty histogram. Otherwise: the rank
    /// `ceil(q · count)` (at least 1) is located in the cumulative bucket
    /// counts and the answer is that bucket's upper bound, clamped to the
    /// exact observed maximum — so a histogram holding a single sample
    /// reports that sample's bucket (or the sample itself if its bucket
    /// bound exceeds it) at every quantile, and the estimate can never
    /// exceed the true maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let upper = BUCKET_BOUNDS_US.get(i).copied().unwrap_or(self.max_us);
                return upper.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Cumulative counts per finite bucket bound, plus the +Inf total —
    /// `(bound_us, samples ≤ bound)` pairs in the Prometheus `le` shape.
    pub fn cumulative(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            cum += c;
            (BUCKET_BOUNDS_US.get(i).copied(), cum)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum_us, 0);
        assert_eq!(s.max_us, 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0);
        }
    }

    #[test]
    fn single_sample_reports_itself_at_every_quantile() {
        let h = Histogram::new();
        h.record(300);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_us, 300);
        assert_eq!(s.max_us, 300);
        // 300µs falls in the (250, 500] bucket; the max clamp turns the
        // bucket's 500µs upper bound back into the exact sample.
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(s.quantile(q), 300);
        }
    }

    #[test]
    fn values_on_an_exact_bucket_bound_stay_in_that_bucket() {
        let h = Histogram::new();
        for &b in &BUCKET_BOUNDS_US {
            h.record(b);
        }
        let s = h.snapshot();
        // One sample per finite bucket, none spilled to +Inf.
        assert_eq!(s.count, BUCKET_BOUNDS_US.len() as u64);
        assert_eq!(s.buckets[BUCKETS - 1], 0);
        for c in &s.buckets[..BUCKETS - 1] {
            assert_eq!(*c, 1);
        }
        // Quantiles land on the bounds themselves.
        assert_eq!(s.quantile(1.0 / 19.0), 5);
        assert_eq!(s.quantile(1.0), 5_000_000);
    }

    #[test]
    fn overflow_goes_to_the_inf_bucket_with_exact_max() {
        let h = Histogram::new();
        h.record(9_999_999);
        h.record(50);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        assert_eq!(s.max_us, 9_999_999);
        // The +Inf bucket has no finite bound; the estimate is the max.
        assert_eq!(s.quantile(1.0), 9_999_999);
        assert_eq!(s.quantile(0.25), 50);
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(80); // ≤ 100 bucket
        }
        for _ in 0..10 {
            h.record(40_000); // (25_000, 50_000] bucket
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.quantile(0.5), 100);
        assert_eq!(s.quantile(0.90), 100);
        assert_eq!(s.quantile(0.91), 40_000); // clamped to max
        assert_eq!(s.quantile(1.0), 40_000);
        let cum: Vec<(Option<u64>, u64)> = s.cumulative().collect();
        assert_eq!(cum[4], (Some(100), 90));
        assert_eq!(cum.last().unwrap(), &(None, 100));
    }

    /// The reservoir this histogram replaced kept a 4096-slot window whose
    /// fill phase raced slot assignment against pushes. The histogram has no
    /// window to wrap: record exactly one "window" of samples and one more,
    /// and every sample is still accounted for.
    #[test]
    fn exact_window_wrap_loses_nothing() {
        let h = Histogram::new();
        const WINDOW: u64 = 4096;
        for i in 0..WINDOW {
            h.record(i % 700);
        }
        assert_eq!(h.snapshot().count, WINDOW);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, WINDOW + 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), WINDOW + 1);
    }

    #[test]
    fn concurrent_recorders_never_lose_samples() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record((t * 131 + i) % 3_000);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 8_000);
    }
}
