//! Request-scoped tracing: a lock-free, fixed-capacity **flight recorder**.
//!
//! Aggregate metrics (PR 5) answer "how slow are requests on average?";
//! this module answers "why was *this* request 40 ms?". Every layer of the
//! click path — connection handling, page cache, compiled-plan execution,
//! template render, paged store — records **spans** (`trace_id`, `span_id`,
//! parent, name, start/end monotonic ns, up to four key/value attributes)
//! into a fixed-capacity ring of seqlock-guarded slots. The ring is the
//! flight recorder: it always holds the most recent spans, it is written
//! with a handful of relaxed atomic stores (no mutex, no allocation), and
//! it is safe to leave on in production.
//!
//! **Cost discipline** (DESIGN.md §14), mirroring [`crate::Timer::start_if`]:
//!
//! * Tracing **disabled** (the default): [`begin_request`] is one relaxed
//!   atomic load returning `None`; [`span`] is a thread-local read returning
//!   an inert guard. Neither path ever reads the clock.
//! * Tracing **enabled**: every span costs two clock reads plus ~34 relaxed
//!   atomic stores into a pre-allocated slot. No locks on the span path.
//!
//! **Sampling semantics.** Head-based sampling cannot know a request's
//! duration up front, so the sample decision made at [`begin_request`] does
//! *not* gate recording — spans always enter the ring while tracing is
//! enabled. Instead it gates **promotion**: when a root span finishes, the
//! trace summary is pushed into the recent-traces index if it was sampled
//! *or* if the request turned out slower than the configured slow
//! threshold (`--trace-slow-ms`). Slow requests are therefore never lost
//! even at a 0.0 sample rate: their spans are still in the ring and their
//! summary is promoted at the end.
//!
//! Span names and attribute text are stored **inline** (truncated to
//! [`INLINE_BYTES`]) so slots are plain atomics with no lifetimes and no
//! `unsafe`. A torn slot — a reader racing a writer — is detected by the
//! per-slot sequence word and discarded.

use crate::hist::Histogram;
use crate::json;
use crate::Counter;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Bytes of inline storage for a span name, attribute key or text value.
pub const INLINE_BYTES: usize = 24;

/// Maximum attributes per span.
pub const MAX_ATTRS: usize = 4;

/// The layer a span belongs to; every span carries one so per-layer
/// self-times can be aggregated without parsing names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Layer {
    /// Connection handling, HTTP parse/write, routing.
    Serve = 0,
    /// Page-cache lookups and invalidation in `DynamicSite`.
    Cache = 1,
    /// Compiled-plan execution (one span per `PlanNode`).
    Eval = 2,
    /// Template/page rendering.
    Render = 3,
    /// Paged store: snapshots, commits, group commit, checkpoints, WAL.
    Store = 4,
    /// Anything else.
    Other = 5,
}

/// Number of distinct layers.
pub const LAYERS: usize = 6;

/// Layer names, indexed by `Layer as usize`.
pub const LAYER_NAMES: [&str; LAYERS] = ["serve", "cache", "eval", "render", "store", "other"];

impl Layer {
    fn from_u8(v: u8) -> Layer {
        match v {
            0 => Layer::Serve,
            1 => Layer::Cache,
            2 => Layer::Eval,
            3 => Layer::Render,
            4 => Layer::Store,
            _ => Layer::Other,
        }
    }

    /// The lowercase layer name (`"serve"`, `"cache"`, …).
    pub fn name(self) -> &'static str {
        LAYER_NAMES[self as usize]
    }
}

/// An attribute value as recorded on a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer (row counts, byte counts, status codes).
    U64(u64),
    /// Text, truncated to [`INLINE_BYTES`] bytes at record time.
    Text(String),
}

impl AttrValue {
    fn render_json(&self) -> String {
        match self {
            AttrValue::U64(v) => format!("{v}"),
            AttrValue::Text(s) => format!("\"{}\"", json::escape(s)),
        }
    }
}

// ---------------------------------------------------------------------------
// Slot layout: one span = SLOT_WORDS atomic words guarded by a seqlock.
// ---------------------------------------------------------------------------

const NAME_WORDS: usize = INLINE_BYTES / 8; // 3
const KEY_BYTES: usize = 16;
const KEY_WORDS: usize = KEY_BYTES / 8; // 2
const VAL_WORDS: usize = INLINE_BYTES / 8; // 3
const ATTR_WORDS: usize = 1 + KEY_WORDS + VAL_WORDS; // meta + key + value
const ATTR_BASE: usize = 7 + NAME_WORDS;
/// Atomic words per ring slot.
const SLOT_WORDS: usize = ATTR_BASE + MAX_ATTRS * ATTR_WORDS;

const KIND_NONE: u64 = 0;
const KIND_U64: u64 = 1;
const KIND_TEXT: u64 = 2;

struct Slot {
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn pack_bytes(dst: &mut [u64], src: &[u8]) {
    for (i, chunk) in src.chunks(8).enumerate() {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        dst[i] = u64::from_le_bytes(w);
    }
}

fn unpack_bytes(words: &[u64], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for (i, w) in words.iter().enumerate() {
        let bytes = w.to_le_bytes();
        let take = len.saturating_sub(i * 8).min(8);
        out.extend_from_slice(&bytes[..take]);
        if take < 8 {
            break;
        }
    }
    out.truncate(len);
    out
}

fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// A span read back out of the flight recorder.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id, unique per process.
    pub span_id: u64,
    /// Parent span id; `0` for a root span.
    pub parent_id: u64,
    /// Layer the span was recorded under.
    pub layer: Layer,
    /// Span name (truncated to [`INLINE_BYTES`] at record time).
    pub name: String,
    /// Start, monotonic nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End, monotonic nanoseconds since the recorder epoch.
    pub end_ns: u64,
    /// Recorded attributes, in the order they were set.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One attribute staged on a live span guard before it is written out.
#[derive(Debug, Clone)]
enum StagedVal {
    U64(u64),
    Text([u8; INLINE_BYTES], u8),
}

#[derive(Debug, Clone)]
struct StagedAttr {
    key: &'static str,
    val: StagedVal,
}

struct RawSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    layer: Layer,
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    attrs: [Option<StagedAttr>; MAX_ATTRS],
}

// ---------------------------------------------------------------------------
// The recorder.
// ---------------------------------------------------------------------------

/// A finished trace's summary, as kept in the recent/worst indexes.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Trace id (matches the `trace_id` of its spans in the ring).
    pub trace_id: u64,
    /// Root span name.
    pub name: String,
    /// The root span's `path` attribute, if any (request path).
    pub path: String,
    /// Root start, ns since recorder epoch.
    pub start_ns: u64,
    /// Total duration in nanoseconds.
    pub dur_ns: u64,
    /// Per-layer self-time in nanoseconds, indexed like [`LAYER_NAMES`].
    pub layer_self_ns: [u64; LAYERS],
    /// Number of spans recorded under this trace.
    pub spans: u32,
    /// Whether the head-based sampler picked this trace.
    pub sampled: bool,
    /// Whether the trace exceeded the slow threshold.
    pub slow: bool,
}

/// Shared per-trace state, carried by [`Ctx`] across threads.
pub struct TraceShared {
    trace_id: u64,
    root_span: u64,
    start_ns: u64,
    sampled: bool,
    layer_self_ns: [AtomicU64; LAYERS],
    root_child_ns: AtomicU64,
    span_count: AtomicU32,
}

/// A cheap cloneable handle used to propagate a trace across threads:
/// spans recorded under a `Ctx` become children of `parent_span`.
#[derive(Clone)]
pub struct Ctx {
    shared: Arc<TraceShared>,
    parent_span: u64,
}

impl Ctx {
    /// The trace id this context belongs to.
    pub fn trace_id(&self) -> u64 {
        self.shared.trace_id
    }
}

/// Point-in-time counters for the `/metrics` + `/stats` trace block.
#[derive(Debug, Clone, Copy)]
pub struct TraceStats {
    /// Whether tracing is currently enabled.
    pub enabled: bool,
    /// Total spans written into the ring since enable.
    pub spans_recorded: u64,
    /// Spans overwritten by ring wrap-around (recorded − capacity, min 0).
    pub spans_dropped: u64,
    /// Root spans started.
    pub traces_started: u64,
    /// Traces picked by the head-based sampler.
    pub traces_sampled: u64,
    /// Unsampled traces promoted because they exceeded the slow threshold.
    pub traces_slow_promoted: u64,
    /// Ring capacity in slots.
    pub ring_capacity: usize,
    /// Live (valid) slots currently in the ring.
    pub ring_live: usize,
    /// Head-sampling rate in parts-per-million.
    pub sample_ppm: u32,
    /// Slow-promotion threshold in microseconds.
    pub slow_us: u64,
}

struct Recorder {
    ring: Box<[Slot]>,
    head: AtomicU64,
    epoch: Instant,
    sample_ppm: AtomicU32,
    slow_us: AtomicU64,
    traces_started: Counter,
    traces_sampled: Counter,
    traces_slow: Counter,
    next_id: AtomicU64,
    recent: Mutex<VecDeque<TraceSummary>>,
    worst: Mutex<Vec<TraceSummary>>,
    recent_cap: usize,
    worst_cap: usize,
    layer_hist: [Histogram; LAYERS],
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<Recorder> = OnceLock::new();

/// Configuration for [`enable`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Head-based sample rate in `[0.0, 1.0]`.
    pub sample_rate: f64,
    /// Requests slower than this are promoted regardless of sampling.
    pub slow_ms: u64,
    /// Ring capacity in slots. Fixed at first enable; later calls keep the
    /// existing ring.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_rate: 1.0,
            slow_ms: 50,
            capacity: 4096,
        }
    }
}

/// Turns tracing on (idempotent). The ring is allocated on the first call;
/// subsequent calls update the sampling knobs but keep the existing ring.
pub fn enable(cfg: TraceConfig) {
    let rec = RECORDER.get_or_init(|| Recorder {
        ring: (0..cfg.capacity.max(8)).map(|_| Slot::new()).collect(),
        head: AtomicU64::new(0),
        epoch: Instant::now(),
        sample_ppm: AtomicU32::new(0),
        slow_us: AtomicU64::new(0),
        traces_started: Counter::new(),
        traces_sampled: Counter::new(),
        traces_slow: Counter::new(),
        next_id: AtomicU64::new(1),
        recent: Mutex::new(VecDeque::new()),
        worst: Mutex::new(Vec::new()),
        recent_cap: 64,
        worst_cap: 8,
        layer_hist: std::array::from_fn(|_| Histogram::new()),
    });
    let ppm = (cfg.sample_rate.clamp(0.0, 1.0) * 1_000_000.0).round() as u32;
    rec.sample_ppm.store(ppm, Ordering::Relaxed);
    rec.slow_us.store(cfg.slow_ms * 1_000, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Release);
}

/// Turns tracing off. The ring (and its contents) are retained.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether tracing is enabled. One relaxed atomic load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn recorder() -> Option<&'static Recorder> {
    if !enabled() {
        return None;
    }
    RECORDER.get()
}

/// Monotonic nanoseconds since the recorder epoch, or 0 when disabled.
/// Only call on paths already gated on [`enabled`].
pub fn now_ns() -> u64 {
    match recorder() {
        Some(r) => r.epoch.elapsed().as_nanos() as u64,
        None => 0,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Recorder {
    fn write(&self, raw: &RawSpan) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.ring[(ticket % self.ring.len() as u64) as usize];
        let w = &slot.words;
        // Seqlock writer: odd while writing, even when stable. Writers to
        // the same slot are a full ring wrap apart; a collision would only
        // corrupt one diagnostic row, never memory (all fields are atomics).
        let seq = w[0].load(Ordering::Relaxed);
        w[0].store(seq | 1, Ordering::Release);
        w[1].store(raw.trace_id, Ordering::Relaxed);
        w[2].store(raw.span_id, Ordering::Relaxed);
        w[3].store(raw.parent_id, Ordering::Relaxed);
        w[4].store(raw.start_ns, Ordering::Relaxed);
        w[5].store(raw.end_ns, Ordering::Relaxed);
        let name = truncate_utf8(raw.name, INLINE_BYTES);
        let nattrs = raw.attrs.iter().filter(|a| a.is_some()).count() as u64;
        let meta = raw.layer as u64 | ((name.len() as u64) << 8) | (nattrs << 16);
        w[6].store(meta, Ordering::Relaxed);
        let mut words = [0u64; NAME_WORDS];
        pack_bytes(&mut words, name.as_bytes());
        for (i, v) in words.iter().enumerate() {
            w[7 + i].store(*v, Ordering::Relaxed);
        }
        for (ai, attr) in raw.attrs.iter().enumerate() {
            let base = ATTR_BASE + ai * ATTR_WORDS;
            let Some(attr) = attr else {
                w[base].store(KIND_NONE, Ordering::Relaxed);
                continue;
            };
            let key = truncate_utf8(attr.key, KEY_BYTES);
            let mut kw = [0u64; KEY_WORDS];
            pack_bytes(&mut kw, key.as_bytes());
            let (kind, tlen) = match &attr.val {
                StagedVal::U64(_) => (KIND_U64, 0u64),
                StagedVal::Text(_, len) => (KIND_TEXT, *len as u64),
            };
            w[base].store(
                kind | ((key.len() as u64) << 8) | (tlen << 16),
                Ordering::Relaxed,
            );
            for (i, v) in kw.iter().enumerate() {
                w[base + 1 + i].store(*v, Ordering::Relaxed);
            }
            match &attr.val {
                StagedVal::U64(v) => {
                    w[base + 1 + KEY_WORDS].store(*v, Ordering::Relaxed);
                    for i in 1..VAL_WORDS {
                        w[base + 1 + KEY_WORDS + i].store(0, Ordering::Relaxed);
                    }
                }
                StagedVal::Text(bytes, _) => {
                    let mut vw = [0u64; VAL_WORDS];
                    pack_bytes(&mut vw, bytes);
                    for (i, v) in vw.iter().enumerate() {
                        w[base + 1 + KEY_WORDS + i].store(*v, Ordering::Relaxed);
                    }
                }
            }
        }
        // Stable: bump to the next even value past the odd write marker.
        w[0].store((seq | 1).wrapping_add(1), Ordering::Release);
    }

    fn read_slot(&self, slot: &Slot) -> Option<SpanRecord> {
        let w = &slot.words;
        for _ in 0..4 {
            let s1 = w[0].load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                return None; // empty or mid-write
            }
            let mut vals = [0u64; SLOT_WORDS];
            for (i, v) in vals.iter_mut().enumerate().skip(1) {
                *v = w[i].load(Ordering::Relaxed);
            }
            let s2 = w[0].load(Ordering::Acquire);
            if s1 != s2 {
                continue; // torn read; retry
            }
            let meta = vals[6];
            let layer = Layer::from_u8((meta & 0xff) as u8);
            let name_len = ((meta >> 8) & 0xff) as usize;
            let nattrs = ((meta >> 16) & 0xff) as usize;
            let name_bytes = unpack_bytes(&vals[7..7 + NAME_WORDS], name_len.min(INLINE_BYTES));
            let name = String::from_utf8_lossy(&name_bytes).into_owned();
            let mut attrs = Vec::with_capacity(nattrs.min(MAX_ATTRS));
            for ai in 0..nattrs.min(MAX_ATTRS) {
                let base = ATTR_BASE + ai * ATTR_WORDS;
                let ameta = vals[base];
                let kind = ameta & 0xff;
                if kind == KIND_NONE {
                    continue;
                }
                let key_len = ((ameta >> 8) & 0xff) as usize;
                let text_len = ((ameta >> 16) & 0xff) as usize;
                let key_bytes = unpack_bytes(
                    &vals[base + 1..base + 1 + KEY_WORDS],
                    key_len.min(KEY_BYTES),
                );
                let key = String::from_utf8_lossy(&key_bytes).into_owned();
                let vbase = base + 1 + KEY_WORDS;
                let val = if kind == KIND_U64 {
                    AttrValue::U64(vals[vbase])
                } else {
                    let bytes =
                        unpack_bytes(&vals[vbase..vbase + VAL_WORDS], text_len.min(INLINE_BYTES));
                    AttrValue::Text(String::from_utf8_lossy(&bytes).into_owned())
                };
                attrs.push((key, val));
            }
            return Some(SpanRecord {
                trace_id: vals[1],
                span_id: vals[2],
                parent_id: vals[3],
                layer,
                name,
                start_ns: vals[4],
                end_ns: vals[5],
                attrs,
            });
        }
        None
    }

    fn promote(&self, summary: TraceSummary) {
        {
            let mut recent = self.recent.lock().unwrap();
            if recent.len() >= self.recent_cap {
                recent.pop_front();
            }
            recent.push_back(summary.clone());
        }
        let mut worst = self.worst.lock().unwrap();
        if worst.len() < self.worst_cap {
            worst.push(summary);
            worst.sort_by_key(|w| std::cmp::Reverse(w.dur_ns));
        } else if worst.last().is_some_and(|w| summary.dur_ns > w.dur_ns) {
            worst.pop();
            worst.push(summary);
            worst.sort_by_key(|w| std::cmp::Reverse(w.dur_ns));
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local active trace + span guards.
// ---------------------------------------------------------------------------

struct Frame {
    span_id: u64,
    child_ns: u64,
}

struct Active {
    shared: Arc<TraceShared>,
    base_parent: u64,
    base_child_ns: u64,
    frames: Vec<Frame>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// A root span covering one request, returned by [`begin_request`].
/// Finish it with [`RootSpan::finish`]; dropping without finishing records
/// nothing (the request was abandoned mid-flight).
pub struct RootSpan {
    shared: Arc<TraceShared>,
    name: &'static str,
    attrs: [Option<StagedAttr>; MAX_ATTRS],
    nattrs: usize,
}

/// Starts a new trace rooted at `name`, or `None` when tracing is disabled
/// (no clock read on that path).
pub fn begin_request(name: &'static str) -> Option<RootSpan> {
    let rec = recorder()?;
    let trace_id = rec.next_id.fetch_add(1, Ordering::Relaxed);
    let root_span = rec.next_id.fetch_add(1, Ordering::Relaxed);
    let ppm = rec.sample_ppm.load(Ordering::Relaxed) as u64;
    let sampled = ppm > 0 && splitmix64(trace_id) % 1_000_000 < ppm;
    rec.traces_started.inc();
    if sampled {
        rec.traces_sampled.inc();
    }
    let shared = Arc::new(TraceShared {
        trace_id,
        root_span,
        start_ns: rec.epoch.elapsed().as_nanos() as u64,
        sampled,
        layer_self_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        root_child_ns: AtomicU64::new(0),
        span_count: AtomicU32::new(1),
    });
    Some(RootSpan {
        shared,
        name,
        attrs: [const { None }; MAX_ATTRS],
        nattrs: 0,
    })
}

fn stage_text(s: &str) -> StagedVal {
    let t = truncate_utf8(s, INLINE_BYTES);
    let mut buf = [0u8; INLINE_BYTES];
    buf[..t.len()].copy_from_slice(t.as_bytes());
    StagedVal::Text(buf, t.len() as u8)
}

impl RootSpan {
    /// A context for recording child spans (on this or another thread).
    pub fn ctx(&self) -> Ctx {
        Ctx {
            shared: self.shared.clone(),
            parent_span: self.shared.root_span,
        }
    }

    /// The trace id.
    pub fn trace_id(&self) -> u64 {
        self.shared.trace_id
    }

    /// The root start time, ns since the recorder epoch.
    pub fn start_ns(&self) -> u64 {
        self.shared.start_ns
    }

    fn push_attr(&mut self, key: &'static str, val: StagedVal) {
        if self.nattrs < MAX_ATTRS {
            self.attrs[self.nattrs] = Some(StagedAttr { key, val });
            self.nattrs += 1;
        }
    }

    /// Attaches an integer attribute (first [`MAX_ATTRS`] stick).
    pub fn attr_u64(&mut self, key: &'static str, val: u64) {
        self.push_attr(key, StagedVal::U64(val));
    }

    /// Attaches a text attribute, truncated to [`INLINE_BYTES`] bytes.
    pub fn attr_text(&mut self, key: &'static str, val: &str) {
        self.push_attr(key, stage_text(val));
    }

    /// Ends the trace: records the root span, accounts the root's
    /// self-time to the serve layer, feeds the per-layer histograms and
    /// promotes the summary if sampled or slow. Returns the summary.
    pub fn finish(self) -> Option<TraceSummary> {
        let rec = recorder()?;
        let end_ns = rec.epoch.elapsed().as_nanos() as u64;
        let dur_ns = end_ns.saturating_sub(self.shared.start_ns);
        let child = self.shared.root_child_ns.load(Ordering::Relaxed);
        let self_ns = dur_ns.saturating_sub(child);
        self.shared.layer_self_ns[Layer::Serve as usize].fetch_add(self_ns, Ordering::Relaxed);
        let mut path = String::new();
        for a in self.attrs.iter().flatten() {
            if a.key == "path" {
                if let StagedVal::Text(bytes, len) = &a.val {
                    path = String::from_utf8_lossy(&bytes[..*len as usize]).into_owned();
                }
            }
        }
        rec.write(&RawSpan {
            trace_id: self.shared.trace_id,
            span_id: self.shared.root_span,
            parent_id: 0,
            layer: Layer::Serve,
            name: self.name,
            start_ns: self.shared.start_ns,
            end_ns,
            attrs: self.attrs.clone(),
        });
        let mut layer_self_ns = [0u64; LAYERS];
        for (i, v) in self.shared.layer_self_ns.iter().enumerate() {
            layer_self_ns[i] = v.load(Ordering::Relaxed);
        }
        for (i, hist) in rec.layer_hist.iter().enumerate().take(LAYERS - 1) {
            hist.record(layer_self_ns[i] / 1_000);
        }
        let slow_us = rec.slow_us.load(Ordering::Relaxed);
        let slow = slow_us > 0 && dur_ns / 1_000 >= slow_us;
        if slow && !self.shared.sampled {
            rec.traces_slow.inc();
        }
        let summary = TraceSummary {
            trace_id: self.shared.trace_id,
            name: self.name.to_string(),
            path,
            start_ns: self.shared.start_ns,
            dur_ns,
            layer_self_ns,
            spans: self.shared.span_count.load(Ordering::Relaxed),
            sampled: self.shared.sampled,
            slow,
        };
        if self.shared.sampled || slow {
            rec.promote(summary.clone());
        }
        Some(summary)
    }
}

/// Records a completed span with explicit timestamps as a direct child of
/// `ctx`'s parent span. Used by the event loop, where span lifetimes don't
/// match lexical scopes (a connection parks between readiness events).
pub fn record_span(
    ctx: &Ctx,
    name: &'static str,
    layer: Layer,
    start_ns: u64,
    end_ns: u64,
    attrs: &[(&'static str, AttrValue)],
) {
    let Some(rec) = recorder() else { return };
    let span_id = rec.next_id.fetch_add(1, Ordering::Relaxed);
    let elapsed = end_ns.saturating_sub(start_ns);
    ctx.shared.layer_self_ns[layer as usize].fetch_add(elapsed, Ordering::Relaxed);
    if ctx.parent_span == ctx.shared.root_span {
        ctx.shared
            .root_child_ns
            .fetch_add(elapsed, Ordering::Relaxed);
    }
    ctx.shared.span_count.fetch_add(1, Ordering::Relaxed);
    let mut staged = [const { None }; MAX_ATTRS];
    for (i, (k, v)) in attrs.iter().take(MAX_ATTRS).enumerate() {
        staged[i] = Some(StagedAttr {
            key: k,
            val: match v {
                AttrValue::U64(n) => StagedVal::U64(*n),
                AttrValue::Text(s) => stage_text(s),
            },
        });
    }
    rec.write(&RawSpan {
        trace_id: ctx.shared.trace_id,
        span_id,
        parent_id: ctx.parent_span,
        layer,
        name,
        start_ns,
        end_ns,
        attrs: staged,
    });
}

/// Activates `ctx` on this thread for the guard's lifetime: [`span`] calls
/// made underneath attach to it. Used by serve workers and parallel render
/// workers to adopt a trace started on another thread.
pub fn enter(ctx: &Ctx) -> EnterGuard {
    if !enabled() {
        return EnterGuard(None);
    }
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(Active {
            shared: ctx.shared.clone(),
            base_parent: ctx.parent_span,
            base_child_ns: 0,
            frames: Vec::new(),
        })
    });
    EnterGuard(Some(prev))
}

/// Restores the thread's previous trace context on drop (see [`enter`]) —
/// nesting is allowed, e.g. a parallel render falling back to its inline
/// single-worker path on a thread that already carries a trace.
pub struct EnterGuard(Option<Option<Active>>);

impl Drop for EnterGuard {
    fn drop(&mut self) {
        let Some(prev) = self.0.take() else { return };
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            if let Some(active) = borrow.take() {
                if active.base_parent == active.shared.root_span {
                    active
                        .shared
                        .root_child_ns
                        .fetch_add(active.base_child_ns, Ordering::Relaxed);
                }
            }
            *borrow = prev;
        });
    }
}

/// The context active on this thread, if any — capture before handing work
/// to another thread, then [`enter`] it there. Child spans recorded under
/// the captured context attach to the span that was innermost here.
pub fn current() -> Option<Ctx> {
    if !enabled() {
        return None;
    }
    ACTIVE.with(|a| {
        a.borrow().as_ref().map(|active| Ctx {
            shared: active.shared.clone(),
            parent_span: active
                .frames
                .last()
                .map(|f| f.span_id)
                .unwrap_or(active.base_parent),
        })
    })
}

/// An RAII span: records itself into the flight recorder on drop. Inert
/// (never reads the clock) when tracing is disabled or no trace is active
/// on this thread.
pub struct SpanGuard(Option<SpanInner>);

struct SpanInner {
    span_id: u64,
    layer: Layer,
    name: &'static str,
    start_ns: u64,
    attrs: [Option<StagedAttr>; MAX_ATTRS],
    nattrs: usize,
}

/// Opens a span under the thread's active trace (see [`enter`]). Inert when
/// tracing is disabled or no trace is active.
pub fn span(name: &'static str, layer: Layer) -> SpanGuard {
    let Some(rec) = recorder() else {
        return SpanGuard(None);
    };
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        let Some(active) = borrow.as_mut() else {
            return SpanGuard(None);
        };
        let span_id = rec.next_id.fetch_add(1, Ordering::Relaxed);
        active.frames.push(Frame {
            span_id,
            child_ns: 0,
        });
        active.shared.span_count.fetch_add(1, Ordering::Relaxed);
        SpanGuard(Some(SpanInner {
            span_id,
            layer,
            name,
            start_ns: rec.epoch.elapsed().as_nanos() as u64,
            attrs: [const { None }; MAX_ATTRS],
            nattrs: 0,
        }))
    })
}

impl SpanGuard {
    /// Whether this guard will record anything.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    fn push_attr(&mut self, key: &'static str, val: StagedVal) {
        if let Some(inner) = &mut self.0 {
            if inner.nattrs < MAX_ATTRS {
                inner.attrs[inner.nattrs] = Some(StagedAttr { key, val });
                inner.nattrs += 1;
            }
        }
    }

    /// Attaches an integer attribute (no-op on an inert guard).
    pub fn attr_u64(&mut self, key: &'static str, val: u64) {
        if self.0.is_some() {
            self.push_attr(key, StagedVal::U64(val));
        }
    }

    /// Attaches a text attribute, truncated to [`INLINE_BYTES`] bytes.
    pub fn attr_text(&mut self, key: &'static str, val: &str) {
        if self.0.is_some() {
            self.push_attr(key, stage_text(val));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        let Some(rec) = RECORDER.get() else { return };
        let end_ns = rec.epoch.elapsed().as_nanos() as u64;
        let elapsed = end_ns.saturating_sub(inner.start_ns);
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            let Some(active) = borrow.as_mut() else {
                return;
            };
            // Guards are strictly nested (RAII), so ours is the top frame.
            let child_ns = match active.frames.pop() {
                Some(f) if f.span_id == inner.span_id => f.child_ns,
                Some(f) => {
                    // Out-of-order drop (e.g. mem::forget upstream): put it
                    // back and account without child subtraction.
                    active.frames.push(f);
                    0
                }
                None => 0,
            };
            let parent_id = active
                .frames
                .last()
                .map(|f| f.span_id)
                .unwrap_or(active.base_parent);
            match active.frames.last_mut() {
                Some(f) => f.child_ns += elapsed,
                None => active.base_child_ns += elapsed,
            }
            let self_ns = elapsed.saturating_sub(child_ns);
            active.shared.layer_self_ns[inner.layer as usize].fetch_add(self_ns, Ordering::Relaxed);
            rec.write(&RawSpan {
                trace_id: active.shared.trace_id,
                span_id: inner.span_id,
                parent_id,
                layer: inner.layer,
                name: inner.name,
                start_ns: inner.start_ns,
                end_ns,
                attrs: inner.attrs.clone(),
            });
        });
    }
}

// ---------------------------------------------------------------------------
// Reading the recorder: stats, snapshots, JSON + Chrome trace-event export.
// ---------------------------------------------------------------------------

/// Point-in-time trace counters (zeroes when tracing never enabled).
pub fn stats() -> TraceStats {
    let Some(rec) = RECORDER.get() else {
        return TraceStats {
            enabled: false,
            spans_recorded: 0,
            spans_dropped: 0,
            traces_started: 0,
            traces_sampled: 0,
            traces_slow_promoted: 0,
            ring_capacity: 0,
            ring_live: 0,
            sample_ppm: 0,
            slow_us: 0,
        };
    };
    let head = rec.head.load(Ordering::Relaxed);
    let cap = rec.ring.len() as u64;
    TraceStats {
        enabled: enabled(),
        spans_recorded: head,
        spans_dropped: head.saturating_sub(cap),
        traces_started: rec.traces_started.get(),
        traces_sampled: rec.traces_sampled.get(),
        traces_slow_promoted: rec.traces_slow.get(),
        ring_capacity: cap as usize,
        ring_live: head.min(cap) as usize,
        sample_ppm: rec.sample_ppm.load(Ordering::Relaxed),
        slow_us: rec.slow_us.load(Ordering::Relaxed),
    }
}

/// All valid spans currently in the ring (unordered).
pub fn snapshot_spans() -> Vec<SpanRecord> {
    let Some(rec) = RECORDER.get() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for slot in rec.ring.iter() {
        if let Some(span) = rec.read_slot(slot) {
            if span.trace_id != 0 {
                out.push(span);
            }
        }
    }
    out
}

/// The most recently promoted trace summaries, newest last.
pub fn recent_traces() -> Vec<TraceSummary> {
    match RECORDER.get() {
        Some(rec) => rec.recent.lock().unwrap().iter().cloned().collect(),
        None => Vec::new(),
    }
}

/// The N worst (slowest) promoted traces, slowest first.
pub fn worst_traces() -> Vec<TraceSummary> {
    match RECORDER.get() {
        Some(rec) => rec.worst.lock().unwrap().clone(),
        None => Vec::new(),
    }
}

/// Per-layer self-time quantiles `(layer, p50_us, p99_us)` across all
/// finished traces (serve/cache/eval/render/store; `other` excluded).
pub fn layer_quantiles() -> Vec<(&'static str, u64, u64)> {
    let Some(rec) = RECORDER.get() else {
        return Vec::new();
    };
    rec.layer_hist
        .iter()
        .take(LAYERS - 1)
        .enumerate()
        .map(|(i, h)| {
            let snap = h.snapshot();
            (LAYER_NAMES[i], snap.quantile(0.5), snap.quantile(0.99))
        })
        .collect()
}

fn summary_json(s: &TraceSummary) -> String {
    let mut layers = String::new();
    for (i, name) in LAYER_NAMES.iter().enumerate() {
        if i > 0 {
            layers.push(',');
        }
        layers.push_str(&format!(
            "\"{name}\":{}",
            fmt_us(s.layer_self_ns[i] as f64 / 1_000.0)
        ));
    }
    format!(
        "{{\"trace_id\":{},\"name\":\"{}\",\"path\":\"{}\",\"start_us\":{},\"duration_us\":{},\"span_count\":{},\"sampled\":{},\"slow\":{},\"layers_self_us\":{{{layers}}}}}",
        s.trace_id,
        json::escape(&s.name),
        json::escape(&s.path),
        fmt_us(s.start_ns as f64 / 1_000.0),
        fmt_us(s.dur_ns as f64 / 1_000.0),
        s.spans,
        s.sampled,
        s.slow,
    )
}

fn fmt_us(us: f64) -> String {
    // Keep sub-microsecond resolution without float noise.
    let v = (us * 1_000.0).round() / 1_000.0;
    if v.fract() == 0.0 {
        format!("{}", v as u64)
    } else {
        format!("{v}")
    }
}

fn span_json(s: &SpanRecord) -> String {
    let mut attrs = String::new();
    for (i, (k, v)) in s.attrs.iter().enumerate() {
        if i > 0 {
            attrs.push(',');
        }
        attrs.push_str(&format!("\"{}\":{}", json::escape(k), v.render_json()));
    }
    format!(
        "{{\"span_id\":{},\"parent_id\":{},\"name\":\"{}\",\"cat\":\"{}\",\"start_us\":{},\"dur_us\":{},\"attrs\":{{{attrs}}}}}",
        s.span_id,
        s.parent_id,
        json::escape(&s.name),
        s.layer.name(),
        fmt_us(s.start_ns as f64 / 1_000.0),
        fmt_us(s.dur_ns() as f64 / 1_000.0),
    )
}

/// Renders the recent traces (with their spans still in the ring) as the
/// `/debug/traces` JSON document.
pub fn traces_json() -> String {
    let recents = recent_traces();
    let spans = snapshot_spans();
    let mut out = String::from("{\"traces\":[");
    for (ti, summary) in recents.iter().rev().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        let mut mine: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.trace_id == summary.trace_id)
            .collect();
        mine.sort_by_key(|s| (s.start_ns, s.span_id));
        let mut body = summary_json(summary);
        body.pop(); // strip trailing '}' to splice in the span list
        body.push_str(",\"spans\":[");
        for (i, s) in mine.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&span_json(s));
        }
        body.push_str("]}");
        out.push_str(&body);
    }
    out.push_str("]}");
    out
}

/// Renders every span of the promoted recent traces in Chrome trace-event
/// format (a JSON array of `"ph":"X"` complete events, `ts`/`dur` in µs,
/// sorted by `ts`) — load via chrome://tracing or Perfetto.
pub fn traces_chrome() -> String {
    let recents = recent_traces();
    let spans = snapshot_spans();
    let mut events: Vec<(u64, String)> = Vec::new();
    for (ti, summary) in recents.iter().rev().enumerate() {
        for s in spans.iter().filter(|s| s.trace_id == summary.trace_id) {
            let mut args = format!("\"trace_id\":{}", s.trace_id);
            for (k, v) in &s.attrs {
                args.push_str(&format!(",\"{}\":{}", json::escape(k), v.render_json()));
            }
            let ev = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
                json::escape(&s.name),
                s.layer.name(),
                fmt_us(s.start_ns as f64 / 1_000.0),
                fmt_us(s.dur_ns() as f64 / 1_000.0),
                ti + 1,
            );
            events.push((s.start_ns, ev));
        }
    }
    events.sort_by_key(|(ts, _)| *ts);
    let mut out = String::from("[");
    for (i, (_, ev)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(ev);
    }
    out.push(']');
    out
}

/// One node of an assembled span tree (see [`assemble_tree`]).
#[derive(Debug)]
pub struct TreeNode {
    /// The span at this node.
    pub span: SpanRecord,
    /// Children, ordered by start time.
    pub children: Vec<TreeNode>,
    /// Self-time: duration minus the sum of the children's durations.
    pub self_ns: u64,
}

/// Assembles the spans of one trace into a forest (roots first by start
/// time). Spans whose parent was overwritten by ring wrap-around surface
/// as additional roots rather than being dropped.
pub fn assemble_tree(spans: &[SpanRecord]) -> Vec<TreeNode> {
    let present: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut by_parent: std::collections::HashMap<u64, Vec<&SpanRecord>> =
        std::collections::HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        if s.parent_id != 0 && present.contains(&s.parent_id) {
            by_parent.entry(s.parent_id).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    fn build(
        s: &SpanRecord,
        by_parent: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
    ) -> TreeNode {
        let mut children: Vec<TreeNode> = by_parent
            .get(&s.span_id)
            .map(|kids| kids.iter().map(|k| build(k, by_parent)).collect())
            .unwrap_or_default();
        children.sort_by_key(|c| (c.span.start_ns, c.span.span_id));
        let child_total: u64 = children.iter().map(|c| c.span.dur_ns()).sum();
        TreeNode {
            span: s.clone(),
            self_ns: s.dur_ns().saturating_sub(child_total),
            children,
        }
    }
    roots.sort_by_key(|s| (s.start_ns, s.span_id));
    roots.iter().map(|s| build(s, &by_parent)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ensure_enabled() {
        enable(TraceConfig {
            sample_rate: 1.0,
            slow_ms: 0,
            capacity: 1024,
        });
    }

    fn spans_of(trace_id: u64) -> Vec<SpanRecord> {
        snapshot_spans()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    #[test]
    fn disabled_paths_are_inert() {
        // Force-disable for the duration of this check; other tests in the
        // process may re-enable, so only assert on the guards we create now.
        disable();
        assert!(begin_request("request").is_none());
        let g = span("x", Layer::Eval);
        assert!(!g.is_live());
        assert!(current().is_none());
        ensure_enabled();
    }

    #[test]
    fn spans_nest_and_record_attrs() {
        ensure_enabled();
        let mut root = begin_request("request").unwrap();
        root.attr_text("path", "/page/HomePage");
        root.attr_u64("status", 200);
        let trace_id = root.trace_id();
        {
            let _enter = enter(&root.ctx());
            let mut outer = span("cache.expand", Layer::Cache);
            outer.attr_u64("hits", 3);
            {
                let mut inner = span("eval.op", Layer::Eval);
                inner.attr_text("op", "hash-join");
                inner.attr_u64("rows", 42);
            }
        }
        let summary = root.finish().unwrap();
        assert_eq!(summary.trace_id, trace_id);
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.path, "/page/HomePage");
        let spans = spans_of(trace_id);
        assert_eq!(spans.len(), 3);
        let root_rec = spans.iter().find(|s| s.parent_id == 0).unwrap();
        assert_eq!(root_rec.name, "request");
        let outer = spans.iter().find(|s| s.name == "cache.expand").unwrap();
        assert_eq!(outer.parent_id, root_rec.span_id);
        assert_eq!(outer.layer, Layer::Cache);
        assert_eq!(outer.attrs, vec![("hits".into(), AttrValue::U64(3))]);
        let inner = spans.iter().find(|s| s.name == "eval.op").unwrap();
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(
            inner.attrs,
            vec![
                ("op".into(), AttrValue::Text("hash-join".into())),
                ("rows".into(), AttrValue::U64(42)),
            ]
        );
        // Intervals nest.
        assert!(outer.start_ns >= root_rec.start_ns && outer.end_ns <= root_rec.end_ns);
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
        // Self-times decompose: per-layer self-times sum to ~duration.
        let total: u64 = summary.layer_self_ns.iter().sum();
        assert!(total <= summary.dur_ns + 1_000, "{summary:?}");
        assert!(total >= summary.dur_ns.saturating_sub(summary.dur_ns / 2));
    }

    #[test]
    fn explicit_record_span_attaches_to_ctx() {
        ensure_enabled();
        let root = begin_request("request").unwrap();
        let trace_id = root.trace_id();
        let ctx = root.ctx();
        let t0 = now_ns();
        record_span(
            &ctx,
            "serve.parse",
            Layer::Serve,
            t0,
            t0 + 500,
            &[("bytes", AttrValue::U64(128))],
        );
        let root_id = ctx.shared.root_span;
        root.finish().unwrap();
        let spans = spans_of(trace_id);
        let parse = spans.iter().find(|s| s.name == "serve.parse").unwrap();
        assert_eq!(parse.parent_id, root_id);
        assert_eq!(parse.dur_ns(), 500);
    }

    #[test]
    fn cross_thread_ctx_parents_correctly() {
        ensure_enabled();
        let root = begin_request("request").unwrap();
        let trace_id = root.trace_id();
        let ctx = root.ctx();
        let handle = std::thread::spawn(move || {
            let _enter = enter(&ctx);
            let _s = span("render.page", Layer::Render);
        });
        handle.join().unwrap();
        let root_id = root.ctx().shared.root_span;
        root.finish().unwrap();
        let spans = spans_of(trace_id);
        let page = spans.iter().find(|s| s.name == "render.page").unwrap();
        assert_eq!(page.parent_id, root_id);
        assert_eq!(page.layer, Layer::Render);
    }

    #[test]
    fn ring_wraps_without_orphan_parent_loops() {
        ensure_enabled();
        let cap = stats().ring_capacity;
        let mut root = begin_request("request").unwrap();
        root.attr_text("path", "/wrap");
        let trace_id = root.trace_id();
        {
            let _enter = enter(&root.ctx());
            for _ in 0..cap + 50 {
                let _s = span("eval.op", Layer::Eval);
            }
        }
        root.finish().unwrap();
        let spans = spans_of(trace_id);
        // The ring wrapped: early spans are gone, late ones survive.
        assert!(spans.len() <= cap);
        assert!(!spans.is_empty());
        // assemble_tree tolerates overwritten parents (they become roots).
        let forest = assemble_tree(&spans);
        let mut count = 0usize;
        fn walk(n: &TreeNode, count: &mut usize) {
            *count += 1;
            for c in &n.children {
                assert!(c.span.start_ns >= n.span.start_ns);
                assert!(c.span.end_ns <= n.span.end_ns);
                walk(c, count);
            }
        }
        for n in &forest {
            walk(n, &mut count);
        }
        assert_eq!(count, spans.len());
    }

    #[test]
    fn sampling_zero_still_promotes_slow_traces() {
        enable(TraceConfig {
            sample_rate: 0.0,
            slow_ms: 0, // 0 disables slow promotion
            capacity: 1024,
        });
        let fast = begin_request("request").unwrap();
        let fast_id = fast.trace_id();
        fast.finish().unwrap();
        assert!(!recent_traces().iter().any(|t| t.trace_id == fast_id));
        // With a 1µs threshold every trace counts as slow.
        enable(TraceConfig {
            sample_rate: 0.0,
            slow_ms: 0,
            capacity: 1024,
        });
        if let Some(rec) = RECORDER.get() {
            rec.slow_us.store(1, Ordering::Relaxed);
        }
        let slow = begin_request("request").unwrap();
        let slow_id = slow.trace_id();
        std::thread::sleep(std::time::Duration::from_micros(100));
        let summary = slow.finish().unwrap();
        assert!(summary.slow);
        assert!(recent_traces().iter().any(|t| t.trace_id == slow_id));
        ensure_enabled();
    }

    #[test]
    fn long_names_and_text_truncate_cleanly() {
        ensure_enabled();
        let mut root =
            begin_request("a-very-long-span-name-that-exceeds-the-inline-capacity").unwrap();
        root.attr_text(
            "path",
            "/a/path/that/is/definitely/longer/than/the/inline/window",
        );
        let trace_id = root.trace_id();
        root.finish().unwrap();
        let spans = spans_of(trace_id);
        let rec = &spans[0];
        assert_eq!(rec.name.len(), INLINE_BYTES);
        assert!(rec.name.starts_with("a-very-long"));
        let (_, AttrValue::Text(path)) = &rec.attrs[0] else {
            panic!("expected text attr");
        };
        assert_eq!(path.len(), INLINE_BYTES);
    }

    #[test]
    fn chrome_export_is_sorted_json_array() {
        ensure_enabled();
        let mut root = begin_request("request").unwrap();
        root.attr_text("path", "/chrome");
        {
            let _enter = enter(&root.ctx());
            let _a = span("cache.expand", Layer::Cache);
        }
        root.finish().unwrap();
        let text = traces_chrome();
        let parsed = json::parse(&text).expect("chrome export must be valid JSON");
        let json::Value::Array(events) = parsed else {
            panic!("expected array")
        };
        assert!(!events.is_empty());
        let mut last_ts = f64::MIN;
        for ev in &events {
            let json::Value::Object(fields) = ev else {
                panic!("expected object")
            };
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            assert_eq!(get("ph"), Some(&json::Value::String("X".into())));
            let Some(json::Value::Number(ts)) = get("ts") else {
                panic!("missing ts")
            };
            assert!(*ts >= last_ts, "ts must be monotone");
            last_ts = *ts;
        }
    }

    #[test]
    fn traces_json_is_valid_and_carries_spans() {
        ensure_enabled();
        let mut root = begin_request("request").unwrap();
        root.attr_text("path", "/json-check");
        let trace_id = root.trace_id();
        {
            let _enter = enter(&root.ctx());
            let _a = span("eval.op", Layer::Eval);
        }
        root.finish().unwrap();
        let doc = json::parse(&traces_json()).expect("valid JSON");
        let traces = doc.get("traces").and_then(|t| t.as_array()).unwrap();
        let mine = traces
            .iter()
            .find(|t| t.get("trace_id").and_then(|v| v.as_f64()) == Some(trace_id as f64))
            .expect("trace present");
        let spans = mine.get("spans").and_then(|s| s.as_array()).unwrap();
        assert_eq!(spans.len(), 2);
        assert!(mine.get("layers_self_us").is_some());
    }

    #[test]
    fn stats_track_ring_occupancy() {
        ensure_enabled();
        let before = stats();
        let root = begin_request("request").unwrap();
        root.finish().unwrap();
        let after = stats();
        assert!(after.spans_recorded > before.spans_recorded);
        assert!(after.traces_started > before.traces_started);
        assert!(after.ring_live <= after.ring_capacity);
    }
}
