//! Robustness properties: every hand-written parser in the system must
//! return `Ok` or `Err` on arbitrary input — never panic, hang, or blow the
//! stack. (The wrappers parse *external* data; §2.2's whole point is that
//! source formats are outside STRUDEL's control.)

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ddl_parser_never_panics(s in "\\PC{0,200}") {
        let _ = strudel::graph::ddl::parse(&s);
    }

    #[test]
    fn struql_parser_never_panics(s in "\\PC{0,200}") {
        let _ = strudel::struql::parse_query(&s);
    }

    #[test]
    fn template_parser_never_panics(s in "\\PC{0,200}") {
        let _ = strudel::template::parse_template(&s);
    }

    #[test]
    fn bibtex_parser_never_panics(s in "\\PC{0,200}") {
        let _ = strudel::wrappers::bibtex::parse(&s);
    }

    #[test]
    fn xml_parser_never_panics(s in "\\PC{0,200}") {
        let _ = strudel::wrappers::xml::parse(&s);
    }

    #[test]
    fn html_extractor_never_panics(s in "\\PC{0,200}") {
        let _ = strudel::wrappers::html::extract(&s);
    }

    #[test]
    fn csv_parser_never_panics(s in "\\PC{0,200}") {
        let _ = strudel::wrappers::relational::Table::from_csv("T", &s);
    }

    #[test]
    fn store_loader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = strudel::graph::store::load(&mut bytes.as_slice());
    }

    /// Structured mutation: take a valid stored graph and corrupt one byte —
    /// the loader must reject or tolerate it, never panic.
    #[test]
    fn store_loader_survives_bit_flips(pos in 0usize..256, byte in any::<u8>()) {
        let g = strudel::graph::ddl::parse(
            "object a in C { x 1 y \"s\" n &b }\nobject b { z 2.5 }",
        )
        .unwrap();
        let mut buf = Vec::new();
        strudel::graph::store::save(&g, &mut buf).unwrap();
        let idx = pos % buf.len();
        buf[idx] = byte;
        let _ = strudel::graph::store::load(&mut buf.as_slice());
    }

    /// Mutated StruQL derived from a real query (more coverage of deep
    /// parser paths than fully random text).
    #[test]
    fn struql_parser_survives_mutations(cut in 0usize..300, ins in "\\PC{0,4}") {
        let base = r#"INPUT G WHERE Publications(x), x -> l -> v, l in {"a","b"},
            not(isImageFile(v)) CREATE P(x) LINK P(x) -> l -> v
            { WHERE l = "year" CREATE Y(v) LINK Y(v) -> "p" -> P(x) }
            COLLECT O(P(x)) OUTPUT H"#;
        let mut s = base.to_string();
        let at = cut % s.len();
        // Don't split a UTF-8 boundary.
        let at = (at..s.len()).find(|&i| s.is_char_boundary(i)).unwrap_or(s.len());
        s.insert_str(at, &ins);
        let _ = strudel::struql::parse_query(&s);
    }
}
