//! Regression tests for the event-driven serving tier: keep-alive reuse,
//! pipelining order, connection-layer bugfixes (slow-loris deadline, HEAD
//! answers, zero-byte aborts, admission control), in both serving modes
//! where the behavior is mode-independent.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use strudel::serve::{ServeMode, Server, ServerConfig};
use strudel::site::DynamicSite;
use strudel::struql::EvalOptions;

fn demo_site() -> (strudel::graph::Graph, strudel::struql::Query) {
    let data = strudel::graph::ddl::parse(
        r#"
object a1 in Articles { headline "one" section "world" }
object a2 in Articles { headline "two" section "world" }
"#,
    )
    .unwrap();
    let query = strudel::struql::parse_query(
        r#"CREATE FrontPage()
           { WHERE Articles(a), a -> l -> v
             CREATE Page(a)
             LINK Page(a) -> l -> v, FrontPage() -> "Story" -> Page(a) }"#,
    )
    .unwrap();
    (data, query)
}

/// One-shot `Connection: close` fetch; returns the whole response text.
fn fetch(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

/// Reads one `Content-Length`-framed response off a keep-alive socket.
/// Leftover bytes (pipelined successors) stay in `carry`.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (String, String) {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(end) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&carry[..end]).into_owned();
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("framed response")
                .parse()
                .unwrap();
            let need = end + 4 + len;
            while carry.len() < need {
                let n = stream.read(&mut chunk).expect("read body");
                assert!(n > 0, "eof mid body");
                carry.extend_from_slice(&chunk[..n]);
            }
            let body = String::from_utf8_lossy(&carry[end + 4..need]).into_owned();
            carry.drain(..need);
            return (head, body);
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "eof mid head");
        carry.extend_from_slice(&chunk[..n]);
    }
}

/// Binds a server with `config`, runs `client` against it, returns the
/// server's final [`strudel::serve::ServeStats`]. The client must end with
/// a `/quit` fetch (or the returned closure does it).
fn with_server(
    config: ServerConfig,
    client: impl FnOnce(SocketAddr) + Send,
) -> strudel::serve::ServeStats {
    let (data, query) = demo_site();
    let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
    let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
    let addr = server.addr().unwrap();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(None).unwrap());
        client(addr);
        let _ = fetch(addr, "/quit");
        serving.join().unwrap();
    });
    server.stats()
}

fn both_modes(test: impl Fn(ServeMode)) {
    test(ServeMode::Event);
    test(ServeMode::Threaded);
}

#[test]
fn keepalive_connection_serves_many_requests() {
    const N: usize = 6;
    let stats = with_server(ServerConfig::default(), |addr| {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut carry = Vec::new();
        let mut first_body = None;
        for _ in 0..N {
            s.write_all(b"GET /page/FrontPage HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let (head, body) = read_response(&mut s, &mut carry);
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
            // Every answer over the reused connection is identical.
            assert_eq!(*first_body.get_or_insert_with(|| body.clone()), body);
        }
    });
    assert!(
        stats.keepalive_reuses >= (N - 1) as u64,
        "expected ≥{} reuses: {stats:?}",
        N - 1
    );
    assert!(stats.requests >= N as u64, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    // Mixed statuses prove ordering: a shuffled or dropped response would
    // put a 404 where a 200 belongs or change a body.
    let paths = ["/page/FrontPage", "/nope", "/", "/page/FrontPage", "/stats"];
    with_server(ServerConfig::default(), |addr| {
        let expected: Vec<String> = paths.iter().map(|p| fetch(addr, p)).collect();

        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let burst: String = paths
            .iter()
            .map(|p| format!("GET {p} HTTP/1.1\r\nHost: x\r\n\r\n"))
            .collect();
        // One write: all five requests land in the server's buffers
        // together, well before the first response is computed.
        s.write_all(burst.as_bytes()).unwrap();

        let mut carry = Vec::new();
        for (p, exp) in paths.iter().zip(&expected) {
            let (head, body) = read_response(&mut s, &mut carry);
            let exp_status = exp.lines().next().unwrap();
            assert!(head.starts_with(exp_status), "{p}: {head}");
            if *p != "/stats" {
                // Stats bodies move between fetches; everything else is
                // byte-identical to its serial answer.
                let exp_body = exp.split_once("\r\n\r\n").unwrap().1;
                assert_eq!(body, exp_body, "{p}");
            }
        }
    });
}

#[test]
fn malformed_request_on_kept_alive_connection_fails_closed() {
    let stats = with_server(ServerConfig::default(), |addr| {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut carry = Vec::new();
        for _ in 0..2 {
            s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let (head, _) = read_response(&mut s, &mut carry);
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        }

        // Garbage on the same connection: 400, then the server closes it
        // (the stream cannot be re-synchronized after a framing error).
        s.write_all(b"total garbage\r\n\r\n").unwrap();
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        let rest = String::from_utf8_lossy(&rest);
        assert!(rest.starts_with("HTTP/1.1 400"), "{rest}");
        assert!(rest.contains("Connection: close"), "{rest}");
    });
    assert!(stats.errors >= 1, "{stats:?}");
    assert!(stats.keepalive_reuses >= 1, "{stats:?}");
}

#[test]
fn admission_control_rejects_with_503_when_full() {
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let stats = with_server(config, |addr| {
        let mut hold = Vec::new();
        let mut carry = Vec::new();
        for _ in 0..2 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            // One answered request pins the connection as admitted+idle.
            s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let (head, _) = read_response(&mut s, &mut carry);
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            hold.push(s);
        }
        // The third connection is over the cap: a static 503, then close.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("Connection: close"), "{resp}");
        drop(hold); // frees slots so `/quit` can get in
        std::thread::sleep(Duration::from_millis(100));
    });
    assert!(stats.admission_rejected >= 1, "{stats:?}");
    // Admission rejections never reach the router: the two held requests
    // and `/quit` are the only requests, and the 503 is not an error.
    assert_eq!(stats.requests, 3, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
}

#[test]
fn slow_loris_is_cut_by_the_whole_request_deadline() {
    both_modes(|mode| {
        let config = ServerConfig {
            threads: 2,
            request_timeout: Duration::from_millis(300),
            mode,
            ..ServerConfig::default()
        };
        with_server(config, |addr| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let started = Instant::now();
            // One byte per 100ms: each read succeeds well inside any
            // per-read timeout, but the head never completes. The old
            // server reset its clock on every byte and dribbling kept a
            // worker forever; the whole-request deadline cuts at ~300ms.
            let writer = std::thread::spawn(move || {
                let mut w = s;
                for b in b"GET /page/FrontPage HT" {
                    if w.write_all(&[*b]).is_err() {
                        break; // server hung up: exactly what we want
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                let mut resp = String::new();
                let _ = w.read_to_string(&mut resp);
                resp
            });
            let resp = writer.join().unwrap();
            let elapsed = started.elapsed();
            assert!(resp.contains("408"), "{mode:?}: {resp}");
            assert!(
                elapsed < Duration::from_millis(1500),
                "{mode:?}: dribbling held the connection {elapsed:?}"
            );
        });
    });
}

#[test]
fn head_requests_get_get_headers_without_body() {
    both_modes(|mode| {
        let config = ServerConfig {
            mode,
            ..ServerConfig::default()
        };
        with_server(config, |addr| {
            let get = fetch(addr, "/page/FrontPage");
            let (get_head, get_body) = get.split_once("\r\n\r\n").unwrap();
            let get_len: usize = get_head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(get_body.len(), get_len);

            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.write_all(b"HEAD /page/FrontPage HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            // The GET headers — status, type, and the GET body's length —
            // with no body following (it was a 405 before this fix).
            let (head, body) = resp.split_once("\r\n\r\n").unwrap();
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{mode:?}: {head}");
            assert!(
                head.contains(&format!("Content-Length: {get_len}")),
                "{mode:?}: {head}"
            );
            assert!(body.is_empty(), "{mode:?}: HEAD must carry no body");
        });
    });
}

#[test]
fn zero_byte_connections_are_aborts_not_errors() {
    both_modes(|mode| {
        let config = ServerConfig {
            threads: 2,
            mode,
            ..ServerConfig::default()
        };
        let stats = with_server(config, |addr| {
            // Warm request so the error counter has a baseline of zero
            // alongside real traffic.
            assert!(fetch(addr, "/").contains("200 OK"));
            for _ in 0..3 {
                // Connect and close without sending a byte: the port-scan
                // shape. These used to be answered 400 and counted as
                // errors, skewing the error rate.
                let s = TcpStream::connect(addr).unwrap();
                drop(s);
            }
            std::thread::sleep(Duration::from_millis(200));
        });
        assert!(
            stats.connections_aborted >= 3,
            "{mode:?}: {stats:?} should count the silent closes"
        );
        assert_eq!(stats.errors, 0, "{mode:?}: aborts are not errors {stats:?}");
        assert_eq!(stats.requests, 2, "{mode:?}: only `/` and `/quit` routed");
        assert_eq!(stats.accept_errors, 0, "{mode:?}: {stats:?}");
    });
}
