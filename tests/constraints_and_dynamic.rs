//! Integration tests for integrity-constraint verification ([FER 98b]) and
//! incremental / click-time evaluation ([FER 98c]) over the realistic
//! workload sites.

use strudel::site::{Constraint, Target, Verdict};
use strudel::synth::{news, org};

#[test]
fn org_site_structural_constraints() {
    let src = org::generate(60, 11);
    let mut s = org::system(&src).unwrap();

    // All pages reachable from the root: the schema alone cannot guarantee
    // it (members are linked through conditional joins), the concrete graph
    // decides.
    let (schema_v, exact) = s
        .verify(&Constraint::AllReachableFrom {
            root: "RootPage".into(),
        })
        .unwrap();
    match schema_v {
        Verdict::Satisfied => assert!(exact.is_none()),
        Verdict::Unknown(_) => assert_eq!(exact, Some(Verdict::Satisfied)),
        Verdict::Violated(v) => panic!("unexpected schema violation: {v}"),
    }

    // Every member page points back to its department page.
    let (schema_v, exact) = s
        .verify(&Constraint::EveryHasEdge {
            from: "MemberPage".into(),
            label: "Department".into(),
            to: "DeptPage".into(),
        })
        .unwrap();
    let decided = exact.unwrap_or(schema_v);
    assert_eq!(decided, Verdict::Satisfied);

    // A constraint that genuinely fails: not every department page has a
    // "Pub" edge to a publication page.
    let (schema_v, exact) = s
        .verify(&Constraint::EveryHasEdge {
            from: "DeptPage".into(),
            label: "Pub".into(),
            to: "PubPage".into(),
        })
        .unwrap();
    let decided = exact.unwrap_or(schema_v);
    assert!(matches!(decided, Verdict::Violated(_)), "{decided:?}");
}

#[test]
fn news_dynamic_site_agrees_with_materialization_everywhere() {
    let mut s = news::system(50, 21, false).unwrap();
    let build = s.build_site().unwrap();
    let dynamic = s.dynamic_site().unwrap();

    for (name, args, oid) in build.table.iter() {
        let page = strudel::site::PageRef {
            skolem: name.to_string(),
            args: args.to_vec(),
        };
        let links = dynamic.expand(&page).unwrap();
        assert_eq!(
            links.len(),
            build.graph.out_edges(oid).len(),
            "out-degree mismatch on {page}"
        );
    }
}

#[test]
fn click_path_browsing_without_materialization() {
    let mut s = news::system(120, 22, false).unwrap();
    let dynamic = s.dynamic_site().unwrap();
    let roots = dynamic.roots();
    assert_eq!(roots.len(), 1);

    // Walk: front page → a section → a summary's full article → related.
    let front_links = dynamic.expand(&roots[0]).unwrap();
    let section = front_links
        .iter()
        .find_map(|l| match (&l.label[..], &l.target) {
            ("Section", Target::Page(p)) => Some(p.clone()),
            _ => None,
        })
        .expect("a section link");
    let section_links = dynamic.expand(&section).unwrap();
    let summary = section_links
        .iter()
        .find_map(|l| match (&l.label[..], &l.target) {
            ("Story", Target::Page(p)) => Some(p.clone()),
            _ => None,
        })
        .expect("a story link");
    let summary_links = dynamic.expand(&summary).unwrap();
    let article = summary_links
        .iter()
        .find_map(|l| match (&l.label[..], &l.target) {
            ("Full", Target::Page(p)) => Some(p.clone()),
            _ => None,
        })
        .expect("a full-article link");
    let article_links = dynamic.expand(&article).unwrap();
    assert!(article_links.iter().any(|l| l.label == "headline"));

    let stats = dynamic.stats();
    assert!(stats.expansions >= 4);
    // Far fewer clause queries than a full materialization would need.
    assert!(stats.clause_queries < 60, "{stats:?}");
}

#[test]
fn repeated_clicks_are_cached() {
    let mut s = news::system(60, 23, false).unwrap();
    let dynamic = s.dynamic_site().unwrap();
    let root = dynamic.roots().pop().unwrap();
    dynamic.expand(&root).unwrap();
    let q1 = dynamic.stats().clause_queries;
    dynamic.expand(&root).unwrap();
    dynamic.expand(&root).unwrap();
    assert_eq!(
        dynamic.stats().clause_queries,
        q1,
        "re-clicks must hit the cache"
    );
}

#[test]
fn proprietary_exclusion_constraint_on_external_design() {
    // An external site design that (correctly) never links proprietary
    // project pages, verified statically.
    let mut s = strudel::Strudel::new();
    s.add_ddl_source(
        "projects",
        r#"
object p1 in Projects { name "open" }
object p2 in Projects { name "secret" proprietary true }
"#,
    );
    s.add_site_query(
        r#"CREATE Root()
           { WHERE Projects(p), not(p -> "proprietary" -> true), p -> "name" -> n
             CREATE Page(p) LINK Page(p) -> "Name" -> n, Root() -> "Project" -> Page(p) }
           { WHERE Projects(p), p -> "proprietary" -> true
             CREATE SecretPage(p) }"#,
    )
    .unwrap();
    let (schema_v, exact) = s
        .verify(&Constraint::NoneReachable {
            from: "Root".into(),
            forbidden: "SecretPage".into(),
        })
        .unwrap();
    assert_eq!(schema_v, Verdict::Satisfied);
    assert!(exact.is_none(), "the schema alone decides");
}

// ---- recover_query over the realistic workload definitions ----

#[test]
fn recovered_queries_equivalent_for_workloads() {
    use strudel::graph::ddl;
    use strudel::site::SiteSchema;
    use strudel::struql::{parse_query, EvalOptions};

    // News site, aggregate-free fragment (recovery covers the full AST, but
    // comparing output graphs is cleanest on the core fragment).
    let data = ddl::parse(&strudel::synth::news::generate_ddl(40, 12)).unwrap();
    let q = parse_query(strudel::synth::news::SITE_QUERY).unwrap();
    let schema = SiteSchema::from_query(&q);
    let recovered = schema.recover_query();
    let opts = EvalOptions::default();
    let a = q.evaluate(&data, &opts).unwrap();
    let b = recovered.evaluate(&data, &opts).unwrap();
    assert_eq!(a.table.len(), b.table.len(), "same page census");
    assert_eq!(a.graph.edge_count(), b.graph.edge_count());
}

#[test]
fn site_schema_dot_for_org_site_is_complete() {
    use strudel::site::SiteSchema;
    use strudel::struql::parse_query;
    let q = parse_query(strudel::synth::org::SITE_QUERY).unwrap();
    let schema = SiteSchema::from_query(&q);
    let dot = schema.to_dot();
    for page_type in [
        "RootPage",
        "PeopleIndex",
        "DeptIndex",
        "ProjectIndex",
        "PubIndex",
        "MemberPage",
        "DeptPage",
        "ProjectPage",
        "PubPage",
        "PubYearPage",
        "CategoryPage",
        "DemoPage",
    ] {
        assert!(dot.contains(page_type), "schema misses {page_type}");
    }
    // The complexity measure the paper suggests: link clauses.
    assert!(
        schema.edges().len() >= 20,
        "{} link kinds",
        schema.edges().len()
    );
}
