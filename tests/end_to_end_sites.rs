//! End-to-end tests of the §5.1 experience sites: the organization site,
//! the news site (general + sports-only), the personal home pages, and the
//! bilingual site — each through the full wrappers → mediator → StruQL →
//! templates pipeline.

use strudel::synth::{bib, bilingual, news, org};

#[test]
fn org_site_at_paper_scale_smoke() {
    // §5.1: "approximately 400 users". Scaled to 100 here to keep the test
    // fast; the benchmark harness runs the full 400.
    let src = org::generate(100, 1997);
    let mut s = org::system(&src).unwrap();
    let build = s.build_site().unwrap();
    assert_eq!(build.pages_of("MemberPage").len(), 100);
    assert_eq!(build.pages_of("DeptPage").len(), 100 / 40 + 1);
    let html = s.generate_site(&["RootPage"]).unwrap();
    assert!(html.pages.len() >= 100, "only {} pages", html.pages.len());
    // Every member page carries a name and an email.
    let member_pages: Vec<&String> = html
        .pages
        .iter()
        .filter(|(k, _)| k.starts_with("memberpage"))
        .map(|(_, v)| v)
        .collect();
    assert_eq!(member_pages.len(), 100);
    assert!(member_pages
        .iter()
        .all(|p| p.contains("@research.example.com")));
}

#[test]
fn org_external_version_hides_proprietary_material() {
    let src = org::generate(60, 2024);
    let mut s = org::system(&src).unwrap();
    *s.templates_mut() = org::templates_external().unwrap();
    let html = s.generate_site(&["RootPage"]).unwrap();
    for (name, page) in &html.pages {
        assert!(
            !page.contains("PROPRIETARY - internal use only"),
            "{name} leaks proprietary banner"
        );
        if name.starts_with("memberpage") {
            assert!(!page.contains("Phone:"), "{name} leaks a phone number");
            assert!(!page.contains("Room:"), "{name} leaks a room number");
        }
        if name.starts_with("pubpage") && page.contains("Restricted publication") {
            assert!(
                !page.contains(".ps.gz"),
                "{name} leaks a proprietary download"
            );
        }
    }
}

#[test]
fn news_site_article_multiplicity() {
    // "one article may appear in various formats on multiple pages": the
    // summary appears on section pages (embedded) and the full article has
    // its own page.
    let mut s = news::system(80, 5, false).unwrap();
    let html = s.generate_site(&["FrontPage"]).unwrap();
    let article_pages = html
        .pages
        .keys()
        .filter(|k| k.starts_with("articlepage"))
        .count();
    assert_eq!(article_pages, 80);
    let front = html
        .pages
        .iter()
        .find(|(k, _)| k.starts_with("frontpage"))
        .unwrap()
        .1;
    assert!(front.contains("Sections"));
    // Section pages embed summaries which link to full articles.
    let section = html
        .pages
        .iter()
        .find(|(k, _)| k.starts_with("sectionpage"))
        .unwrap()
        .1;
    assert!(
        section.contains("articlepage"),
        "summaries link to full articles"
    );
}

#[test]
fn sports_only_site_contains_only_sports() {
    let mut s = news::system(150, 5, true).unwrap();
    let build = s.build_site().unwrap();
    // Every article in the site is a sports article. (A sports article
    // cross-listed in a second section still creates that section's page —
    // same structure as the general site — but only sports stories appear.)
    let interner = build.graph.universe().interner();
    let section = interner.get("section").unwrap();
    let reader = build.graph.reader();
    let sports = strudel::graph::Value::str("sports");
    let mut full = 0usize;
    let mut stubs = 0usize;
    for ap in build.pages_of("ArticlePage") {
        let sections: Vec<_> = reader.attr_values(ap, section).collect();
        if sections.is_empty() {
            // A non-sports article referenced through a sports article's
            // `related` link: it gets a stub page (no attributes copied) —
            // the same kind of boundary inconsistency the paper found in
            // CNN's real text-only site.
            stubs += 1;
            assert!(reader.out(ap).is_empty(), "stub pages carry no content");
        } else {
            full += 1;
            assert!(
                sections.iter().any(|v| v.coerced_eq(&sports)),
                "non-sports article page: sections {sections:?}"
            );
        }
    }
    assert!(full > 0, "sports articles present");
    assert!(
        full >= stubs,
        "mostly real pages ({full} full vs {stubs} stubs)"
    );
}

#[test]
fn personal_homepage_has_both_sources() {
    let mut s = bib::system("Alon Levy", 20, 9).unwrap();
    let html = s.generate_site(&["RootPage"]).unwrap();
    let root = html
        .pages
        .iter()
        .find(|(k, _)| k.starts_with("rootpage"))
        .unwrap()
        .1;
    // From the DDL source:
    assert!(root.contains("alon@research.example.com"));
    assert!(root.contains("Professional activities"));
    // From the BibTeX source (year index):
    assert!(root.contains("Publications by Year"));
}

#[test]
fn bilingual_site_cross_links_resolve() {
    let mut s = bilingual::system(6, 77).unwrap();
    let html = s.generate_site(&["EnglishRoot", "FrenchRoot"]).unwrap();
    // Every English page links to a French page and vice versa.
    for (name, page) in &html.pages {
        if name.starts_with("enpage") {
            assert!(page.contains("frpage"), "{name} lacks a cross link");
        }
        if name.starts_with("frpage") {
            assert!(page.contains("enpage"), "{name} lacks a cross link");
        }
    }
}

#[test]
fn multiple_versions_share_one_site_graph() {
    // The central §5.2 claim: "once we built AT&T's internal research site,
    // building the external version was trivial" — no new queries, shared
    // site graph, different templates.
    let src = org::generate(40, 7);
    let mut s = org::system(&src).unwrap();
    let build_a = s.build_site().unwrap();
    *s.templates_mut() = org::templates_external().unwrap();
    let build_b = s.build_site().unwrap();
    assert_eq!(build_a.graph.node_count(), build_b.graph.node_count());
    assert_eq!(build_a.graph.edge_count(), build_b.graph.edge_count());
}

#[test]
fn mediator_refresh_propagates_source_changes() {
    // Warehousing: "this requires that the warehouse be updated when data
    // changes". Simulate a data change by a second system over bigger data.
    let mut small = news::system(10, 3, false).unwrap();
    let a = small.build_site().unwrap();
    let mut big = news::system(20, 3, false).unwrap();
    let b = big.build_site().unwrap();
    assert!(b.pages_of("ArticlePage").len() > a.pages_of("ArticlePage").len());
}

#[test]
fn generated_html_is_well_formed_enough() {
    // Sanity over all four example sites: every emitted page has balanced
    // <html> tags when the template provides them, and no template
    // directives leak into the output.
    let mut s = news::system(40, 8, false).unwrap();
    let html = s.generate_site(&["FrontPage"]).unwrap();
    for (name, page) in &html.pages {
        assert!(!page.contains("<SFMT"), "{name} leaks a directive");
        assert!(!page.contains("<SIF"), "{name} leaks a directive");
        assert!(!page.contains("<SFOR"), "{name} leaks a directive");
    }
}

#[test]
fn parallel_generation_matches_serial_at_site_scale() {
    let src = org::generate(60, 18);
    let mut serial_sys = org::system(&src).unwrap();
    let serial = serial_sys.generate_site(&["RootPage"]).unwrap();
    let mut par_sys = org::system(&src).unwrap();
    let parallel = par_sys.generate_site_parallel(&["RootPage"], 4).unwrap();
    assert_eq!(serial.pages.len(), parallel.pages.len());
    // Page contents agree page-by-page (node names are unique here, so the
    // deterministic naming coincides).
    for (name, html) in &serial.pages {
        assert_eq!(Some(html), parallel.pages.get(name), "{name} differs");
    }
}

#[test]
fn org_site_integrates_five_source_kinds() {
    // §5.1: "The AT&T Research site, for example, integrated five data
    // sources." Ours: People CSV, Departments CSV, projects DDL,
    // publications BibTeX, and wrapped legacy HTML demo pages.
    let src = org::generate(50, 19);
    assert!(!src.demo_pages.is_empty());
    let mut s = org::system(&src).unwrap();
    let build = s.build_site().unwrap();
    assert!(
        !build.pages_of("DemoPage").is_empty(),
        "HTML-wrapped demos become pages"
    );
    let html = s.generate_site(&["RootPage"]).unwrap();
    let demo = html
        .pages
        .iter()
        .find(|(k, _)| k.starts_with("demopage"))
        .expect("a demo page")
        .1;
    assert!(demo.contains("wrapped legacy demo page"));
    assert!(
        demo.contains("Demo"),
        "title extracted by the HTML wrapper: {demo}"
    );
}
