//! Property-based tests (proptest) over the core data structures and the
//! evaluation pipeline's invariants.

use proptest::prelude::*;
use strudel::graph::{ddl, Graph, Value};
use strudel::struql::{parse_query, EvalOptions, Optimizer};

// ---------------------------------------------------------------- values ----

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        (-1e9f64..1e9f64).prop_map(Value::Float),
    ]
}

proptest! {
    #[test]
    fn coerced_eq_is_reflexive_for_non_nan(v in arb_value()) {
        prop_assert!(v.coerced_eq(&v));
    }

    #[test]
    fn coerced_cmp_is_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering::*;
        match (a.coerced_cmp(&b), b.coerced_cmp(&a)) {
            (Some(Less), x) => prop_assert_eq!(x, Some(Greater)),
            (Some(Greater), x) => prop_assert_eq!(x, Some(Less)),
            (Some(Equal), x) => prop_assert_eq!(x, Some(Equal)),
            (None, x) => prop_assert_eq!(x, None),
        }
    }

    #[test]
    fn strict_eq_implies_coerced_eq(a in arb_value()) {
        let b = a.clone();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.coerced_eq(&b));
    }
}

// ----------------------------------------------------------------- interner ----

proptest! {
    #[test]
    fn interner_roundtrips(words in proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9_-]{0,10}", 1..30)) {
        let interner = strudel::graph::Interner::new();
        let syms: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            prop_assert_eq!(&*interner.resolve(*s), w.as_str());
            prop_assert_eq!(interner.intern(w), *s);
        }
    }
}

// ------------------------------------------------------------------- DDL ----

/// A random flat object graph as DDL text fragments.
fn arb_objects() -> impl Strategy<Value = Vec<(String, Vec<(String, String)>)>> {
    proptest::collection::vec(
        (
            "[a-z][a-z0-9]{0,6}",
            proptest::collection::vec(("[a-z][a-z0-9]{0,6}", "[a-zA-Z0-9 .]{0,10}"), 0..6),
        ),
        1..8,
    )
    .prop_map(|objs| {
        // Deduplicate object names (the DDL unifies same-named objects).
        let mut seen = std::collections::HashSet::new();
        objs.into_iter()
            .enumerate()
            .map(|(i, (name, attrs))| {
                let name = if seen.insert(name.clone()) {
                    name
                } else {
                    format!("{name}x{i}")
                };
                (name, attrs)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn ddl_print_parse_roundtrip(objs in arb_objects()) {
        let mut src = String::new();
        for (name, attrs) in &objs {
            src.push_str(&format!("object {name} in Things {{\n"));
            for (k, v) in attrs {
                src.push_str(&format!("  {k} \"{v}\"\n"));
            }
            src.push_str("}\n");
        }
        let g = ddl::parse(&src).unwrap();
        let printed = ddl::print(&g);
        let g2 = ddl::parse(&printed).unwrap();
        prop_assert_eq!(g.node_count(), g2.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        prop_assert_eq!(
            g.collection_str("Things").unwrap().len(),
            g2.collection_str("Things").unwrap().len()
        );
    }
}

// ------------------------------------------------------------- evaluation ----

/// A random labeled graph over a small label alphabet.
#[derive(Debug, Clone)]
struct RandGraph {
    n: usize,
    edges: Vec<(usize, usize, u8)>,
}

fn arb_graph() -> impl Strategy<Value = RandGraph> {
    (2usize..10).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0u8..3), 0..25)
            .prop_map(move |edges| RandGraph { n, edges })
    })
}

fn build(rg: &RandGraph) -> Graph {
    let mut g = Graph::standalone();
    let nodes: Vec<_> = (0..rg.n)
        .map(|i| g.new_node(Some(&format!("n{i}"))))
        .collect();
    for &n in &nodes {
        g.add_to_collection_str("Nodes", Value::Node(n));
    }
    let labels = ["a", "b", "c"];
    let mut seen = std::collections::HashSet::new();
    for &(f, t, l) in &rg.edges {
        if seen.insert((f, t, l)) {
            g.add_edge_str(nodes[f], labels[l as usize], Value::Node(nodes[t]))
                .unwrap();
        }
    }
    g.add_to_collection_str("Start", Value::Node(nodes[0]));
    g
}

/// Reference reachability by plain BFS over all edges.
fn bfs_reachable(rg: &RandGraph) -> std::collections::HashSet<usize> {
    let mut adj = vec![Vec::new(); rg.n];
    let mut dedup = std::collections::HashSet::new();
    for &(f, t, l) in &rg.edges {
        if dedup.insert((f, t, l)) {
            adj[f].push(t);
        }
    }
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![0usize];
    while let Some(x) = stack.pop() {
        if seen.insert(x) {
            stack.extend(adj[x].iter().copied());
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `p -> * -> q` computes exactly BFS reachability.
    #[test]
    fn star_reachability_matches_bfs(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query("WHERE Start(p), p -> * -> q COLLECT Reached(q)").unwrap();
        let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
        let reached = out.graph.collection_str("Reached").unwrap().len();
        prop_assert_eq!(reached, bfs_reachable(&rg).len());
    }

    /// All three optimizers produce the same output graph.
    #[test]
    fn optimizers_agree(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query(
            r#"WHERE Nodes(x), x -> "a" -> y, y -> l -> z
               CREATE P(x, z)
               LINK P(x, z) -> l -> z
               COLLECT Out(P(x, z))"#,
        )
        .unwrap();
        let mut results = Vec::new();
        for opt in [Optimizer::Naive, Optimizer::Heuristic, Optimizer::CostBased] {
            let out = q.evaluate(&g, &EvalOptions::with_optimizer(opt)).unwrap();
            results.push((
                out.graph.node_count(),
                out.graph.edge_count(),
                out.graph.collection_str("Out").map(|c| c.len()).unwrap_or(0),
            ));
        }
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[1], results[2]);
    }

    /// Indexed and unindexed evaluation agree.
    #[test]
    fn index_is_transparent(rg in arb_graph()) {
        let mut g = build(&rg);
        let q = parse_query(
            r#"WHERE y -> "b" -> z, x -> "a" -> y COLLECT Pairs(x), Ends(z)"#,
        )
        .unwrap();
        let with = q.evaluate(&g, &EvalOptions::default()).unwrap();
        g.set_indexing(false);
        let without = q.evaluate(&g, &EvalOptions::default()).unwrap();
        let count = |o: &strudel::struql::EvalOutput, c: &str| {
            o.graph.collection_str(c).map(|x| x.len()).unwrap_or(0)
        };
        prop_assert_eq!(count(&with, "Pairs"), count(&without, "Pairs"));
        prop_assert_eq!(count(&with, "Ends"), count(&without, "Ends"));
    }

    /// The TextOnly-style copy query produces a graph whose nodes are
    /// exactly the reachable originals (Skolem image is injective).
    #[test]
    fn copy_query_preserves_reachable_structure(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query(
            r#"WHERE Start(p), p -> * -> q, q -> l -> q0
               CREATE New(q), New(q0)
               LINK New(q) -> l -> New(q0)"#,
        )
        .unwrap();
        let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
        let reachable = bfs_reachable(&rg);
        // Copies exist only for reachable nodes that touch an edge.
        prop_assert!(out.table.len() <= reachable.len());
        // Edge count of the copy never exceeds the original's (set semantics).
        prop_assert!(out.graph.edge_count() <= g.edge_count());
    }

    /// Skolem identity: evaluating the same query twice into one graph with
    /// a shared table adds nothing new the second time.
    #[test]
    fn re_evaluation_is_idempotent(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query(
            r#"WHERE Nodes(x), x -> l -> y CREATE C(x) LINK C(x) -> l -> y COLLECT All(C(x))"#,
        )
        .unwrap();
        let opts = EvalOptions::default();
        let mut out = Graph::new(std::sync::Arc::clone(g.universe()));
        let mut table = strudel::struql::SkolemTable::new();
        q.evaluate_into(&g, &mut out, &mut table, &opts).unwrap();
        let (n1, e1) = (out.node_count(), out.edge_count());
        q.evaluate_into(&g, &mut out, &mut table, &opts).unwrap();
        prop_assert_eq!((n1, e1), (out.node_count(), out.edge_count()));
    }
}

// ---------------------------------------------------- incremental views ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental maintenance equals full re-evaluation for any insertion
    /// sequence (within the supported positive single-edge fragment).
    #[test]
    fn incremental_equals_rebuild(
        rg in arb_graph(),
        inserts in proptest::collection::vec((0usize..8, 0usize..8, 0u8..3), 1..12),
    ) {
        let mut data = build(&rg);
        let q = parse_query(
            r#"{ WHERE Nodes(x), x -> "a" -> y
                 CREATE P(x)
                 LINK P(x) -> "hit" -> y
                 { WHERE y -> "b" -> z
                   CREATE Q(z) LINK P(x) -> "deep" -> Q(z) } }"#,
        )
        .unwrap();
        let mut inc = strudel::site::IncrementalSite::new(&data, &q, EvalOptions::default()).unwrap();
        let nodes: Vec<_> = data.nodes().to_vec();
        let labels = ["a", "b", "c"];
        for (f, t, l) in inserts {
            let (f, t) = (f % nodes.len(), t % nodes.len());
            inc.add_edge(&mut data, nodes[f], labels[l as usize], Value::Node(nodes[t])).unwrap();
        }
        let rebuilt = q.evaluate(&data, &EvalOptions::default()).unwrap();
        // Compare the *maintained* part: the extension of every Skolem
        // function and each Skolem node's out-edges. (Raw edge counters
        // differ benignly: a node adopted from the data graph shares its
        // edge storage, so edges it gains later are visible but were not
        // counted at adoption time.)
        prop_assert_eq!(inc.table.len(), rebuilt.table.len());
        let sig = |g: &Graph, table: &strudel::struql::SkolemTable| {
            let mut out: Vec<String> = table
                .iter()
                .map(|(name, args, oid)| {
                    let mut edges: Vec<String> = g
                        .out_edges(oid)
                        .into_iter()
                        .map(|(l, v)| {
                            let v = match v {
                                Value::Node(n) => g.node_name(n).unwrap_or_default().to_string(),
                                other => other.to_string(),
                            };
                            format!("{}->{v}", g.resolve(l))
                        })
                        .collect();
                    edges.sort();
                    format!(
                        "{name}({}) {{{}}}",
                        args.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
                        edges.join(";")
                    )
                })
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(sig(&inc.site, &inc.table), sig(&rebuilt.graph, &rebuilt.table));
    }
}

/// Full signature of a maintained site: every Skolem page with its sorted
/// out-edges (node targets resolved through the Skolem table so maintained
/// and rebuilt graphs compare by *logical* page identity, not by oid), plus
/// every non-empty collection. Empty collections are skipped because a cold
/// evaluation never registers one, while the maintained site keeps an
/// emptied collection registered.
fn site_signature(g: &Graph, table: &strudel::struql::SkolemTable) -> Vec<String> {
    use std::collections::HashMap;
    let mut page_name: HashMap<strudel::graph::Oid, String> = HashMap::new();
    for (name, args, oid) in table.iter() {
        let args: Vec<String> = args.iter().map(ToString::to_string).collect();
        page_name.insert(oid, format!("{name}({})", args.join(",")));
    }
    let key = |v: &Value| match v {
        Value::Node(n) => page_name
            .get(n)
            .cloned()
            .or_else(|| g.node_name(*n).map(|s| s.to_string()))
            .unwrap_or_else(|| format!("{n:?}")),
        other => other.to_string(),
    };
    let mut out: Vec<String> = table
        .iter()
        .map(|(_, _, oid)| {
            let mut edges: Vec<String> = g
                .out_edges(oid)
                .into_iter()
                .map(|(l, v)| format!("{}->{}", g.resolve(l), key(&v)))
                .collect();
            edges.sort();
            format!("{} {{{}}}", page_name[&oid], edges.join(";"))
        })
        .collect();
    for &cname in g.collection_names() {
        let coll = g.collection(cname).expect("registered collection");
        if coll.is_empty() {
            continue;
        }
        let mut items: Vec<String> = coll.items().iter().map(key).collect();
        items.sort();
        out.push(format!("coll {}: [{}]", g.resolve(cname), items.join(",")));
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deletion-aware maintenance: any interleaving of edge/collection
    /// insertions and deletions against the news-site query leaves the
    /// maintained site graph equal to a cold rebuild *after every step*.
    #[test]
    fn insert_delete_interleaving_equals_rebuild(
        ops in proptest::collection::vec((0u8..4, 0usize..5, 0u8..3, 0u8..4), 1..24),
    ) {
        let q = parse_query(
            r#"CREATE FrontPage()
               { WHERE Articles(a), a -> l -> v
                 CREATE ArticlePage(a)
                 LINK ArticlePage(a) -> l -> v,
                      FrontPage() -> "Article" -> ArticlePage(a)
                 COLLECT Pages(ArticlePage(a))
                 { WHERE l = "section"
                   CREATE SectionPage(v)
                   LINK SectionPage(v) -> "Story" -> ArticlePage(a),
                        FrontPage() -> "Section" -> SectionPage(v) } }"#,
        )
        .unwrap();
        let labels = ["headline", "section", "topic"];
        let values = ["world", "sports", "local", "x"];

        let mut data = Graph::standalone();
        let arts: Vec<_> = (0..5)
            .map(|i| data.new_node(Some(&format!("art{i}"))))
            .collect();
        // A non-trivial starting site: two member articles, one shared section.
        for &a in &arts[..2] {
            data.add_to_collection_str("Articles", Value::Node(a));
            data.add_edge_str(a, "section", Value::str("world")).unwrap();
        }
        let mut inc =
            strudel::site::IncrementalSite::new(&data, &q, EvalOptions::default()).unwrap();

        for (step, &(kind, a, l, v)) in ops.iter().enumerate() {
            let (node, label) = (arts[a], labels[l as usize]);
            let val = Value::str(values[v as usize]);
            match kind {
                0 => inc.add_edge(&mut data, node, label, val).unwrap(),
                1 => inc.remove_edge(&mut data, node, label, &val).unwrap(),
                2 => inc
                    .add_to_collection(&mut data, "Articles", Value::Node(node))
                    .unwrap(),
                _ => inc
                    .remove_from_collection(&mut data, "Articles", &Value::Node(node))
                    .unwrap(),
            }
            let rebuilt = q.evaluate(&data, &EvalOptions::default()).unwrap();
            prop_assert_eq!(
                site_signature(&inc.site, &inc.table),
                site_signature(&rebuilt.graph, &rebuilt.table),
                "divergence after step {} {:?}",
                step,
                (kind, a, l, v)
            );
        }
    }
}

/// Queries outside the maintainable fragment are rejected up front with a
/// typed error, and the caller's fallback — a full rebuild per change —
/// still observes deletions.
#[test]
fn out_of_fragment_deletions_fall_back_to_rebuild() {
    use strudel::site::{IncrementalError, IncrementalSite};
    let mut data = Graph::standalone();
    for i in 0..3 {
        let a = data.new_node(Some(&format!("a{i}")));
        data.add_to_collection_str("Articles", Value::Node(a));
    }
    let agg = parse_query(
        r#"CREATE FrontPage()
           { WHERE Articles(a) LINK FrontPage() -> "count" -> COUNT(a) }"#,
    )
    .unwrap();
    match IncrementalSite::new(&data, &agg, EvalOptions::default()) {
        Err(IncrementalError::Aggregate(_)) => {}
        Err(other) => panic!("expected Aggregate rejection, got {other:?}"),
        Ok(_) => panic!("aggregate query must be rejected up front"),
    }

    let count_of = |g: &Graph| {
        let out = agg.evaluate(g, &EvalOptions::default()).unwrap();
        let (_, _, front) = out.table.iter().next().expect("FrontPage");
        out.graph
            .out_edges(front)
            .into_iter()
            .find_map(|(l, v)| (&*out.graph.resolve(l) == "count").then_some(v))
            .expect("count edge")
    };
    assert!(count_of(&data).coerced_eq(&Value::Int(3)));
    let gone = data.nodes()[0];
    assert!(data.remove_from_collection_str("Articles", &Value::Node(gone)));
    assert!(
        count_of(&data).coerced_eq(&Value::Int(2)),
        "rebuild sees the deletion"
    );
}

// ------------------------------------- reference-evaluator equivalence ----
//
// The vectorized engine (slab bindings, hash joins, memo caches) must be
// *set-equal* to a naive tuple-at-a-time evaluator on every conjunctive
// query it can express. The reference below shares nothing with the engine:
// it walks the graph through the public read API, one partial assignment at
// a time, and interprets RPEs by direct fixpoint instead of compiled NFAs.

mod reference {
    use std::collections::{BTreeMap, BTreeSet};
    use strudel::graph::{Graph, Value};
    use strudel::struql::ast::{CmpOp, PathStep};
    use strudel::struql::{Condition, Rpe, Term};

    pub type Row = BTreeMap<String, Value>;
    pub type RowSet = BTreeSet<Vec<(String, String)>>;

    pub fn vkey(v: &Value) -> String {
        format!("{v:?}")
    }

    pub fn canon<'a>(rows: impl Iterator<Item = &'a Row>) -> RowSet {
        rows.map(|r| {
            r.iter()
                .map(|(var, v)| (var.clone(), vkey(v)))
                .collect::<Vec<_>>()
        })
        .collect()
    }

    fn dedup(vals: Vec<Value>) -> Vec<Value> {
        let mut seen = BTreeSet::new();
        vals.into_iter().filter(|v| seen.insert(vkey(v))).collect()
    }

    /// All values reachable from each of `srcs` by a path matching `rpe`.
    pub fn rpe_targets(g: &Graph, srcs: &[Value], rpe: &Rpe) -> Vec<Value> {
        match rpe {
            Rpe::Label(l) => {
                let mut out = Vec::new();
                for s in srcs {
                    if let Some(n) = s.as_node() {
                        for (sym, v) in g.out_edges(n) {
                            if &*g.resolve(sym) == l.as_str() {
                                out.push(v);
                            }
                        }
                    }
                }
                dedup(out)
            }
            Rpe::AnyLabel => {
                let mut out = Vec::new();
                for s in srcs {
                    if let Some(n) = s.as_node() {
                        out.extend(g.out_edges(n).into_iter().map(|(_, v)| v));
                    }
                }
                dedup(out)
            }
            Rpe::Pred(_) => Vec::new(),
            Rpe::Seq(a, b) => {
                let mid = rpe_targets(g, srcs, a);
                rpe_targets(g, &mid, b)
            }
            Rpe::Alt(a, b) => {
                let mut out = rpe_targets(g, srcs, a);
                out.extend(rpe_targets(g, srcs, b));
                dedup(out)
            }
            Rpe::Opt(r) => {
                let mut out = srcs.to_vec();
                out.extend(rpe_targets(g, srcs, r));
                dedup(out)
            }
            Rpe::Star(r) => {
                let mut out = dedup(srcs.to_vec());
                let mut seen: BTreeSet<String> = out.iter().map(vkey).collect();
                let mut frontier = out.clone();
                while !frontier.is_empty() {
                    let next: Vec<Value> = rpe_targets(g, &frontier, r)
                        .into_iter()
                        .filter(|v| seen.insert(vkey(v)))
                        .collect();
                    out.extend(next.iter().cloned());
                    frontier = next;
                }
                out
            }
            Rpe::Plus(r) => {
                let once = rpe_targets(g, srcs, r);
                rpe_targets(g, &once, &Rpe::Star(r.clone()))
            }
        }
    }

    fn compare(l: &Value, op: CmpOp, r: &Value) -> bool {
        use std::cmp::Ordering::*;
        match op {
            CmpOp::Eq => l.coerced_eq(r),
            CmpOp::Ne => !l.coerced_eq(r),
            CmpOp::Lt => l.coerced_cmp(r) == Some(Less),
            CmpOp::Le => matches!(l.coerced_cmp(r), Some(Less | Equal)),
            CmpOp::Gt => l.coerced_cmp(r) == Some(Greater),
            CmpOp::Ge => matches!(l.coerced_cmp(r), Some(Greater | Equal)),
        }
    }

    fn term_value(t: &Term, row: &Row) -> Option<Value> {
        match t {
            Term::Var(v) => row.get(v).cloned(),
            Term::Lit(l) => Some(l.to_value()),
            _ => None,
        }
    }

    /// Extends `row` with `(var, value)` pairs, strictly unifying against
    /// existing bindings (and earlier pairs, so `x -> l -> x` works).
    fn unify(row: &Row, pairs: &[(&str, &Value)]) -> Option<Row> {
        let mut r = row.clone();
        for (var, val) in pairs {
            match r.get(*var) {
                Some(b) if b == *val => {}
                Some(_) => return None,
                None => {
                    r.insert((*var).to_string(), (*val).clone());
                }
            }
        }
        Some(r)
    }

    /// Every (source-node, label-string, target) edge of the graph.
    fn all_edges(g: &Graph) -> Vec<(Value, String, Value)> {
        let mut out = Vec::new();
        for &n in g.nodes() {
            for (sym, v) in g.out_edges(n) {
                out.push((Value::Node(n), g.resolve(sym).to_string(), v));
            }
        }
        out
    }

    /// Applies one condition to every partial assignment, tuple at a time.
    fn apply(g: &Graph, rows: Vec<Row>, cond: &Condition) -> Vec<Row> {
        match cond {
            Condition::Collection {
                name,
                arg: Term::Var(v),
                negated,
            } => {
                let coll = g.collection_str(name);
                let items: Vec<Value> = coll.map(|c| c.items().to_vec()).unwrap_or_default();
                let mut out = Vec::new();
                for row in rows {
                    match row.get(v) {
                        Some(val) => {
                            if items.contains(val) != *negated {
                                out.push(row);
                            }
                        }
                        None => {
                            assert!(!negated, "generator never negates unbound membership");
                            for item in &items {
                                let mut r = row.clone();
                                r.insert(v.clone(), item.clone());
                                out.push(r);
                            }
                        }
                    }
                }
                out
            }
            Condition::Collection { .. } => rows,
            Condition::Compare { lhs, op, rhs } => rows
                .into_iter()
                .filter(|row| match (term_value(lhs, row), term_value(rhs, row)) {
                    (Some(a), Some(b)) => compare(&a, *op, &b),
                    _ => false,
                })
                .collect(),
            Condition::In { var, set, negated } => rows
                .into_iter()
                .filter(|row| {
                    let Some(v) = row.get(var) else { return false };
                    set.iter().any(|l| l.to_value().coerced_eq(v)) != *negated
                })
                .collect(),
            Condition::Predicate { .. } => rows,
            Condition::Edge {
                from,
                step: PathStep::ArcVar(lv),
                to,
                negated,
            } => {
                assert!(!negated, "generator never negates arc-variable edges");
                let edges = all_edges(g);
                let mut out = Vec::new();
                for row in rows {
                    for (f, label, t) in &edges {
                        // Literal endpoints compare coerced; the arc
                        // variable compares coerced against a bound value.
                        if let Term::Lit(l) = from {
                            if !l.to_value().coerced_eq(f) {
                                continue;
                            }
                        }
                        if let Term::Lit(l) = to {
                            if !l.to_value().coerced_eq(t) {
                                continue;
                            }
                        }
                        let lval = Value::str(label);
                        if let Some(b) = row.get(lv) {
                            if !lval.coerced_eq(b) {
                                continue;
                            }
                        }
                        let mut pairs: Vec<(&str, &Value)> = Vec::new();
                        if let Term::Var(v) = from {
                            pairs.push((v, f));
                        }
                        // A bound arc variable was already compared coerced
                        // (label comparisons coerce); keep its binding.
                        if !row.contains_key(lv) {
                            pairs.push((lv, &lval));
                        }
                        if let Term::Var(v) = to {
                            pairs.push((v, t));
                        }
                        if let Some(r) = unify(&row, &pairs) {
                            out.push(r);
                        }
                    }
                }
                out
            }
            Condition::Edge {
                from,
                step: PathStep::Rpe(rpe),
                to,
                negated,
            } => {
                let mut out = Vec::new();
                for row in rows {
                    // Candidate sources: the bound value, or (single-label
                    // edges generated with unbound sources) every node.
                    let srcs: Vec<Value> = match from {
                        Term::Var(v) => match row.get(v) {
                            Some(b) => vec![b.clone()],
                            None => g.nodes().iter().map(|&n| Value::Node(n)).collect(),
                        },
                        Term::Lit(l) => vec![l.to_value()],
                        _ => continue,
                    };
                    for src in srcs {
                        let targets = rpe_targets(g, std::slice::from_ref(&src), rpe);
                        if *negated {
                            // Both endpoints are bound by construction:
                            // strict non-membership, exactly one row out.
                            let tv = match to {
                                Term::Var(v) => row.get(v).cloned().expect("bound"),
                                Term::Lit(l) => l.to_value(),
                                _ => continue,
                            };
                            if !targets.contains(&tv) {
                                out.push(row.clone());
                            }
                            continue;
                        }
                        match to {
                            Term::Var(v) => {
                                for t in &targets {
                                    let mut pairs: Vec<(&str, &Value)> = Vec::new();
                                    if let Term::Var(fv) = from {
                                        pairs.push((fv, &src));
                                    }
                                    pairs.push((v, t));
                                    if let Some(r) = unify(&row, &pairs) {
                                        out.push(r);
                                    }
                                }
                            }
                            Term::Lit(l) => {
                                let lv = l.to_value();
                                if targets.iter().any(|t| t.coerced_eq(&lv)) {
                                    let mut r = row.clone();
                                    if let Term::Var(fv) = from {
                                        r.insert(fv.clone(), src.clone());
                                    }
                                    out.push(r);
                                }
                            }
                            _ => {}
                        }
                    }
                }
                out
            }
            Condition::Edge { .. } => rows,
        }
    }

    /// Evaluates a condition list tuple-at-a-time, left to right.
    pub fn evaluate(g: &Graph, conds: &[Condition]) -> Vec<Row> {
        let mut rows = vec![Row::new()];
        for c in conds {
            rows = apply(g, rows, c);
        }
        rows
    }
}

/// Compact condition spec: (kind, var picks, label picks, literal).
type CondSpec = (u8, u8, u8, u8, u8, u8, u8, i64);

/// Decodes a compact spec into a condition list where every negated or
/// comparison variable has an earlier positive binder (the fragment over
/// which evaluation order is immaterial).
fn lower_conditions(specs: &[CondSpec]) -> Vec<strudel::struql::Condition> {
    use strudel::struql::ast::{CmpOp, Literal, PathStep};
    use strudel::struql::{Condition, Rpe, Term};

    const NODE_VARS: [&str; 4] = ["x", "y", "z", "w"];
    const ARC_VARS: [&str; 2] = ["la", "lb"];
    const LABELS: [&str; 4] = ["a", "b", "c", "val"];
    let label = |i: u8| LABELS[i as usize % 4].to_string();
    let rpe_of = |kind: u8, a: u8, b: u8| -> Rpe {
        let l = |i: u8| Rpe::Label(label(i));
        match kind % 9 {
            0 => l(a),
            1 => Rpe::AnyLabel,
            2 => Rpe::Seq(Box::new(l(a)), Box::new(l(b))),
            3 => Rpe::Alt(Box::new(l(a)), Box::new(l(b))),
            4 => Rpe::Star(Box::new(l(a))),
            5 => Rpe::any_path(),
            6 => Rpe::Plus(Box::new(l(a))),
            7 => Rpe::Opt(Box::new(l(a))),
            _ => Rpe::Seq(Box::new(l(a)), Box::new(Rpe::Star(Box::new(l(b))))),
        }
    };

    let mut bound: Vec<&str> = vec!["x"];
    let mut conds = vec![Condition::Collection {
        name: "Nodes".into(),
        arg: Term::var("x"),
        negated: false,
    }];
    for &(kind, p1, p2, p3, rk, ra, rb, k) in specs {
        let pick_bound = |i: u8, bound: &[&str]| bound[i as usize % bound.len()].to_string();
        let pick_node = |i: u8| NODE_VARS[i as usize % 4].to_string();
        match kind % 9 {
            // Membership (any binding state) / negated membership (bound).
            0 => {
                let v = pick_node(p1);
                if !bound.contains(&v.as_str()) {
                    bound.push(NODE_VARS[p1 as usize % 4]);
                }
                conds.push(Condition::Collection {
                    name: "Nodes".into(),
                    arg: Term::Var(v),
                    negated: false,
                });
            }
            1 => {
                let v = pick_bound(p1, &bound);
                conds.push(Condition::Collection {
                    name: "Nodes".into(),
                    arg: Term::Var(v),
                    negated: true,
                });
            }
            // Single-label edge, any binding state; target var or literal.
            2 => {
                let f = pick_node(p1);
                if !bound.contains(&f.as_str()) {
                    bound.push(NODE_VARS[p1 as usize % 4]);
                }
                let to = if p3 % 5 == 4 {
                    Term::Lit(Literal::Int(k))
                } else {
                    let t = pick_node(p3);
                    if !bound.contains(&t.as_str()) {
                        bound.push(NODE_VARS[p3 as usize % 4]);
                    }
                    Term::Var(t)
                };
                conds.push(Condition::Edge {
                    from: Term::Var(f),
                    step: PathStep::Rpe(Rpe::Label(label(p2))),
                    to,
                    negated: false,
                });
            }
            // Negated single-label edge over two bound variables.
            3 => {
                conds.push(Condition::Edge {
                    from: Term::Var(pick_bound(p1, &bound)),
                    step: PathStep::Rpe(Rpe::Label(label(p3))),
                    to: Term::Var(pick_bound(p2, &bound)),
                    negated: true,
                });
            }
            // Arc-variable edge, any binding state.
            4 => {
                let f = pick_node(p1);
                if !bound.contains(&f.as_str()) {
                    bound.push(NODE_VARS[p1 as usize % 4]);
                }
                let lv = ARC_VARS[p2 as usize % 2];
                if !bound.contains(&lv) {
                    bound.push(lv);
                }
                let to = if p3 % 5 == 4 {
                    Term::Lit(Literal::Int(k))
                } else {
                    let t = pick_node(p3);
                    if !bound.contains(&t.as_str()) {
                        bound.push(NODE_VARS[p3 as usize % 4]);
                    }
                    Term::Var(t)
                };
                conds.push(Condition::Edge {
                    from: Term::Var(f),
                    step: PathStep::ArcVar(lv.to_string()),
                    to,
                    negated: false,
                });
            }
            // General RPE from a bound source; target var or literal.
            5 => {
                let to = if p3 % 5 == 4 {
                    Term::Lit(Literal::Int(k))
                } else {
                    let t = pick_node(p3);
                    if !bound.contains(&t.as_str()) {
                        bound.push(NODE_VARS[p3 as usize % 4]);
                    }
                    Term::Var(t)
                };
                conds.push(Condition::Edge {
                    from: Term::Var(pick_bound(p1, &bound)),
                    step: PathStep::Rpe(rpe_of(rk, ra, rb)),
                    to,
                    negated: false,
                });
            }
            // Negated RPE over two bound variables.
            6 => {
                conds.push(Condition::Edge {
                    from: Term::Var(pick_bound(p1, &bound)),
                    step: PathStep::Rpe(rpe_of(rk, ra, rb)),
                    to: Term::Var(pick_bound(p2, &bound)),
                    negated: true,
                });
            }
            // Label-set membership of a bound arc variable, if any.
            7 => {
                let Some(lv) = bound.iter().find(|v| v.starts_with('l')) else {
                    continue;
                };
                conds.push(Condition::In {
                    var: lv.to_string(),
                    set: vec![Literal::Str(label(p2)), Literal::Str(label(p3))],
                    negated: k < 0,
                });
            }
            // Comparison against a literal on a bound variable.
            _ => {
                let op = [
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ][p2 as usize % 6];
                let rhs = if p3 % 2 == 0 {
                    Literal::Int(k)
                } else {
                    Literal::Str(label(p3))
                };
                conds.push(Condition::Compare {
                    lhs: Term::Var(pick_bound(p1, &bound)),
                    op,
                    rhs: Term::Lit(rhs),
                });
            }
        }
    }
    conds
}

/// Builds the random graph plus integer-valued `val` edges so literal
/// targets and comparisons have data to hit.
fn build_rich(rg: &RandGraph) -> Graph {
    let mut g = build(rg);
    let nodes = g.nodes().to_vec();
    for (i, &n) in nodes.iter().enumerate() {
        g.add_edge_str(n, "val", Value::Int((i as i64 * 7) % 5))
            .unwrap();
    }
    g
}

fn engine_row_set(b: &strudel::struql::Bindings) -> reference::RowSet {
    let vars = b.vars().to_vec();
    b.rows()
        .map(|row| {
            let mut r: Vec<(String, String)> = vars
                .iter()
                .cloned()
                .zip(row.iter().map(reference::vkey))
                .collect();
            r.sort();
            r
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The vectorized engine is set-equal to the tuple-at-a-time reference
    /// under every optimizer, with indexes on and off.
    #[test]
    fn engine_matches_reference_evaluator(
        rg in arb_graph(),
        specs in proptest::collection::vec(
            (0u8..9, 0u8..8, 0u8..8, 0u8..8, 0u8..9, 0u8..4, 0u8..4, -3i64..6),
            0..6,
        ),
    ) {
        use strudel::struql::{evaluate_conditions, Bindings};
        let mut g = build_rich(&rg);
        let conds = lower_conditions(&specs);
        let expect = reference::canon(reference::evaluate(&g, &conds).iter());
        for opt in [Optimizer::Naive, Optimizer::Heuristic, Optimizer::CostBased] {
            let opts = EvalOptions::with_optimizer(opt);
            let got = evaluate_conditions(&conds, &g, Bindings::unit(), &opts).unwrap();
            prop_assert_eq!(engine_row_set(&got), expect.clone(), "optimizer {:?}", opt);
        }
        g.set_indexing(false);
        let got = evaluate_conditions(&conds, &g, Bindings::unit(), &EvalOptions::default()).unwrap();
        prop_assert_eq!(engine_row_set(&got), expect, "unindexed");
    }

    /// Grouped aggregates (COUNT/SUM/MAX over distinct bindings) match a
    /// reference computed from the tuple-at-a-time join.
    #[test]
    fn aggregates_match_reference(rg in arb_graph()) {
        use std::collections::BTreeMap;
        let g = build_rich(&rg);
        let q = parse_query(
            r#"WHERE Nodes(x), x -> "a" -> y, y -> "val" -> v
               CREATE P(x)
               LINK P(x) -> "cnt" -> COUNT(y),
                    P(x) -> "total" -> SUM(v),
                    P(x) -> "top" -> MAX(v)"#,
        )
        .unwrap();

        // Reference groups from the naive join.
        let conds = [
            strudel::struql::Condition::Collection {
                name: "Nodes".into(),
                arg: strudel::struql::Term::var("x"),
                negated: false,
            },
            strudel::struql::Condition::edge(
                strudel::struql::Term::var("x"), "a", strudel::struql::Term::var("y")),
            strudel::struql::Condition::edge(
                strudel::struql::Term::var("y"), "val", strudel::struql::Term::var("v")),
        ];
        let mut groups: BTreeMap<String, (std::collections::BTreeSet<String>, BTreeMap<String, i64>)> =
            BTreeMap::new();
        for row in reference::evaluate(&g, &conds) {
            let x = reference::vkey(&row["x"]);
            let e = groups.entry(x).or_default();
            e.0.insert(reference::vkey(&row["y"]));
            if let Value::Int(i) = row["v"] {
                e.1.insert(reference::vkey(&row["v"]), i);
            }
        }

        let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
        let mut seen = 0usize;
        for (name, args, oid) in out.table.iter() {
            prop_assert_eq!(name, "P");
            let key = reference::vkey(&args[0]);
            let (ys, vs) = &groups[&key];
            let edges: BTreeMap<String, Value> = out
                .graph
                .out_edges(oid)
                .into_iter()
                .map(|(l, v)| (out.graph.resolve(l).to_string(), v))
                .collect();
            prop_assert!(edges["cnt"].coerced_eq(&Value::Int(ys.len() as i64)),
                "cnt {:?} != {}", edges.get("cnt"), ys.len());
            let total: i64 = vs.values().sum();
            prop_assert!(edges["total"].coerced_eq(&Value::Int(total)),
                "total {:?} != {}", edges.get("total"), total);
            let top = *vs.values().max().unwrap();
            prop_assert!(edges["top"].coerced_eq(&Value::Int(top)),
                "top {:?} != {}", edges.get("top"), top);
            seen += 1;
        }
        prop_assert_eq!(seen, groups.len());
    }
}

/// A-OPT regression guard: the adversarially ordered 7-condition query from
/// the optimizer-ablation experiment must give identical results under all
/// three strategies, and the cost-based plan must never materialize more
/// intermediate rows than the naive left-to-right order.
#[test]
fn a_opt_seven_condition_regression_guard() {
    use strudel::wrappers::{bibtex, relational};
    let src = strudel::synth::org::generate(200, 1997);
    let mut g = Graph::standalone();
    let people = relational::Table::from_csv("People", &src.people_csv).unwrap();
    let depts = relational::Table::from_csv("Departments", &src.departments_csv).unwrap();
    relational::load_into(&mut g, &[people, depts], &[]).unwrap();
    bibtex::load_into(&mut g, &src.publications_bib).unwrap();

    let q = parse_query(
        r#"WHERE x -> "author" -> a, m -> "name" -> a,
                 m -> "title" -> "Director",
                 Publications(x), People(m),
                 x -> "year" -> y, y >= 1996
           CREATE Hit(x, m)
           LINK Hit(x, m) -> "paper" -> x, Hit(x, m) -> "person" -> m
           COLLECT Hits(Hit(x, m))"#,
    )
    .unwrap();

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for opt in [Optimizer::Naive, Optimizer::Heuristic, Optimizer::CostBased] {
        let out = q.evaluate(&g, &EvalOptions::with_optimizer(opt)).unwrap();
        rows.push(out.stats.intermediate_rows);
        results.push((
            out.graph.node_count(),
            out.graph.edge_count(),
            out.graph
                .collection_str("Hits")
                .map(|c| c.len())
                .unwrap_or(0),
        ));
    }
    assert_eq!(results[0], results[1], "heuristic diverges from naive");
    assert_eq!(results[1], results[2], "cost-based diverges from heuristic");
    assert!(results[0].2 > 0, "guard query must match something");
    assert!(
        rows[2] <= rows[0],
        "cost-based materialized more rows than naive: {} > {}",
        rows[2],
        rows[0]
    );
    assert!(
        rows[1] <= rows[0],
        "heuristic materialized more rows than naive: {} > {}",
        rows[1],
        rows[0]
    );
}

// ------------------------------------------------- click-time invalidation ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Click-time cache invalidation is sound for any edge insertion: a
    /// cache warmed on the old graph, invalidated for the delta, and then
    /// carried to the new graph serves exactly the cold answers. Entries
    /// that survive invalidation are really still valid.
    #[test]
    fn invalidate_then_expand_equals_cold_expand(
        rg in arb_graph(),
        insert in (0usize..8, 0usize..8, 0u8..3),
    ) {
        use strudel::site::{Delta, DynamicSite};
        let q = parse_query(
            r#"{ WHERE Nodes(x), x -> "a" -> y
                 CREATE P(x)
                 LINK P(x) -> "hit" -> y
                 { WHERE y -> "b" -> z
                   CREATE Q(z) LINK P(x) -> "deep" -> Q(z), Q(z) -> "from" -> y } }"#,
        )
        .unwrap();
        // Replay the same construction script twice so node ids and interned
        // symbols align; the "new" graph additionally gets the inserted edge.
        let g_old = build(&rg);
        let mut g_new = build(&rg);
        let (f, t, l) = insert;
        let (f, t) = (f % rg.n, t % rg.n);
        let label = ["a", "b", "c"][l as usize];
        let nodes: Vec<_> = g_new.nodes().to_vec();
        g_new.add_edge_str(nodes[f], label, Value::Node(nodes[t])).unwrap();
        let delta = Delta::EdgeAdded {
            from: g_old.nodes()[f],
            label: g_old.sym(label),
            to: Value::Node(g_old.nodes()[t]),
        };

        // Warm every page's clause results on the old graph, then invalidate.
        let old_site = DynamicSite::new(&g_old, &q, EvalOptions::default()).unwrap();
        for sk in ["P", "Q"] {
            for page in old_site.pages_of(sk).unwrap() {
                old_site.expand(&page).unwrap();
            }
        }
        old_site.invalidate(&delta);

        // Carry the surviving entries to a site over the new graph.
        let warm = DynamicSite::new(&g_new, &q, EvalOptions::default()).unwrap();
        warm.cache_restore(old_site.cache_snapshot());
        let cold = DynamicSite::new(&g_new, &q, EvalOptions::default()).unwrap();
        for sk in ["P", "Q"] {
            // Enumerate on the new graph: insertion is monotone, so these
            // pages are a superset of the pages warmed above.
            for page in cold.pages_of(sk).unwrap() {
                prop_assert_eq!(warm.expand(&page).unwrap(), cold.expand(&page).unwrap(), "{}", page);
            }
        }
    }
}

// ------------------------------------------------- parallel determinism ----
//
// The data-parallel evaluator must be *byte-identical* to the sequential
// one: contiguous row chunks merged in chunk order reproduce the exact
// sequential row order, and parallel construction replays its gathered
// actions in row order. These properties pin that down at jobs ∈ {1, 2, 4}.

/// A graph wide enough that intermediate relations exceed the parallel
/// chunking threshold, so worker pools really run.
fn arb_graph_wide() -> impl Strategy<Value = RandGraph> {
    (30usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0u8..3), 60..240)
            .prop_map(move |edges| RandGraph { n, edges })
    })
}

/// The exact row sequence of a bindings relation (order-sensitive).
fn rows_exact(b: &strudel::struql::Bindings) -> Vec<Vec<String>> {
    b.rows()
        .map(|row| row.iter().map(reference::vkey).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Condition evaluation at jobs ∈ {2, 4} yields the same schema and the
    /// same rows *in the same order* as the sequential evaluator, across
    /// edge scans, arc variables, RPE expansions, label-set filters,
    /// comparisons and negation.
    #[test]
    fn parallel_evaluation_matches_sequential(
        rg in arb_graph_wide(),
        rk in 0u8..9, ra in 0u8..3, rb in 0u8..3,
        cmp in 0u8..6, lit in -2i64..5,
        neg in 0u8..3,
    ) {
        use strudel::struql::ast::{CmpOp, Literal, PathStep};
        use strudel::struql::{evaluate_conditions, Bindings, Condition, Rpe, Term};
        let g = build_rich(&rg);
        let labels = ["a", "b", "c"];
        let l = |i: u8| Rpe::Label(labels[i as usize % 3].to_string());
        let rpe = match rk % 6 {
            0 => l(ra),
            1 => Rpe::AnyLabel,
            2 => Rpe::Seq(Box::new(l(ra)), Box::new(l(rb))),
            3 => Rpe::Alt(Box::new(l(ra)), Box::new(l(rb))),
            4 => Rpe::Star(Box::new(l(ra))),
            _ => Rpe::Opt(Box::new(l(ra))),
        };
        let conds = vec![
            Condition::Collection { name: "Nodes".into(), arg: Term::var("x"), negated: false },
            Condition::Edge {
                from: Term::var("x"),
                step: PathStep::ArcVar("la".into()),
                to: Term::var("y"),
                negated: false,
            },
            Condition::Edge {
                from: Term::var("y"),
                step: PathStep::Rpe(rpe),
                to: Term::var("z"),
                negated: false,
            },
            Condition::In {
                var: "la".into(),
                set: vec![Literal::Str("a".into()), Literal::Str("b".into())],
                negated: false,
            },
            Condition::Edge {
                from: Term::var("x"),
                step: PathStep::Rpe(Rpe::Label(labels[neg as usize % 3].to_string())),
                to: Term::var("z"),
                negated: true,
            },
            Condition::Edge {
                from: Term::var("y"),
                step: PathStep::Rpe(Rpe::Label("val".into())),
                to: Term::var("v"),
                negated: false,
            },
            Condition::Compare {
                lhs: Term::var("v"),
                op: [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
                    [cmp as usize % 6],
                rhs: Term::Lit(Literal::Int(lit)),
            },
        ];
        let seq = evaluate_conditions(&conds, &g, Bindings::unit(), &EvalOptions::with_jobs(1))
            .unwrap();
        for jobs in [2usize, 4] {
            let par = evaluate_conditions(
                &conds, &g, Bindings::unit(), &EvalOptions::with_jobs(jobs)).unwrap();
            prop_assert_eq!(par.vars(), seq.vars(), "schema at jobs {}", jobs);
            prop_assert_eq!(rows_exact(&par), rows_exact(&seq), "rows at jobs {}", jobs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The PR 3 interleaving property holds under parallel evaluation: a
    /// site maintained with jobs=2 stays equal, step by step, to sequential
    /// cold rebuilds (and to parallel jobs=4 rebuilds).
    #[test]
    fn parallel_incremental_interleaving_equals_rebuild(
        ops in proptest::collection::vec((0u8..4, 0usize..5, 0u8..3, 0u8..4), 1..16),
    ) {
        let q = parse_query(
            r#"CREATE FrontPage()
               { WHERE Articles(a), a -> l -> v
                 CREATE ArticlePage(a)
                 LINK ArticlePage(a) -> l -> v,
                      FrontPage() -> "Article" -> ArticlePage(a)
                 COLLECT Pages(ArticlePage(a))
                 { WHERE l = "section"
                   CREATE SectionPage(v)
                   LINK SectionPage(v) -> "Story" -> ArticlePage(a),
                        FrontPage() -> "Section" -> SectionPage(v) } }"#,
        )
        .unwrap();
        let labels = ["headline", "section", "topic"];
        let values = ["world", "sports", "local", "x"];

        let mut data = Graph::standalone();
        let arts: Vec<_> = (0..5)
            .map(|i| data.new_node(Some(&format!("art{i}"))))
            .collect();
        for &a in &arts[..2] {
            data.add_to_collection_str("Articles", Value::Node(a));
            data.add_edge_str(a, "section", Value::str("world")).unwrap();
        }
        let mut inc =
            strudel::site::IncrementalSite::new(&data, &q, EvalOptions::with_jobs(2)).unwrap();

        for (step, &(kind, a, l, v)) in ops.iter().enumerate() {
            let (node, label) = (arts[a], labels[l as usize]);
            let val = Value::str(values[v as usize]);
            match kind {
                0 => inc.add_edge(&mut data, node, label, val).unwrap(),
                1 => inc.remove_edge(&mut data, node, label, &val).unwrap(),
                2 => inc
                    .add_to_collection(&mut data, "Articles", Value::Node(node))
                    .unwrap(),
                _ => inc
                    .remove_from_collection(&mut data, "Articles", &Value::Node(node))
                    .unwrap(),
            }
            let sequential = q.evaluate(&data, &EvalOptions::with_jobs(1)).unwrap();
            let parallel = q.evaluate(&data, &EvalOptions::with_jobs(4)).unwrap();
            prop_assert_eq!(
                site_signature(&inc.site, &inc.table),
                site_signature(&sequential.graph, &sequential.table),
                "maintained (jobs=2) vs sequential rebuild after step {} {:?}",
                step,
                (kind, a, l, v)
            );
            prop_assert_eq!(
                site_signature(&parallel.graph, &parallel.table),
                site_signature(&sequential.graph, &sequential.table),
                "parallel rebuild (jobs=4) vs sequential after step {}",
                step
            );
        }
    }
}

/// The whole pipeline — evaluation, construction, page rendering — gives
/// byte-identical output at every job count: the site graph prints to the
/// same DDL and every rendered page is the same string. 150 articles keep
/// the bindings relations and construction row counts well above the
/// parallel chunking thresholds, so the worker pools really run.
#[test]
fn parallel_full_build_matches_sequential() {
    let build_at = |jobs: usize| {
        let mut s = strudel::synth::news::system(150, 7, false).unwrap();
        s.set_jobs(jobs);
        let build = s.build_site().unwrap();
        let graph_ddl = strudel::graph::ddl::print(&build.graph);
        let site = s.generate_site(&["FrontPage"]).unwrap();
        let mut pages: Vec<(String, String)> = site
            .pages
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        pages.sort();
        (graph_ddl, pages)
    };
    let sequential = build_at(1);
    for jobs in [2usize, 4] {
        let parallel = build_at(jobs);
        assert_eq!(
            parallel.0, sequential.0,
            "site graph diverges at jobs={jobs}"
        );
        assert_eq!(
            parallel.1.len(),
            sequential.1.len(),
            "page count diverges at jobs={jobs}"
        );
        for (p, s) in parallel.1.iter().zip(&sequential.1) {
            assert_eq!(p, s, "page diverges at jobs={jobs}");
        }
    }
}

// -------------------------------------------------- compiled plan layer ----
//
// PR 7 compiles each conjunction into an explicit physical plan (operator
// choice + cardinality estimates) that is cached across evaluations and
// adaptively re-optimized from runtime row counts. None of that machinery
// may change *what* is computed: every planner/cache/adaptive configuration
// must be set-equal to the reference interpreter, and whole-site builds
// must stay byte-identical.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Executing the compiled physical plan — under every optimizer, with
    /// the plan cache on or off, and with adaptive re-optimization forced
    /// eager (`adapt_factor = 1.0`) or disabled — is set-equal to the
    /// tuple-at-a-time reference interpreter.
    #[test]
    fn compiled_plans_match_reference(
        rg in arb_graph(),
        specs in proptest::collection::vec(
            (0u8..9, 0u8..8, 0u8..8, 0u8..8, 0u8..9, 0u8..4, 0u8..4, -3i64..6),
            0..6,
        ),
    ) {
        use strudel::struql::{evaluate_conditions, Bindings};
        let g = build_rich(&rg);
        let conds = lower_conditions(&specs);
        let expect = reference::canon(reference::evaluate(&g, &conds).iter());
        for opt in [Optimizer::Naive, Optimizer::Heuristic, Optimizer::CostBased] {
            for (cache, adaptive) in [(true, true), (true, false), (false, true), (false, false)] {
                let mut opts = EvalOptions::with_optimizer(opt);
                opts.use_plan_cache = cache;
                opts.adaptive = adaptive;
                opts.adapt_factor = 1.0; // replan on any estimate divergence
                let got = evaluate_conditions(&conds, &g, Bindings::unit(), &opts).unwrap();
                prop_assert_eq!(
                    engine_row_set(&got),
                    expect.clone(),
                    "optimizer {:?} cache {} adaptive {}",
                    opt,
                    cache,
                    adaptive
                );
            }
        }
    }
}

/// Whole-site builds are byte-identical across all three optimizers and
/// with the plan cache on or off: same site-graph DDL, same rendered page
/// bytes. The canonical binding order makes construction order (hence oid
/// assignment and page text) plan-independent.
#[test]
fn optimizer_and_plan_cache_are_byte_invisible() {
    let build_at = |opt: Optimizer, cache: bool| {
        let mut s = strudel::synth::news::system(60, 7, false).unwrap();
        s.options_mut().optimizer = opt;
        s.options_mut().use_plan_cache = cache;
        let build = s.build_site().unwrap();
        let graph_ddl = ddl::print(&build.graph);
        let site = s.generate_site(&["FrontPage"]).unwrap();
        let mut pages: Vec<(String, String)> = site
            .pages
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        pages.sort();
        (graph_ddl, pages)
    };
    let baseline = build_at(Optimizer::CostBased, true);
    for (opt, cache) in [
        (Optimizer::Naive, true),
        (Optimizer::Heuristic, true),
        (Optimizer::CostBased, false),
        (Optimizer::Naive, false),
    ] {
        let other = build_at(opt, cache);
        assert_eq!(
            other.0, baseline.0,
            "site graph diverges under {opt:?} cache={cache}"
        );
        assert_eq!(
            other.1, baseline.1,
            "pages diverge under {opt:?} cache={cache}"
        );
    }
}

/// Plan-cache lifecycle regression: the first evaluation compiles (miss),
/// re-evaluating the same query against the unchanged graph hits without
/// recompiling, and mutating the graph invalidates the stale entry.
#[test]
fn plan_cache_hits_then_invalidates() {
    let mut g = Graph::standalone();
    let n = g.new_node(Some("n0"));
    g.add_to_collection_str("Nodes", Value::Node(n));
    g.add_edge_str(n, "a", Value::str("x")).unwrap();
    let q = parse_query(r#"WHERE Nodes(x), x -> "a" -> y COLLECT Out(y)"#).unwrap();
    let opts = EvalOptions::default();

    q.evaluate(&g, &opts).unwrap();
    let s1 = opts.plan_cache.stats();
    assert!(s1.misses >= 1, "first evaluation must compile: {s1:?}");
    assert_eq!(s1.hits, 0, "{s1:?}");

    q.evaluate(&g, &opts).unwrap();
    let s2 = opts.plan_cache.stats();
    assert_eq!(s2.misses, s1.misses, "re-evaluation must not recompile");
    assert!(s2.hits > 0, "re-evaluation must hit the plan cache: {s2:?}");

    g.add_edge_str(n, "a", Value::str("y")).unwrap();
    q.evaluate(&g, &opts).unwrap();
    let s3 = opts.plan_cache.stats();
    // A stale entry counts as an invalidation (recompile), not a miss.
    assert!(
        s3.invalidations > s2.invalidations,
        "graph mutation must invalidate the cached plan: {s3:?}"
    );
    assert_eq!(s3.misses, s2.misses, "{s3:?}");

    q.evaluate(&g, &opts).unwrap();
    let s4 = opts.plan_cache.stats();
    assert!(
        s4.hits > s2.hits,
        "recompiled plan must be reusable: {s4:?}"
    );
}

// ------------------------------------------------------------- templates ----

proptest! {
    /// Plain HTML without directives passes through untouched.
    #[test]
    fn plain_html_is_verbatim(html in "[a-zA-Z0-9 <>/=\"\\n]{0,80}") {
        // Exclude accidental directives.
        prop_assume!(!html.to_ascii_lowercase().contains("<sfmt"));
        prop_assume!(!html.to_ascii_lowercase().contains("<sif"));
        prop_assume!(!html.to_ascii_lowercase().contains("<sfor"));
        prop_assume!(!html.to_ascii_lowercase().contains("<selse"));
        let t = strudel::template::parse_template(&html).unwrap();
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        let mut ts = strudel::template::TemplateSet::new();
        ts.set_object_template(n, &html).unwrap();
        let rendered = strudel::template::Generator::new(&g, &ts).render_fragment(n).unwrap();
        prop_assert_eq!(rendered, html);
        prop_assert_eq!(t.directive_count(), 0);
    }

    /// Escaped text never contains raw markup characters.
    #[test]
    fn escape_is_safe(s in "\\PC{0,60}") {
        let escaped = strudel::template::gen::escape(&s);
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('>'));
        // `&` only as part of an entity.
        for (i, _) in escaped.match_indices('&') {
            let rest = &escaped[i..];
            prop_assert!(
                rest.starts_with("&amp;") || rest.starts_with("&lt;")
                    || rest.starts_with("&gt;") || rest.starts_with("&quot;"),
                "bare & in {escaped:?}"
            );
        }
    }
}

// ------------------------------------------------------------- tracing ----

/// All tracing proptests share one recorder configuration: the ring is
/// sized at the *first* `enable` in the process, so every test here asks
/// for the same capacity and full sampling.
fn tracing_on() {
    strudel::obs::trace::enable(strudel::obs::trace::TraceConfig {
        sample_rate: 1.0,
        slow_ms: 0,
        capacity: 256,
    });
}

/// Opens a nest of spans `depth` deep with `fanout` siblings per level.
fn span_burst(depth: usize, fanout: usize) {
    if depth == 0 {
        return;
    }
    for _ in 0..fanout {
        let _s = strudel::obs::trace::span("work", strudel::obs::trace::Layer::Eval);
        span_burst(depth - 1, fanout);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Span trees stay well-formed when a parallel worker pool records
    /// under one trace: every child's interval nests inside its parent's
    /// (same-thread RAII nesting), and after ring wrap-around spans whose
    /// parents were overwritten surface as extra roots instead of being
    /// dropped — the assembled forest always accounts for every span.
    #[test]
    fn span_trees_are_well_formed_under_parallel_workers(
        depth in 1usize..4,
        fanout in 1usize..4,
        workers in 1usize..5,
    ) {
        use strudel::obs::trace;
        tracing_on();
        let root = trace::begin_request("request").expect("tracing enabled");
        let trace_id = root.trace_id();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let ctx = root.ctx();
                scope.spawn(move || {
                    let _enter = trace::enter(&ctx);
                    span_burst(depth, fanout);
                });
            }
        });
        root.finish();

        let spans: Vec<_> = trace::snapshot_spans()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        prop_assert!(!spans.is_empty());
        let by_id: std::collections::HashMap<u64, &strudel::obs::trace::SpanRecord> =
            spans.iter().map(|s| (s.span_id, s)).collect();
        for s in &spans {
            prop_assert!(s.end_ns >= s.start_ns, "inverted interval");
            if let Some(parent) = by_id.get(&s.parent_id) {
                prop_assert!(
                    s.start_ns >= parent.start_ns && s.end_ns <= parent.end_ns,
                    "child [{}, {}] escapes parent [{}, {}]",
                    s.start_ns, s.end_ns, parent.start_ns, parent.end_ns,
                );
            }
        }
        // The assembled forest accounts for every captured span, even when
        // wrap-around turned interior spans into orphans.
        fn count(nodes: &[strudel::obs::trace::TreeNode]) -> usize {
            nodes.iter().map(|n| 1 + count(&n.children)).sum()
        }
        let forest = strudel::obs::trace::assemble_tree(&spans);
        prop_assert_eq!(count(&forest), spans.len());
        for node in &forest {
            prop_assert!(node.self_ns <= node.span.dur_ns());
        }
    }

    /// The Chrome trace-event export always round-trips as valid JSON:
    /// an array of complete (`ph: "X"`) events with monotonically
    /// non-decreasing timestamps and a duration on every event.
    #[test]
    fn chrome_export_roundtrips_with_monotone_ts(
        requests in 1usize..5,
        depth in 1usize..4,
    ) {
        use strudel::obs::trace;
        tracing_on();
        for _ in 0..requests {
            let root = trace::begin_request("request").expect("tracing enabled");
            let ctx = root.ctx();
            let _enter = trace::enter(&ctx);
            span_burst(depth, 2);
            drop(_enter);
            root.finish();
        }
        let text = trace::traces_chrome();
        let doc = strudel::obs::json::parse(&text).expect("valid JSON");
        let events = doc.as_array().expect("an array of events");
        let mut last_ts = f64::MIN;
        for e in events {
            prop_assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
            prop_assert!(e.get("dur").and_then(|d| d.as_f64()).is_some());
            prop_assert!(e.get("name").and_then(|n| n.as_str()).is_some());
            let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
            prop_assert!(ts >= last_ts, "ts went backwards: {ts} < {last_ts}");
            last_ts = ts;
        }
    }
}
