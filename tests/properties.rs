//! Property-based tests (proptest) over the core data structures and the
//! evaluation pipeline's invariants.

use proptest::prelude::*;
use strudel::graph::{ddl, Graph, Value};
use strudel::struql::{parse_query, EvalOptions, Optimizer};

// ---------------------------------------------------------------- values ----

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        (-1e9f64..1e9f64).prop_map(Value::Float),
    ]
}

proptest! {
    #[test]
    fn coerced_eq_is_reflexive_for_non_nan(v in arb_value()) {
        prop_assert!(v.coerced_eq(&v));
    }

    #[test]
    fn coerced_cmp_is_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering::*;
        match (a.coerced_cmp(&b), b.coerced_cmp(&a)) {
            (Some(Less), x) => prop_assert_eq!(x, Some(Greater)),
            (Some(Greater), x) => prop_assert_eq!(x, Some(Less)),
            (Some(Equal), x) => prop_assert_eq!(x, Some(Equal)),
            (None, x) => prop_assert_eq!(x, None),
        }
    }

    #[test]
    fn strict_eq_implies_coerced_eq(a in arb_value()) {
        let b = a.clone();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.coerced_eq(&b));
    }
}

// ----------------------------------------------------------------- interner ----

proptest! {
    #[test]
    fn interner_roundtrips(words in proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9_-]{0,10}", 1..30)) {
        let interner = strudel::graph::Interner::new();
        let syms: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            prop_assert_eq!(&*interner.resolve(*s), w.as_str());
            prop_assert_eq!(interner.intern(w), *s);
        }
    }
}

// ------------------------------------------------------------------- DDL ----

/// A random flat object graph as DDL text fragments.
fn arb_objects() -> impl Strategy<Value = Vec<(String, Vec<(String, String)>)>> {
    proptest::collection::vec(
        (
            "[a-z][a-z0-9]{0,6}",
            proptest::collection::vec(("[a-z][a-z0-9]{0,6}", "[a-zA-Z0-9 .]{0,10}"), 0..6),
        ),
        1..8,
    )
    .prop_map(|objs| {
        // Deduplicate object names (the DDL unifies same-named objects).
        let mut seen = std::collections::HashSet::new();
        objs.into_iter()
            .enumerate()
            .map(|(i, (name, attrs))| {
                let name = if seen.insert(name.clone()) {
                    name
                } else {
                    format!("{name}x{i}")
                };
                (name, attrs)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn ddl_print_parse_roundtrip(objs in arb_objects()) {
        let mut src = String::new();
        for (name, attrs) in &objs {
            src.push_str(&format!("object {name} in Things {{\n"));
            for (k, v) in attrs {
                src.push_str(&format!("  {k} \"{v}\"\n"));
            }
            src.push_str("}\n");
        }
        let g = ddl::parse(&src).unwrap();
        let printed = ddl::print(&g);
        let g2 = ddl::parse(&printed).unwrap();
        prop_assert_eq!(g.node_count(), g2.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        prop_assert_eq!(
            g.collection_str("Things").unwrap().len(),
            g2.collection_str("Things").unwrap().len()
        );
    }
}

// ------------------------------------------------------------- evaluation ----

/// A random labeled graph over a small label alphabet.
#[derive(Debug, Clone)]
struct RandGraph {
    n: usize,
    edges: Vec<(usize, usize, u8)>,
}

fn arb_graph() -> impl Strategy<Value = RandGraph> {
    (2usize..10).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0u8..3), 0..25)
            .prop_map(move |edges| RandGraph { n, edges })
    })
}

fn build(rg: &RandGraph) -> Graph {
    let mut g = Graph::standalone();
    let nodes: Vec<_> = (0..rg.n)
        .map(|i| g.new_node(Some(&format!("n{i}"))))
        .collect();
    for &n in &nodes {
        g.add_to_collection_str("Nodes", Value::Node(n));
    }
    let labels = ["a", "b", "c"];
    let mut seen = std::collections::HashSet::new();
    for &(f, t, l) in &rg.edges {
        if seen.insert((f, t, l)) {
            g.add_edge_str(nodes[f], labels[l as usize], Value::Node(nodes[t]))
                .unwrap();
        }
    }
    g.add_to_collection_str("Start", Value::Node(nodes[0]));
    g
}

/// Reference reachability by plain BFS over all edges.
fn bfs_reachable(rg: &RandGraph) -> std::collections::HashSet<usize> {
    let mut adj = vec![Vec::new(); rg.n];
    let mut dedup = std::collections::HashSet::new();
    for &(f, t, l) in &rg.edges {
        if dedup.insert((f, t, l)) {
            adj[f].push(t);
        }
    }
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![0usize];
    while let Some(x) = stack.pop() {
        if seen.insert(x) {
            stack.extend(adj[x].iter().copied());
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `p -> * -> q` computes exactly BFS reachability.
    #[test]
    fn star_reachability_matches_bfs(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query("WHERE Start(p), p -> * -> q COLLECT Reached(q)").unwrap();
        let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
        let reached = out.graph.collection_str("Reached").unwrap().len();
        prop_assert_eq!(reached, bfs_reachable(&rg).len());
    }

    /// All three optimizers produce the same output graph.
    #[test]
    fn optimizers_agree(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query(
            r#"WHERE Nodes(x), x -> "a" -> y, y -> l -> z
               CREATE P(x, z)
               LINK P(x, z) -> l -> z
               COLLECT Out(P(x, z))"#,
        )
        .unwrap();
        let mut results = Vec::new();
        for opt in [Optimizer::Naive, Optimizer::Heuristic, Optimizer::CostBased] {
            let out = q.evaluate(&g, &EvalOptions::with_optimizer(opt)).unwrap();
            results.push((
                out.graph.node_count(),
                out.graph.edge_count(),
                out.graph.collection_str("Out").map(|c| c.len()).unwrap_or(0),
            ));
        }
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[1], results[2]);
    }

    /// Indexed and unindexed evaluation agree.
    #[test]
    fn index_is_transparent(rg in arb_graph()) {
        let mut g = build(&rg);
        let q = parse_query(
            r#"WHERE y -> "b" -> z, x -> "a" -> y COLLECT Pairs(x), Ends(z)"#,
        )
        .unwrap();
        let with = q.evaluate(&g, &EvalOptions::default()).unwrap();
        g.set_indexing(false);
        let without = q.evaluate(&g, &EvalOptions::default()).unwrap();
        let count = |o: &strudel::struql::EvalOutput, c: &str| {
            o.graph.collection_str(c).map(|x| x.len()).unwrap_or(0)
        };
        prop_assert_eq!(count(&with, "Pairs"), count(&without, "Pairs"));
        prop_assert_eq!(count(&with, "Ends"), count(&without, "Ends"));
    }

    /// The TextOnly-style copy query produces a graph whose nodes are
    /// exactly the reachable originals (Skolem image is injective).
    #[test]
    fn copy_query_preserves_reachable_structure(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query(
            r#"WHERE Start(p), p -> * -> q, q -> l -> q0
               CREATE New(q), New(q0)
               LINK New(q) -> l -> New(q0)"#,
        )
        .unwrap();
        let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
        let reachable = bfs_reachable(&rg);
        // Copies exist only for reachable nodes that touch an edge.
        prop_assert!(out.table.len() <= reachable.len());
        // Edge count of the copy never exceeds the original's (set semantics).
        prop_assert!(out.graph.edge_count() <= g.edge_count());
    }

    /// Skolem identity: evaluating the same query twice into one graph with
    /// a shared table adds nothing new the second time.
    #[test]
    fn re_evaluation_is_idempotent(rg in arb_graph()) {
        let g = build(&rg);
        let q = parse_query(
            r#"WHERE Nodes(x), x -> l -> y CREATE C(x) LINK C(x) -> l -> y COLLECT All(C(x))"#,
        )
        .unwrap();
        let opts = EvalOptions::default();
        let mut out = Graph::new(std::sync::Arc::clone(g.universe()));
        let mut table = strudel::struql::SkolemTable::new();
        q.evaluate_into(&g, &mut out, &mut table, &opts).unwrap();
        let (n1, e1) = (out.node_count(), out.edge_count());
        q.evaluate_into(&g, &mut out, &mut table, &opts).unwrap();
        prop_assert_eq!((n1, e1), (out.node_count(), out.edge_count()));
    }
}

// ---------------------------------------------------- incremental views ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental maintenance equals full re-evaluation for any insertion
    /// sequence (within the supported positive single-edge fragment).
    #[test]
    fn incremental_equals_rebuild(
        rg in arb_graph(),
        inserts in proptest::collection::vec((0usize..8, 0usize..8, 0u8..3), 1..12),
    ) {
        let mut data = build(&rg);
        let q = parse_query(
            r#"{ WHERE Nodes(x), x -> "a" -> y
                 CREATE P(x)
                 LINK P(x) -> "hit" -> y
                 { WHERE y -> "b" -> z
                   CREATE Q(z) LINK P(x) -> "deep" -> Q(z) } }"#,
        )
        .unwrap();
        let mut inc = strudel::site::IncrementalSite::new(&data, &q, EvalOptions::default()).unwrap();
        let nodes: Vec<_> = data.nodes().to_vec();
        let labels = ["a", "b", "c"];
        for (f, t, l) in inserts {
            let (f, t) = (f % nodes.len(), t % nodes.len());
            inc.add_edge(&mut data, nodes[f], labels[l as usize], Value::Node(nodes[t])).unwrap();
        }
        let rebuilt = q.evaluate(&data, &EvalOptions::default()).unwrap();
        // Compare the *maintained* part: the extension of every Skolem
        // function and each Skolem node's out-edges. (Raw edge counters
        // differ benignly: a node adopted from the data graph shares its
        // edge storage, so edges it gains later are visible but were not
        // counted at adoption time.)
        prop_assert_eq!(inc.table.len(), rebuilt.table.len());
        let sig = |g: &Graph, table: &strudel::struql::SkolemTable| {
            let mut out: Vec<String> = table
                .iter()
                .map(|(name, args, oid)| {
                    let mut edges: Vec<String> = g
                        .out_edges(oid)
                        .into_iter()
                        .map(|(l, v)| {
                            let v = match v {
                                Value::Node(n) => g.node_name(n).unwrap_or_default().to_string(),
                                other => other.to_string(),
                            };
                            format!("{}->{v}", g.resolve(l))
                        })
                        .collect();
                    edges.sort();
                    format!(
                        "{name}({}) {{{}}}",
                        args.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
                        edges.join(";")
                    )
                })
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(sig(&inc.site, &inc.table), sig(&rebuilt.graph, &rebuilt.table));
    }
}

// ------------------------------------------------- click-time invalidation ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Click-time cache invalidation is sound for any edge insertion: a
    /// cache warmed on the old graph, invalidated for the delta, and then
    /// carried to the new graph serves exactly the cold answers. Entries
    /// that survive invalidation are really still valid.
    #[test]
    fn invalidate_then_expand_equals_cold_expand(
        rg in arb_graph(),
        insert in (0usize..8, 0usize..8, 0u8..3),
    ) {
        use strudel::site::{Delta, DynamicSite};
        let q = parse_query(
            r#"{ WHERE Nodes(x), x -> "a" -> y
                 CREATE P(x)
                 LINK P(x) -> "hit" -> y
                 { WHERE y -> "b" -> z
                   CREATE Q(z) LINK P(x) -> "deep" -> Q(z), Q(z) -> "from" -> y } }"#,
        )
        .unwrap();
        // Replay the same construction script twice so node ids and interned
        // symbols align; the "new" graph additionally gets the inserted edge.
        let g_old = build(&rg);
        let mut g_new = build(&rg);
        let (f, t, l) = insert;
        let (f, t) = (f % rg.n, t % rg.n);
        let label = ["a", "b", "c"][l as usize];
        let nodes: Vec<_> = g_new.nodes().to_vec();
        g_new.add_edge_str(nodes[f], label, Value::Node(nodes[t])).unwrap();
        let delta = Delta::EdgeAdded {
            from: g_old.nodes()[f],
            label: g_old.sym(label),
            to: Value::Node(g_old.nodes()[t]),
        };

        // Warm every page's clause results on the old graph, then invalidate.
        let old_site = DynamicSite::new(&g_old, &q, EvalOptions::default()).unwrap();
        for sk in ["P", "Q"] {
            for page in old_site.pages_of(sk).unwrap() {
                old_site.expand(&page).unwrap();
            }
        }
        old_site.invalidate(&delta);

        // Carry the surviving entries to a site over the new graph.
        let warm = DynamicSite::new(&g_new, &q, EvalOptions::default()).unwrap();
        warm.cache_restore(old_site.cache_snapshot());
        let cold = DynamicSite::new(&g_new, &q, EvalOptions::default()).unwrap();
        for sk in ["P", "Q"] {
            // Enumerate on the new graph: insertion is monotone, so these
            // pages are a superset of the pages warmed above.
            for page in cold.pages_of(sk).unwrap() {
                prop_assert_eq!(warm.expand(&page).unwrap(), cold.expand(&page).unwrap(), "{}", page);
            }
        }
    }
}

// ------------------------------------------------------------- templates ----

proptest! {
    /// Plain HTML without directives passes through untouched.
    #[test]
    fn plain_html_is_verbatim(html in "[a-zA-Z0-9 <>/=\"\\n]{0,80}") {
        // Exclude accidental directives.
        prop_assume!(!html.to_ascii_lowercase().contains("<sfmt"));
        prop_assume!(!html.to_ascii_lowercase().contains("<sif"));
        prop_assume!(!html.to_ascii_lowercase().contains("<sfor"));
        prop_assume!(!html.to_ascii_lowercase().contains("<selse"));
        let t = strudel::template::parse_template(&html).unwrap();
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        let mut ts = strudel::template::TemplateSet::new();
        ts.set_object_template(n, &html).unwrap();
        let rendered = strudel::template::Generator::new(&g, &ts).render_fragment(n).unwrap();
        prop_assert_eq!(rendered, html);
        prop_assert_eq!(t.directive_count(), 0);
    }

    /// Escaped text never contains raw markup characters.
    #[test]
    fn escape_is_safe(s in "\\PC{0,60}") {
        let escaped = strudel::template::gen::escape(&s);
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('>'));
        // `&` only as part of an entity.
        for (i, _) in escaped.match_indices('&') {
            let rest = &escaped[i..];
            prop_assert!(
                rest.starts_with("&amp;") || rest.starts_with("&lt;")
                    || rest.starts_with("&gt;") || rest.starts_with("&quot;"),
                "bare & in {escaped:?}"
            );
        }
    }
}
