//! Cross-crate reproduction of the paper's figures: Fig. 2 (data graph),
//! Fig. 3 (site-definition query), Fig. 4 (site graph), Fig. 5 (site
//! schema), Fig. 7 (templates → HTML pages) — the full §3.1 example run
//! end to end.

use strudel::graph::{ddl, Value};
use strudel::site::SiteSchema;
use strudel::struql::{parse_query, EvalOptions};
use strudel::template::{Generator, TemplateSet};

const FIG2: &str = r#"
collection Publications {
  abstract   text
  postscript ps
}
object pub1 in Publications {
  title      "Specifying Representations..."
  author     "Norman Ramsey"
  author     "Mary Fernandez"
  year       1997
  month      "May"
  journal    "Transactions on Programming..."
  pub-type   "article"
  abstract   "abstracts/toplas97.txt"
  postscript "papers/toplas97.ps.gz"
  volume     "19 (3)"
  category   "Architecture Specifications"
  category   "Programming Languages"
}
object pub2 in Publications {
  title      "Optimizing Regular..."
  author     "Mary Fernandez"
  author     "Dan Suciu"
  year       1998
  booktitle  "Proc. of ICDE"
  pub-type   "inproceedings"
  abstract   "abstracts/icde98.txt"
  postscript "papers/icde98.ps.gz"
  category   "Semistructured Data"
  category   "Programming Languages"
}
"#;

const FIG3: &str = r#"
INPUT BIBTEX
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
{
  WHERE Publications(x), x -> l -> v
  CREATE PaperPresentation(x), AbstractPage(x)
  LINK AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v,
       PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
       AbstractsPage() -> "Abstract" -> AbstractPage(x)
  {
    WHERE l = "year"
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "YearPage" -> YearPage(v)
  }
  {
    WHERE l = "category"
    CREATE CategoryPage(v)
    LINK CategoryPage(v) -> "Name" -> v,
         CategoryPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "CategoryPage" -> CategoryPage(v)
  }
}
OUTPUT HomePage
"#;

/// Fig. 7's templates (reconstructed concrete syntax).
fn fig7_templates() -> TemplateSet {
    let mut t = TemplateSet::new();
    t.set_collection_template(
        "RootPage",
        r#"<html><body>
<h2>Publications by Year</h2>
<SFOR y IN @YearPage ORDER=ascend KEY=@Year LIST=ul><SFMT @y LINK=@y.Year></SFOR>
<h2>Publications by Topic</h2>
<SFOR c IN @CategoryPage ORDER=ascend KEY=@Name LIST=ul><SFMT @c LINK=@c.Name></SFOR>
<p><SFMT @AbstractsPage LINK="Paper Abstracts"></p>
</body></html>"#,
    )
    .unwrap();
    t.set_collection_template(
        "AbstractsPage",
        r#"<html><body><h1>Paper Abstracts</h1>
<SFOR a IN @Abstract><SFMT @a EMBED></SFOR>
</body></html>"#,
    )
    .unwrap();
    t.set_collection_template(
        "YearPage",
        r#"<html><body><h1>Publications from <SFMT @Year></h1>
<SFOR p IN @Paper LIST=ul><SFMT @p EMBED></SFOR>
</body></html>"#,
    )
    .unwrap();
    t.set_collection_template(
        "CategoryPage",
        r#"<html><body><h1>Publications on <SFMT @Name></h1>
<SFOR p IN @Paper LIST=ul><SFMT @p EMBED></SFOR>
</body></html>"#,
    )
    .unwrap();
    t.set_collection_template(
        "PaperPresentation",
        r#"<SFMT @postscript LINK=@title>. By <SFMT @author ALL DELIM=", ">,
<SIF @booktitle><SFMT @booktitle><SELSE><SFMT @journal></SIF>, <SFMT @year>."#,
    )
    .unwrap();
    t.set_collection_template(
        "AbstractPage",
        r#"<h2><SFMT @title></h2><p>By <SFMT @author ALL DELIM=", ">, <SFMT @year>.</p>
<SIF @abstract><SFMT @abstract></SIF>"#,
    )
    .unwrap();
    t
}

#[test]
fn fig2_data_graph_shape() {
    let g = ddl::parse(FIG2).unwrap();
    assert_eq!(g.node_count(), 2);
    assert_eq!(g.collection_str("Publications").unwrap().len(), 2);
    // pub1: 12 attribute edges; pub2: 10.
    assert_eq!(g.out_edges(g.nodes()[0]).len(), 12);
    assert_eq!(g.out_edges(g.nodes()[1]).len(), 10);
}

#[test]
fn fig3_fig4_site_graph() {
    let data = ddl::parse(FIG2).unwrap();
    let q = parse_query(FIG3).unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    // Page census: 1 root, 1 abstracts, 2 presentations, 2 abstract pages,
    // 2 year pages, 3 category pages = 11 Skolem nodes.
    assert_eq!(out.table.len(), 11);
    // Fig. 4's spine: RootPage → YearPage(1997) → Paper → title.
    let root = out.table.lookup("RootPage", &[]).unwrap();
    let y1997 = out.table.lookup("YearPage", &[Value::Int(1997)]).unwrap();
    let reader = out.graph.reader();
    let year_links: Vec<&Value> = reader
        .out(root)
        .iter()
        .filter(|(l, _)| &*out.graph.resolve(*l) == "YearPage")
        .map(|(_, v)| v)
        .collect();
    assert!(year_links.contains(&&Value::Node(y1997)));
    let papers: Vec<&Value> = reader
        .out(y1997)
        .iter()
        .filter(|(l, _)| &*out.graph.resolve(*l) == "Paper")
        .map(|(_, v)| v)
        .collect();
    assert_eq!(papers.len(), 1);
}

#[test]
fn fig5_site_schema() {
    let q = parse_query(FIG3).unwrap();
    let schema = SiteSchema::from_query(&q);
    // Fig. 5: RootPage, AbstractsPage, YearPage, CategoryPage, AbstractPage,
    // PaperPresentation (+ N_S).
    assert_eq!(schema.nodes().len(), 7);
    let year = schema.node_index("YearPage").unwrap();
    let pp = schema.node_index("PaperPresentation").unwrap();
    let edge = schema
        .edges()
        .iter()
        .find(|e| e.from == year && e.to == pp)
        .unwrap();
    // The paper labels this edge (Q1 ∧ Q2, "Paper", [v], [x]).
    assert_eq!(edge.label_text(), r#"(Q2 ∧ Q3, "Paper", [v], [x])"#);
}

#[test]
fn fig7_templates_render_browsable_site() {
    let data = ddl::parse(FIG2).unwrap();
    let q = parse_query(FIG3).unwrap();
    let out = q.evaluate(&data, &EvalOptions::default()).unwrap();
    let mut site_graph = out.graph;
    // Register skolem-function collections for template selection.
    let entries: Vec<(String, strudel::graph::Oid)> = out
        .table
        .iter()
        .map(|(n, _, o)| (n.to_string(), o))
        .collect();
    for (name, oid) in entries {
        site_graph.add_to_collection_str(&name, Value::Node(oid));
    }
    let templates = fig7_templates();
    let abstracts: std::collections::HashMap<String, String> = [
        (
            "abstracts/toplas97.txt".to_string(),
            "We describe machine instructions.".to_string(),
        ),
        (
            "abstracts/icde98.txt".to_string(),
            "We optimize path expressions.".to_string(),
        ),
    ]
    .into();
    let generator = Generator::new(&site_graph, &templates)
        .with_file_resolver(Box::new(move |p| abstracts.get(p).cloned()));
    let root = site_graph.collection_str("RootPage").unwrap().items()[0]
        .as_node()
        .unwrap();
    let site = generator.generate(&[root]).unwrap();

    // Pages realized: root, abstracts, 2 year, 3 category = 7; the
    // presentations and abstract pages are embedded.
    assert_eq!(site.pages.len(), 7, "{:?}", site.pages.keys());

    let root_html = &site.pages[&site.page_of[&root]];
    assert!(root_html.contains("Publications by Year"));
    // Years sorted ascending: 1997 before 1998.
    let p97 = root_html.find("1997").unwrap();
    let p98 = root_html.find("1998").unwrap();
    assert!(p97 < p98, "{root_html}");

    // The year page embeds the paper presentation with a PostScript link
    // tagged by the title.
    let y97 = site
        .pages
        .iter()
        .find(|(k, _)| k.contains("yearpage_1997"))
        .unwrap()
        .1;
    assert!(
        y97.contains(r#"<a href="papers/toplas97.ps.gz">Specifying Representations...</a>"#),
        "{y97}"
    );
    // Bindings relations are canonically ordered (plan-independent output),
    // so the author list renders in value order, not document order.
    assert!(y97.contains("Mary Fernandez, Norman Ramsey"), "{y97}");
    // pub1 is an article: the SIF falls through to the journal branch.
    assert!(y97.contains("Transactions on Programming..."));

    // The abstracts page embeds abstract file contents via the resolver.
    let abstracts_page = site
        .pages
        .iter()
        .find(|(k, _)| k.starts_with("abstractspage"))
        .unwrap()
        .1;
    assert!(
        abstracts_page.contains("We describe machine instructions."),
        "{abstracts_page}"
    );
    assert!(abstracts_page.contains("We optimize path expressions."));

    // Every href that is a local page resolves to an emitted page.
    for (name, html) in &site.pages {
        for href in html.split("href=\"").skip(1) {
            let target = &href[..href.find('"').unwrap()];
            if target.ends_with(".html") {
                assert!(
                    site.pages.contains_key(target),
                    "{name} links to missing {target}"
                );
            }
        }
    }
}
