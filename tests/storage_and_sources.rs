//! Integration tests for the storage layer and the less-used source kinds
//! (HTML wrapper through the pipeline, GAV mappings through the facade,
//! saving/loading data graphs across pipeline stages).

use std::sync::Arc;
use strudel::graph::{store, Graph, Value};
use strudel::struql::{parse_query, EvalOptions};
use strudel::Strudel;

#[test]
fn saved_data_graph_supports_full_pipeline_after_load() {
    // Build a data graph from DDL, save it, load it, run the homepage query
    // against the loaded copy.
    let data = strudel::graph::ddl::parse(
        r#"
object p1 in Publications { title "UnQL" year 1996 }
object p2 in Publications { title "StruQL" year 1997 }
"#,
    )
    .unwrap();
    let mut buf = Vec::new();
    store::save(&data, &mut buf).unwrap();
    let loaded = store::load(&mut buf.as_slice()).unwrap();

    let q = parse_query(
        r#"WHERE Publications(x), x -> "title" -> t
           CREATE Page(x) LINK Page(x) -> "T" -> t COLLECT Pages(Page(x))"#,
    )
    .unwrap();
    let a = q.evaluate(&data, &EvalOptions::default()).unwrap();
    let b = q.evaluate(&loaded, &EvalOptions::default()).unwrap();
    assert_eq!(
        a.graph.collection_str("Pages").unwrap().len(),
        b.graph.collection_str("Pages").unwrap().len()
    );
    assert_eq!(a.graph.edge_count(), b.graph.edge_count());
}

#[test]
fn site_graph_can_be_saved_and_reloaded() {
    let mut s = strudel::synth::news::system(25, 31, false).unwrap();
    let build = s.build_site().unwrap();
    let mut buf = Vec::new();
    store::save(&build.graph, &mut buf).unwrap();
    let loaded = store::load(&mut buf.as_slice()).unwrap();
    assert_eq!(loaded.node_count(), build.graph.node_count());
    assert_eq!(loaded.edge_count(), build.graph.edge_count());
    // Collections (including the per-Skolem-function ones) survive.
    assert_eq!(
        loaded.collection_str("ArticlePage").unwrap().len(),
        build.graph.collection_str("ArticlePage").unwrap().len()
    );
}

#[test]
fn storage_failures_surface_as_typed_storage_errors() {
    use strudel::graph::GraphError;

    // I/O failure while writing: a sink that always refuses.
    struct Refuse;
    impl std::io::Write for Refuse {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let data = strudel::graph::ddl::parse(r#"object p in Ps { k "v" }"#).unwrap();
    let err = store::save(&data, &mut Refuse).unwrap_err();
    assert!(matches!(err, GraphError::Storage { .. }), "{err}");
    assert!(err.to_string().starts_with("storage error:"), "{err}");

    // A truncated snapshot is typed corruption (the bytes failed
    // validation), while a missing file is a plain storage (I/O) error —
    // neither is a misreported DDL parse failure.
    let mut buf = Vec::new();
    store::save(&data, &mut buf).unwrap();
    let mut truncated = buf.clone();
    truncated.truncate(truncated.len() / 2);
    assert!(matches!(
        store::load_slice(&truncated),
        Err(GraphError::StorageCorrupt { .. })
    ));
    assert!(matches!(
        store::load_from_file(std::path::Path::new("/nonexistent/strudel.snapshot")),
        Err(GraphError::Storage { .. })
    ));

    // A valid snapshot followed by junk must not load: unread trailing
    // bytes mean the file is not what the writer produced.
    let mut tainted = buf.clone();
    tainted.extend_from_slice(b"JUNKJUNK");
    let err = store::load_slice(&tainted).unwrap_err();
    assert!(matches!(err, GraphError::StorageCorrupt { .. }), "{err}");
    assert!(err.to_string().contains("trailing"), "{err}");
}

#[test]
fn interrupted_save_to_file_preserves_the_old_snapshot() {
    // Crash-safety regression for save_to_file: a save that fails partway
    // (mid-serialization, after bytes have already been produced) must
    // leave the previous file loadable and byte-identical.
    let dir = std::env::temp_dir().join(format!("strudel_it_atomic_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.bin");

    let data = strudel::graph::ddl::parse(r#"object p in Ps { k "v" }"#).unwrap();
    store::save_to_file(&data, &path).unwrap();
    let before = std::fs::read(&path).unwrap();

    // A graph that serializes partially and then errors: an edge to a node
    // outside the graph is discovered only mid-write.
    let bad = {
        let mut g = Graph::standalone();
        let n = g.new_node(Some("n"));
        let ghost = g.universe().create_node(None);
        g.add_edge_str(n, "to", Value::Node(ghost)).unwrap();
        g
    };
    assert!(store::save_to_file(&bad, &path).is_err());
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "failed save must leave the destination byte-identical"
    );
    let reloaded = store::load_from_file(&path).unwrap();
    assert_eq!(reloaded.edge_count(), data.edge_count());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn paged_store_snapshot_feeds_the_full_pipeline() {
    use strudel::graph::store::{PagedStore, WireValue};

    // Import a data graph into the paged store, mutate it transactionally,
    // and run the site query against a snapshot — the paged store is a
    // first-class source for the pipeline, not just a byte archive.
    let dir = std::env::temp_dir().join(format!("strudel_it_paged_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.pdb");

    let data = strudel::graph::ddl::parse(
        r#"
object p1 in Publications { title "UnQL" year 1996 }
object p2 in Publications { title "StruQL" year 1997 }
"#,
    )
    .unwrap();
    let mut paged = PagedStore::import(&path, &data).unwrap();
    let mut txn = paged.begin();
    let p3 = txn.add_node(Some("p3"));
    txn.add_edge(p3, "title", WireValue::Str("Lorel".into()));
    txn.add_edge(p3, "year", WireValue::Int(1998));
    txn.add_to_collection("Publications", WireValue::Node(p3));
    txn.commit().unwrap();

    // Reopen (recovery path) and query the snapshot.
    drop(paged);
    let mut paged = PagedStore::open(&path).unwrap();
    let snap = paged.snapshot().unwrap();
    let q = parse_query(
        r#"WHERE Publications(x), x -> "title" -> t
           CREATE Page(x) LINK Page(x) -> "T" -> t COLLECT Pages(Page(x))"#,
    )
    .unwrap();
    let out = q.evaluate(snap.graph(), &EvalOptions::default()).unwrap();
    assert_eq!(out.graph.collection_str("Pages").unwrap().len(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn round_trip_after_deletions_preserves_the_mutated_graph() {
    // The on-disk format must reflect removals: delete an edge and a
    // collection member, save, load, and compare against the live graph.
    let mut data = strudel::graph::ddl::parse(
        r#"
object p1 in Publications { title "UnQL" year 1996 }
object p2 in Publications { title "StruQL" year 1997 }
"#,
    )
    .unwrap();
    let p1 = data
        .nodes()
        .iter()
        .copied()
        .find(|n| data.node_name(*n).as_deref() == Some("p1"))
        .unwrap();
    assert!(data.remove_edge_str(p1, "year", &Value::Int(1996)).unwrap());
    assert!(data.remove_from_collection_str("Publications", &Value::Node(p1)));

    let mut buf = Vec::new();
    store::save(&data, &mut buf).unwrap();
    let loaded = store::load_slice(&buf).unwrap();
    assert_eq!(loaded.node_count(), data.node_count());
    assert_eq!(loaded.edge_count(), data.edge_count());
    assert_eq!(loaded.collection_str("Publications").unwrap().len(), 1);
    let p1_loaded = loaded
        .nodes()
        .iter()
        .copied()
        .find(|n| loaded.node_name(*n).as_deref() == Some("p1"))
        .unwrap();
    assert!(!loaded.has_edge(p1_loaded, loaded.sym("year"), &Value::Int(1996)));
    assert!(loaded.has_edge(p1_loaded, loaded.sym("title"), &Value::str("UnQL")));
}

#[test]
fn html_source_through_the_pipeline() {
    let mut s = Strudel::new();
    s.add_html_source(
        "crawl",
        vec![
            (
                "index.html".to_string(),
                r#"<title>Front</title><h1>Welcome</h1>
                   <a href="story.html">A story</a>
                   <a href="http://other.example/">elsewhere</a>"#
                    .to_string(),
            ),
            (
                "story.html".to_string(),
                r#"<title>Story</title><p>Body text here.</p><img src="pic.jpg">"#.to_string(),
            ),
        ],
    );
    // Restructure wrapped pages into a mirror site.
    s.add_site_query(
        r#"CREATE Root()
           {
             WHERE Pages(p), p -> "title" -> t
             CREATE Mirror(p)
             LINK Mirror(p) -> "Title" -> t, Root() -> "Page" -> Mirror(p)
             {
               WHERE p -> "link" -> q, Pages(q)
               CREATE Mirror(q)
               LINK Mirror(p) -> "LinksTo" -> Mirror(q)
             }
           }"#,
    )
    .unwrap();
    let build = s.build_site().unwrap();
    assert_eq!(build.pages_of("Mirror").len(), 2);
    // The internal link became a Mirror→Mirror edge.
    let idx = build.table.lookup(
        "Mirror",
        &[Value::Node(
            s.data_graph()
                .unwrap()
                .collection_str("Pages")
                .unwrap()
                .items()[0]
                .as_node()
                .unwrap(),
        )],
    );
    let idx = idx.expect("mirror of index.html");
    let links_to = build.graph.universe().interner().get("LinksTo").unwrap();
    assert_eq!(build.graph.reader().attr_values(idx, links_to).count(), 1);
}

#[test]
fn gav_mapping_through_the_facade() {
    let mut s = Strudel::new();
    s.add_ddl_source(
        "raw",
        r#"
object r1 in Records { kind "person" name "Mary" }
object r2 in Records { kind "person" name "Dan" }
object r3 in Records { kind "machine" name "vax1" }
"#,
    );
    // Mediated schema: People only.
    s.add_mapping(
        "raw",
        r#"WHERE Records(r), r -> "kind" -> "person", r -> "name" -> n
           CREATE Person(n)
           LINK Person(n) -> "name" -> n
           COLLECT People(Person(n))"#,
    )
    .unwrap();
    s.add_site_query(
        r#"CREATE Root()
           { WHERE People(p), p -> "name" -> n
             CREATE Page(p) LINK Page(p) -> "Name" -> n, Root() -> "Person" -> Page(p) }"#,
    )
    .unwrap();
    let build = s.build_site().unwrap();
    assert_eq!(
        build.pages_of("Page").len(),
        2,
        "machines filtered out by the GAV mapping"
    );
}

#[test]
fn aggregates_flow_through_templates() {
    // COUNT in the site query surfaces as a page attribute rendered by SFMT.
    let mut s = Strudel::new();
    s.add_ddl_source(
        "pubs",
        r#"
object p1 in Publications { year 1997 }
object p2 in Publications { year 1997 }
object p3 in Publications { year 1998 }
"#,
    );
    s.add_site_query(
        r#"{ WHERE Publications(x), x -> "year" -> y
             CREATE YearPage(y)
             LINK YearPage(y) -> "Year" -> y,
                  YearPage(y) -> "papers" -> COUNT(x)
             COLLECT Roots(YearPage(y)) }"#,
    )
    .unwrap();
    s.templates_mut()
        .set_collection_template("YearPage", "<SFMT @Year>: <SFMT @papers> papers")
        .unwrap();
    let site = s.generate_site(&["YearPage"]).unwrap();
    let y97 = site
        .pages
        .iter()
        .find(|(k, _)| k.contains("1997"))
        .unwrap()
        .1;
    assert_eq!(y97, "1997: 2 papers");
}

#[test]
fn universe_shared_between_data_and_saved_site() {
    // save() densifies oids, so a site graph whose nodes interleave with
    // data-graph nodes in the universe still roundtrips.
    let uni = strudel::graph::graph::Universe::new();
    let mut data = Graph::new(Arc::clone(&uni));
    let d1 = data.new_node(Some("d1"));
    data.add_edge_str(d1, "k", 1i64).unwrap();
    let mut site = Graph::new(Arc::clone(&uni));
    let s1 = site.new_node(Some("S()"));
    let _d2 = data.new_node(Some("d2")); // interleaved allocation
    let s2 = site.new_node(Some("T()"));
    site.add_edge_str(s1, "next", Value::Node(s2)).unwrap();
    let mut buf = Vec::new();
    store::save(&site, &mut buf).unwrap();
    let loaded = store::load(&mut buf.as_slice()).unwrap();
    assert_eq!(loaded.node_count(), 2);
    assert_eq!(loaded.edge_count(), 1);
    let next = loaded.universe().interner().get("next").unwrap();
    let from = loaded.nodes()[0];
    assert!(loaded.reader().attr(from, next).is_some());
}

#[test]
fn file_resolver_survives_repeated_generations() {
    let mut s = Strudel::new();
    s.add_ddl_source(
        "pubs",
        r#"collection Publications { abstract text }
object p1 in Publications { title "A" abstract "abs/a.txt" }"#,
    );
    s.add_site_query(
        r#"{ WHERE Publications(x), x -> l -> v
             CREATE Page(x) LINK Page(x) -> l -> v COLLECT Roots(Page(x)) }"#,
    )
    .unwrap();
    s.templates_mut()
        .set_collection_template("Page", "<SFMT @abstract>")
        .unwrap();
    s.set_file_resolver(Box::new(|p| {
        (p == "abs/a.txt").then(|| "THE ABSTRACT".to_string())
    }));
    for round in 0..3 {
        let site = s.generate_site(&["Page"]).unwrap();
        let page = site.pages.values().next().unwrap();
        assert!(
            page.contains("THE ABSTRACT"),
            "round {round}: resolver lost: {page}"
        );
    }
}
