//! Offline stand-in for the `polling` crate: the subset of its API this
//! workspace uses, namely a level-triggered readiness poller over
//! registered sockets plus a cross-thread wakeup.
//!
//! Two backends:
//!
//! * **epoll** (`x86_64` Linux): the real thing, via raw syscalls — the
//!   build environment has no crates.io access, so there is no `libc` to
//!   lean on; `epoll_create1`/`epoll_ctl`/`epoll_wait`/`eventfd2` are
//!   invoked directly with inline assembly. [`Poller::wait`] blocks in the
//!   kernel until a registered socket is ready, a deadline passes, or
//!   [`Poller::notify`] is called.
//! * **pseudo-ready fallback** (everything else): registered keys are
//!   reported ready on every short-bounded wait. Callers already have to
//!   treat readiness as a *hint* (level-triggered pollers are allowed
//!   spurious wakeups, and non-blocking I/O answers `WouldBlock` when the
//!   hint was wrong), so the fallback is slower but observably equivalent.
//!
//! Like the real crate, readiness is a permission to *try*, never a
//! guarantee; sources must be in non-blocking mode.

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Interest in, or readiness of, one registered source, identified by the
/// caller-chosen `key` passed at registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// Readable (or closed/errored, which reads report).
    pub readable: bool,
    /// Writable (or errored, which writes report).
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No I/O interest (hangup/error conditions may still surface).
    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// The key the poller reserves for its internal notify channel; user
/// registrations must stay below it.
pub const NOTIFY_KEY: usize = usize::MAX;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw epoll on x86_64 Linux, without libc.

    use super::{Event, NOTIFY_KEY};
    use std::arch::asm;
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    const SYS_READ: u64 = 0;
    const SYS_WRITE: u64 = 1;
    const SYS_CLOSE: u64 = 3;
    const SYS_EPOLL_WAIT: u64 = 232;
    const SYS_EPOLL_CTL: u64 = 233;
    const SYS_EVENTFD2: u64 = 290;
    const SYS_EPOLL_CREATE1: u64 = 291;

    const EPOLL_CLOEXEC: u64 = 0o2000000;
    const EFD_CLOEXEC: u64 = 0o2000000;
    const EFD_NONBLOCK: u64 = 0o4000;

    const EPOLL_CTL_ADD: u64 = 1;
    const EPOLL_CTL_DEL: u64 = 2;
    const EPOLL_CTL_MOD: u64 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EINTR: i64 = 4;

    /// One x86-64 Linux syscall. Caller guarantees the arguments are valid
    /// for the syscall number (pointers live, fds owned).
    unsafe fn syscall4(n: u64, a1: u64, a2: u64, a3: u64, a4: u64) -> i64 {
        let ret: i64;
        asm!(
            "syscall",
            inlateout("rax") n as i64 => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// `struct epoll_event` — packed on x86-64 (and only there).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    pub struct Poller {
        epfd: RawFd,
        eventfd: RawFd,
    }

    // Both fds are plain kernel handles; every operation on them is
    // thread-safe at the syscall level.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = EPOLLRDHUP; // always learn about peer half-close
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd =
                check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })? as RawFd;
            let eventfd =
                match check(unsafe { syscall4(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0) })
                {
                    Ok(fd) => fd as RawFd,
                    Err(e) => {
                        unsafe { syscall4(SYS_CLOSE, epfd as u64, 0, 0, 0) };
                        return Err(e);
                    }
                };
            let poller = Poller { epfd, eventfd };
            let ev = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY_KEY as u64,
            };
            poller.ctl(EPOLL_CTL_ADD, poller.eventfd, Some(ev))?;
            Ok(poller)
        }

        fn ctl(&self, op: u64, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
            let ptr = ev.as_ref().map_or(std::ptr::null(), std::ptr::from_ref) as u64;
            check(unsafe { syscall4(SYS_EPOLL_CTL, self.epfd as u64, op, fd as u64, ptr) })?;
            Ok(())
        }

        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            let ev = EpollEvent {
                events: interest_bits(interest),
                data: interest.key as u64,
            };
            self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(ev))
        }

        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            let ev = EpollEvent {
                events: interest_bits(interest),
                data: interest.key as u64,
            };
            self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(ev))
        }

        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAP];
            let timeout_ms: i64 = match timeout {
                None => -1,
                // Round up so a 100µs deadline does not busy-loop at 0ms.
                Some(t) => {
                    i64::try_from(t.as_millis().min(i32::MAX as u128)).unwrap_or(i64::MAX)
                        + i64::from(t.subsec_micros() % 1000 != 0)
                }
            };
            let n = loop {
                let ret = unsafe {
                    syscall4(
                        SYS_EPOLL_WAIT,
                        self.epfd as u64,
                        buf.as_mut_ptr() as u64,
                        CAP as u64,
                        timeout_ms as u64,
                    )
                };
                if ret == -EINTR {
                    continue;
                }
                break check(ret)? as usize;
            };
            let mut reported = 0;
            for raw in &buf[..n] {
                let (bits, key) = (raw.events, raw.data as usize);
                if key == NOTIFY_KEY {
                    self.drain_notify();
                    continue;
                }
                events.push(Event {
                    key,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
                reported += 1;
            }
            Ok(reported)
        }

        pub fn notify(&self) -> io::Result<()> {
            let one: u64 = 1;
            // A full eventfd counter (EAGAIN) already means "wakeup pending".
            let ret = unsafe {
                syscall4(
                    SYS_WRITE,
                    self.eventfd as u64,
                    std::ptr::from_ref(&one) as u64,
                    8,
                    0,
                )
            };
            if ret < 0 && ret != -11 {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            Ok(())
        }

        fn drain_notify(&self) {
            let mut buf = [0u8; 8];
            unsafe { syscall4(SYS_READ, self.eventfd as u64, buf.as_mut_ptr() as u64, 8, 0) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                syscall4(SYS_CLOSE, self.eventfd as u64, 0, 0, 0);
                syscall4(SYS_CLOSE, self.epfd as u64, 0, 0, 0);
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    //! Pseudo-ready fallback: every registered key is reported ready after
    //! a short bounded sleep (or immediately on [`Poller::notify`]).
    //! Spurious readiness is legal for a level-triggered poller; callers'
    //! non-blocking I/O sorts fact from hint.

    use super::Event;
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// How long one `wait` may sleep before re-reporting readiness; bounds
    /// the latency of I/O the fallback cannot actually observe.
    const TICK: Duration = Duration::from_millis(2);

    #[derive(Default)]
    struct State {
        interest: BTreeMap<i32, Event>,
        notified: bool,
    }

    pub struct Poller {
        state: Mutex<State>,
        cond: Condvar,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Poller {
                state: Mutex::new(State::default()),
                cond: Condvar::new(),
            })
        }

        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.state
                .lock()
                .unwrap()
                .interest
                .insert(source.as_raw_fd(), interest);
            Ok(())
        }

        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.add(source, interest)
        }

        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.state
                .lock()
                .unwrap()
                .interest
                .remove(&source.as_raw_fd());
            Ok(())
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut state = self.state.lock().unwrap();
            if !state.notified {
                let sleep = timeout.unwrap_or(TICK).min(TICK);
                let (guard, _) = self.cond.wait_timeout(state, sleep).unwrap();
                state = guard;
            }
            state.notified = false;
            let mut reported = 0;
            for ev in state.interest.values() {
                if ev.readable || ev.writable {
                    events.push(*ev);
                    reported += 1;
                }
            }
            Ok(reported)
        }

        pub fn notify(&self) -> io::Result<()> {
            self.state.lock().unwrap().notified = true;
            self.cond.notify_all();
            Ok(())
        }
    }
}

/// A readiness poller for non-blocking sockets.
///
/// Register sources with [`Poller::add`] under distinct `key`s, adjust
/// interest with [`Poller::modify`], and block in [`Poller::wait`] until
/// something is ready (or a timeout/notify). Keys `usize::MAX` is reserved
/// for the internal wakeup channel.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// A new poller with no registrations.
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers `source` under `interest.key` with the given interest.
    /// The source must already be in non-blocking mode.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert_ne!(interest.key, NOTIFY_KEY, "key reserved for notify");
        self.inner.add(source, interest)
    }

    /// Replaces the interest set of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert_ne!(interest.key, NOTIFY_KEY, "key reserved for notify");
        self.inner.modify(source, interest)
    }

    /// Removes a source from the poller.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.inner.delete(source)
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`None` = forever), or another thread calls
    /// [`Poller::notify`]. Ready events are appended to `events`; the
    /// return value is how many were appended (0 on timeout/notify).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }

    /// Wakes up a concurrent (or the next) [`Poller::wait`] from any
    /// thread, without registering any source.
    pub fn notify(&self) -> io::Result<()> {
        self.inner.notify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_arrives_with_the_registered_key() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(7)).unwrap();

        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        // The write may take a moment to become visible to the poller.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.key == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "no readable event: {events:?}");
        }
        let mut buf = [0u8; 8];
        let mut b = b;
        assert_eq!(b.read(&mut buf).unwrap(), 1);
    }

    #[test]
    fn timeout_returns_without_events() {
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(1)).unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        // Epoll returns empty at the deadline; the fallback may report the
        // (unreadable) key — either way we must get control back promptly.
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "notify should cut the 30s timeout short"
        );
        handle.join().unwrap();
    }

    #[test]
    fn modify_switches_interest_and_delete_unregisters() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::none(3)).unwrap();
        poller.modify(&b, Event::writable(3)).unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.key == 3 && e.writable) {
                break;
            }
            assert!(Instant::now() < deadline, "socket should be writable");
        }
        poller.delete(&b).unwrap();
        a.write_all(b"y").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.key != 3),
            "deleted source still reported: {events:?}"
        );
    }
}
