//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, `black_box` — over a simple wall-clock harness: per
//! benchmark it calibrates an iteration batch to a target duration, takes
//! `sample_size` samples, and prints min/median/mean. Numbers are
//! comparable within a run on a quiet machine, which is what the repo's
//! EXPERIMENTS.md tables need; statistical outlier analysis is out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time a calibrated sample batch should take.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration. Stand-in: accepts and ignores
    /// the harness arguments cargo-bench passes (`--bench`, filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, f);
        self
    }

    /// Criterion's end-of-run summary hook. Stand-in: no-op.
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measurement-time hint; the stand-in keeps its fixed batch target.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id that is only a parameter (criterion parity).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (criterion's `iter`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times runs over fresh inputs built by `setup` (setup excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing for `iter_batched` (accepted, not used by the stand-in).
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: run single iterations until we know roughly how long one
    // takes, then size batches to the target sample duration.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<60} time: [min {} median {} mean {}]  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs > 0);
    }
}
