//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of `parking_lot`'s API that the workspace uses —
//! `Mutex` and `RwLock` with non-poisoning, `Result`-free guards — backed by
//! `std::sync`. Poisoned std locks are transparently recovered (panicking
//! while holding a lock does not wedge subsequent accesses), which matches
//! `parking_lot`'s no-poisoning semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
