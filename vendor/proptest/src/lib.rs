//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest's API that the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_filter`, `boxed`;
//! * strategies for integer/float ranges, tuples, [`Just`], `any::<T>()`,
//!   regex-subset string patterns (`"[a-z]{0,5}"`, `"\\PC{0,60}"`),
//!   [`collection::vec`] and [`option::of`];
//! * the [`proptest!`] runner macro with `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assume!`, and `#![proptest_config(...)]`.
//!
//! Cases are generated from a deterministic per-test seed, so failures are
//! reproducible; on failure the generated inputs are printed. Shrinking is
//! intentionally not implemented — failing inputs are reported as-is.

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic generator (splitmix64) used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform value in `0.0..1.0`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a hash of a string, for stable per-test seeds.
    pub fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }
}

use std::rc::Rc;
use test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type (printable so failing inputs can be reported).
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f`, retrying a bounded number of
    /// times. `reason` is reported if the filter starves.
    fn prop_filter<R: std::fmt::Display, F: Fn(&Self::Value) -> bool>(
        self,
        reason: R,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason: reason.to_string(),
        }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn StrategyObj<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_obj(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter starved after 1000 rejections: {}", self.reason)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ------------------------------------------------------------ primitives ----

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge values in: extremes and small numbers find more
                // bugs than uniform bits alone.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => 0.0,
            1 => -1.5,
            2 => f64::MAX,
            _ => (rng.next_u64() as i64 as f64) / 1e6,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        strings::printable_char(rng)
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — every value of `T` (with edge values mixed in).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy on empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
}

// --------------------------------------------------------------- strings ----

mod strings {
    use super::test_runner::TestRng;

    const UNICODE_SAMPLES: &[char] = &['é', 'Ø', 'λ', '中', '…', '🦀'];

    /// A printable character: mostly ASCII, occasionally multibyte (to
    /// exercise UTF-8 handling in the parsers under test).
    pub fn printable_char(rng: &mut TestRng) -> char {
        if rng.below(10) == 0 {
            UNICODE_SAMPLES[rng.below(UNICODE_SAMPLES.len() as u64) as usize]
        } else {
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }

    /// One parsed atom of the supported regex subset.
    enum Atom {
        Class(Vec<char>),
        Printable,
        Lit(char),
    }

    /// Parses the regex subset proptest string strategies use here:
    /// character classes with ranges, `\PC` (printable), escapes, literal
    /// characters; each atom optionally followed by `{m,n}`, `{n}`, `*`,
    /// `+`, or `?`.
    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        // `a-z` range (a trailing `-` is a literal).
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            for u in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(u) {
                                    set.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    i += 1; // closing ]
                    Atom::Class(set)
                }
                '\\' => {
                    i += 1;
                    if chars.get(i) == Some(&'P') && chars.get(i + 1) == Some(&'C') {
                        i += 2;
                        Atom::Printable
                    } else {
                        let c = unescape(*chars.get(i).unwrap_or(&'\\'));
                        i += 1;
                        Atom::Lit(c)
                    }
                }
                '.' => {
                    i += 1;
                    Atom::Printable
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = (i..chars.len())
                        .find(|&j| chars[j] == '}')
                        .expect("unclosed {m,n}");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad {m,n} lower bound"),
                            n.trim().parse().expect("bad {m,n} upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad {n} repeat count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            out.push((atom, min, max));
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse(pattern) {
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Class(set) => {
                        if !set.is_empty() {
                            out.push(set[rng.below(set.len() as u64) as usize]);
                        }
                    }
                    Atom::Printable => out.push(printable_char(rng)),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        strings::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        strings::generate(self, rng)
    }
}

// ------------------------------------------------------------ collections ----

/// `proptest::collection` — strategies for containers.
pub mod collection {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// An inclusive-exclusive size window for generated containers.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length lies in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` or `Some(value from inner)`, evenly split.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------- macros ----

/// Uniform choice among strategy expressions with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __seed = $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0u64..(__config.cases as u64) {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    // Render inputs up front: the body may move them.
                    let __inputs = ::std::format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = __outcome {
                        eprintln!(
                            concat!("proptest ", stringify!($name), " failed at case {} with inputs:\n{}"),
                            __case, __inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// The conventional glob import.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9]{0,4}", &mut rng);
            assert!((1..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let p = Strategy::generate(&"\\PC{0,6}", &mut rng);
            assert!(p.chars().count() <= 6);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");

            let lit = Strategy::generate(&"ab{2,3}", &mut rng);
            assert!(lit == "abb" || lit == "abbb", "{lit:?}");
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::test_runner::TestRng::new(9);
        let strat = prop_oneof![
            (0i64..10).prop_map(|i| i * 2),
            Just(99i64),
            (10i64..20).prop_filter("none", |v| v % 2 == 1),
        ]
        .boxed();
        for _ in 0..100 {
            let v = strat.clone().generate(&mut rng);
            assert!(
                v == 99 || (0..20).contains(&v) && (v % 2 == 0 || v >= 10),
                "{v}"
            );
        }
        let vecs = crate::collection::vec((0u8..3, "x"), 1..4);
        for _ in 0..50 {
            let v = Strategy::generate(&vecs, &mut rng);
            assert!((1..=3).contains(&v.len()));
        }
        let opt = crate::option::of(0usize..4);
        let mut nones = 0;
        for _ in 0..100 {
            if Strategy::generate(&opt, &mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 10 && nones < 90);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_runner_macro_runs(a in 0usize..10, b in any::<bool>()) {
            prop_assume!(a != 9);
            prop_assert!(a < 9);
            prop_assert_eq!(b, b);
        }
    }
}
