//! Offline stand-in for the `rand` crate.
//!
//! Provides deterministic, seedable generators (`StdRng`, `SmallRng`) and
//! the `Rng` trait subset the workspace uses: `gen_range` over integer and
//! float ranges, `gen_bool`, and `gen` for a few primitive types. The
//! generator is xoshiro256** seeded via splitmix64 — high-quality enough for
//! synthetic workload generation, with a stable output stream so seeded
//! workloads are reproducible across runs.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (stable across runs).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy. Offline stand-in: derives the
    /// seed from the current time and a process-local counter.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(t ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — the standard small, fast, statistically strong generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Ranges a value of type `T` can be uniformly drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn draw(rng: &mut dyn RngCore) -> u8 {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}
impl Standard for i32 {
    fn draw(rng: &mut dyn RngCore) -> i32 {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn draw(rng: &mut dyn RngCore) -> i64 {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn draw(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::draw(self) < p
    }

    /// A uniformly distributed value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generator types.
pub mod rngs {
    use super::*;

    /// The "standard" generator (stable output for a given seed).
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    /// The "small, fast" generator — same engine in this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(18);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.gen_range(4u8..5), 4);
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
