//! The INRIA-Rodin bilingual site of §5.1: English and French views of one
//! catalogue, cross-linked, all from a single StruQL query.
//!
//! ```text
//! cargo run --example bilingual
//! ```

use std::path::Path;
use strudel::synth::bilingual;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = bilingual::system(12, 3)?;
    let dir = Path::new("target/site-bilingual");
    let site = s.publish(&["EnglishRoot", "FrenchRoot"], dir)?;
    println!(
        "bilingual site: {} pages -> {}",
        site.pages.len(),
        dir.display()
    );

    // Show a cross link pair.
    let en = site
        .pages
        .iter()
        .find(|(k, _)| k.starts_with("enpage"))
        .expect("an English page");
    println!("\n--- {} ---\n{}", en.0, en.1);
    Ok(())
}
