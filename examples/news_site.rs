//! The CNN-style news site of §5.1: ~300 articles, a general site and a
//! sports-only site generated from the same data graph, plus click-time
//! (dynamic) evaluation of the same site definition.
//!
//! ```text
//! cargo run --example news_site
//! ```

use std::path::Path;
use strudel::synth::news;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const ARTICLES: usize = 300;

    // General site.
    let mut general = news::system(ARTICLES, 7, false)?;
    let dir = Path::new("target/site-news-general");
    let site = general.publish(&["FrontPage"], dir)?;
    println!(
        "general site: {} pages ({} bytes) -> {}",
        site.pages.len(),
        site.total_bytes(),
        dir.display()
    );

    // Sports-only: "the sports-only query is derived from the original
    // query and only differs in two extra predicates in one where clause.
    // The same HTML templates are used in both sites."
    let mut sports = news::system(ARTICLES, 7, true)?;
    let sports_dir = Path::new("target/site-news-sports");
    let sports_site = sports.publish(&["FrontPage"], sports_dir)?;
    println!(
        "sports-only site: {} pages -> {}",
        sports_site.pages.len(),
        sports_dir.display()
    );

    // Click-time evaluation: precompute only the roots, expand on demand.
    let dynamic = general.dynamic_site()?;
    let roots = dynamic.roots();
    println!("\ndynamic evaluation: {} precomputed root(s)", roots.len());
    let front_links = dynamic.expand(&roots[0])?;
    println!(
        "front page expands to {} links at click time",
        front_links.len()
    );
    if let Some(strudel::site::OutLink {
        target: strudel::site::Target::Page(p),
        ..
    }) = front_links.iter().find(|l| l.label == "Section")
    {
        let section_links = dynamic.expand(p)?;
        println!("clicking into {p} yields {} links", section_links.len());
    }
    let stats = dynamic.stats();
    println!("dynamic stats: {stats:?}");
    Ok(())
}
