//! The AT&T Labs–Research organization site of §5.1: ~400 member home
//! pages plus department, project, and publication pages, integrated from
//! four sources (two CSV tables, a DDL structured file, a BibTeX file)
//! through the GAV warehousing mediator.
//!
//! ```text
//! cargo run --example org_site            # 400 members (paper scale)
//! cargo run --example org_site -- 100     # smaller
//! ```

use std::path::Path;
use strudel::site::Constraint;
use strudel::synth::org;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    println!("generating an organization with {n} members…");
    let src = org::generate(n, 1997);
    let mut s = org::system(&src)?;

    let t0 = std::time::Instant::now();
    let build = s.build_site()?;
    println!(
        "site graph: {} nodes, {} edges in {:?}",
        build.graph.node_count(),
        build.graph.edge_count(),
        t0.elapsed()
    );
    println!("  member pages: {}", build.pages_of("MemberPage").len());
    println!("  project pages: {}", build.pages_of("ProjectPage").len());
    println!("  publication pages: {}", build.pages_of("PubPage").len());

    // Structural verification before publishing.
    let (verdict, exact) = s.verify(&Constraint::AllReachableFrom {
        root: "RootPage".into(),
    })?;
    println!("all pages reachable from root? schema={verdict:?} exact={exact:?}");

    // Internal version.
    let t1 = std::time::Instant::now();
    let dir = Path::new("target/site-org-internal");
    let internal = s.publish(&["RootPage"], dir)?;
    println!(
        "internal: {} pages ({} bytes) in {:?} -> {}",
        internal.pages.len(),
        internal.total_bytes(),
        t1.elapsed(),
        dir.display()
    );

    // External version: zero new queries, five replaced templates.
    *s.templates_mut() = org::templates_external()?;
    let t2 = std::time::Instant::now();
    let ext_dir = Path::new("target/site-org-external");
    let external = s.publish(&["RootPage"], ext_dir)?;
    println!(
        "external: {} pages in {:?} -> {}",
        external.pages.len(),
        t2.elapsed(),
        ext_dir.display()
    );

    println!(
        "\nquery: {} lines (paper: 115); templates: {} (paper: 17)",
        org::site_query_lines(),
        org::template_count()
    );
    Ok(())
}
