//! The §3.1 example: a researcher's home page generated from a BibTeX
//! bibliography plus a personal-data structured file — the paper's running
//! example (Figs. 2–5 and 7), at the scale of the "mff" site of §5.1.
//!
//! ```text
//! cargo run --example homepage
//! ```
//!
//! Also demonstrates the internal/external two-version story: the same site
//! graph rendered through two template sets, the external one excluding
//! patents and proprietary publications.

use std::path::Path;
use strudel::site::Constraint;
use strudel::synth::bib;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let owner = "Mary Fernandez";
    let mut s = bib::system(owner, 30, 42)?;

    // Inspect the site schema before materializing anything (Fig. 5).
    let schema = s.site_schema();
    println!(
        "site schema: {} node types, {} link kinds",
        schema.nodes().len(),
        schema.edges().len()
    );

    // Verify structural constraints on the design ([FER 98b]).
    for constraint in [
        Constraint::AllReachableFrom {
            root: "RootPage".into(),
        },
        Constraint::EveryHasEdge {
            from: "PaperPresentation".into(),
            label: "Abstract".into(),
            to: "AbstractPage".into(),
        },
    ] {
        let (schema_verdict, exact) = s.verify(&constraint)?;
        println!("{constraint:?}\n  schema: {schema_verdict:?}  exact: {exact:?}");
    }

    // Internal version.
    let internal_dir = Path::new("target/site-homepage-internal");
    let internal = s.publish(&["RootPage"], internal_dir)?;
    println!(
        "internal site: {} pages -> {}",
        internal.pages.len(),
        internal_dir.display()
    );

    // External version: same site graph, different templates (§5.1: "the
    // HTML templates for the external version exclude patents, and any
    // publications and projects that are proprietary").
    *s.templates_mut() = bib::templates_external()?;
    let external_dir = Path::new("target/site-homepage-external");
    let external = s.publish(&["RootPage"], external_dir)?;
    println!(
        "external site: {} pages -> {}",
        external.pages.len(),
        external_dir.display()
    );

    println!(
        "\nquery: {} lines (paper's mff query: 48 lines)",
        bib::site_query_lines()
    );
    Ok(())
}
