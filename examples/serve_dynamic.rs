//! Dynamically generated site over HTTP — the §6 future-work item
//! ("supporting dynamic evaluation would eliminate writing [CGI programs]
//! by hand") made concrete: every page is computed *at click time* by
//! evaluating the governing StruQL sub-queries of the requested page, with
//! the evaluator's result cache keeping re-clicks cheap. Nothing is
//! materialized up front except the roots.
//!
//! ```text
//! cargo run --example serve_dynamic                 # serve until /quit
//! cargo run --example serve_dynamic -- --self-test  # fetch a few pages, exit
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use strudel::serve::Server;
use strudel::synth::news;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let self_test = std::env::args().any(|a| a == "--self-test");
    let mut system = news::system(120, 17, false)?;
    let site = system.dynamic_site()?;
    let server = Server::bind(site, "127.0.0.1:0")?;
    let addr = server.addr()?;
    println!("serving dynamically evaluated site on http://{addr}/ (GET /quit to stop)");

    let client = if self_test {
        Some(std::thread::spawn(move || {
            let fetch = |path: &str| -> String {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
                    .unwrap();
                s.write_all(
                    format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                        .as_bytes(),
                )
                .expect("write request");
                let mut buf = String::new();
                s.read_to_string(&mut buf).expect("read response");
                buf
            };
            let root = fetch("/");
            assert!(
                root.contains("FrontPage"),
                "root page lists the roots: {root}"
            );
            let front = fetch("/page/FrontPage");
            assert!(front.contains("Section"), "front page links sections");
            // Follow the first section link.
            let href = front
                .split("href=\"")
                .nth(1)
                .map(|s| s[..s.find('"').unwrap()].to_string());
            if let Some(href) = href {
                let section = fetch(&href);
                assert!(section.contains("200 OK"), "section fetch: {section}");
            }
            assert!(fetch("/page/Nowhere").contains("200 OK"));
            assert!(fetch("/bogus").contains("404"));
            println!("self-test passed: root, front page, section, and 404 all served");
            let _ = fetch("/quit");
        }))
    } else {
        None
    };

    server.serve(None)?;
    if let Some(c) = client {
        c.join().expect("self-test client");
    }
    Ok(())
}
