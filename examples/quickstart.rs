//! Quickstart: the whole STRUDEL pipeline on a tiny bibliography.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a data graph from inline BibTeX, defines the site structure with
//! a StruQL query, renders it through HTML templates, and writes the
//! browsable site to `target/site-quickstart/`.

use std::path::Path;
use strudel::Strudel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Strudel::new();

    // 1. Data management: wrap a BibTeX source into the data graph.
    s.add_bibtex_source(
        "bibliography",
        r#"
@article{toplas97,
  title      = {Specifying Representations of Machine Instructions},
  author     = {Norman Ramsey and Mary Fernandez},
  year       = 1997,
  journal    = {Transactions on Programming Languages and Systems},
  postscript = {papers/toplas97.ps.gz}
}
@inproceedings{icde98,
  title      = {Optimizing Regular Path Expressions},
  author     = {Mary Fernandez and Dan Suciu},
  year       = 1998,
  booktitle  = {Proc. of ICDE},
  postscript = {papers/icde98.ps.gz}
}
"#,
    );

    // 2. Structure management: declare the site's structure in StruQL.
    s.add_site_query(
        r#"
CREATE HomePage()
COLLECT Roots(HomePage())
{
  WHERE Publications(x), x -> l -> v
  CREATE Paper(x)
  LINK Paper(x) -> l -> v,
       HomePage() -> "Paper" -> Paper(x)
}
"#,
    )?;

    // 3. Visual presentation: one template per page type.
    s.templates_mut().set_collection_template(
        "HomePage",
        r#"<html><body><h1>Publications</h1>
<SFOR p IN @Paper ORDER=descend KEY=@year LIST=ul><SFMT @p LINK=@p.title></SFOR>
</body></html>"#,
    )?;
    s.templates_mut().set_collection_template(
        "Paper",
        r#"<html><body><h1><SFMT @title></h1>
<p>By <SFMT @author ALL DELIM=", "> (<SFMT @year>).</p>
<SIF @journal><p>In <SFMT @journal>.</p></SIF>
<SIF @booktitle><p>In <SFMT @booktitle>.</p></SIF>
<p><SFMT @postscript LINK="Download PostScript"></p>
</body></html>"#,
    )?;

    let dir = Path::new("target/site-quickstart");
    let site = s.publish(&["HomePage"], dir)?;

    println!("wrote {} pages to {}:", site.pages.len(), dir.display());
    for name in site.pages.keys() {
        println!("  {name}");
    }
    let schema = s.site_schema();
    println!("\nsite schema (DOT):\n{}", schema.to_dot());
    Ok(())
}
