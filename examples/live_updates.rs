//! Incremental view maintenance in action (the §6 open problem,
//! `strudel::site::IncrementalSite`): materialize a news site once, then
//! push newsroom updates into the data graph and watch only the affected
//! pages change — no rebuild.
//!
//! ```text
//! cargo run --example live_updates
//! ```

use std::time::Instant;
use strudel::graph::{ddl, Value};
use strudel::site::IncrementalSite;
use strudel::struql::{parse_query, EvalOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The maintainable fragment: positive, single-edge conditions (the
    // aggregate-free core of the news site definition).
    let query = parse_query(
        r#"
CREATE FrontPage()
{
  WHERE Articles(a), a -> l -> v
  CREATE ArticlePage(a)
  LINK ArticlePage(a) -> l -> v,
       FrontPage() -> "Article" -> ArticlePage(a)
  {
    WHERE l = "section"
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Story" -> ArticlePage(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
}
"#,
    )?;

    let mut data = ddl::parse(&strudel::synth::news::generate_ddl(400, 99))?;
    let t = Instant::now();
    let mut site = IncrementalSite::new(&data, &query, EvalOptions::default())?;
    println!(
        "materialized: {} nodes / {} edges in {:?}",
        site.site.node_count(),
        site.site.edge_count(),
        t.elapsed()
    );

    // 1. A breaking story arrives.
    let t = Instant::now();
    let article = data.new_node(Some("breaking"));
    site.add_edge(
        &mut data,
        article,
        "headline",
        Value::str("STRUDEL reproduced in Rust"),
    )?;
    site.add_edge(&mut data, article, "section", Value::str("exclusive"))?;
    site.add_to_collection(&mut data, "Articles", Value::Node(article))?;
    println!("new article propagated in {:?}", t.elapsed());
    let page = site
        .table
        .lookup("ArticlePage", &[Value::Node(article)])
        .expect("page created");
    println!(
        "  -> ArticlePage created with {} attributes",
        site.site.out_edges(page).len()
    );

    // 2. A correction lands on an existing article.
    let t = Instant::now();
    let first = data.nodes()[0];
    site.add_edge(&mut data, first, "correction", Value::str("updated byline"))?;
    println!("correction propagated in {:?}", t.elapsed());

    // 3. An article gets cross-listed into a new section.
    let t = Instant::now();
    site.add_edge(&mut data, first, "section", Value::str("opinion"))?;
    println!("cross-listing propagated in {:?}", t.elapsed());
    assert!(
        site.table
            .lookup("SectionPage", &[Value::str("opinion")])
            .is_some(),
        "a brand-new section page appeared"
    );

    // 4. The correction is withdrawn — deletions retract exactly the
    //    derivations they supported (DRed-style counting).
    let t = Instant::now();
    site.remove_edge(
        &mut data,
        first,
        "correction",
        &Value::str("updated byline"),
    )?;
    println!("correction withdrawal propagated in {:?}", t.elapsed());

    // 5. The breaking story is retracted entirely: memberships and
    //    attributes go, and its ArticlePage vanishes with them.
    let t = Instant::now();
    site.remove_from_collection(&mut data, "Articles", &Value::Node(article))?;
    site.remove_edge(
        &mut data,
        article,
        "headline",
        &Value::str("STRUDEL reproduced in Rust"),
    )?;
    site.remove_edge(&mut data, article, "section", &Value::str("exclusive"))?;
    println!("article retraction propagated in {:?}", t.elapsed());
    assert!(
        site.table
            .lookup("ArticlePage", &[Value::Node(article)])
            .is_none(),
        "the retracted article's page is gone"
    );
    assert!(
        site.table
            .lookup("SectionPage", &[Value::str("exclusive")])
            .is_none(),
        "the section page it alone supported is gone too"
    );

    // Equivalence check against a from-scratch rebuild.
    let t = Instant::now();
    let rebuilt = query.evaluate(&data, &EvalOptions::default())?;
    println!("full rebuild (for comparison): {:?}", t.elapsed());
    assert_eq!(site.table.len(), rebuilt.table.len(), "same page census");
    println!(
        "maintained site ≡ rebuilt site: {} pages; stats: {:?}",
        site.table.len(),
        site.stats()
    );
    Ok(())
}
